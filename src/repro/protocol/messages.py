"""Versioned command/response messages for the Tioga-2 demand protocol.

Every direct-manipulation demand — open a program, add a viewer, pan, zoom,
move a slider, render a frame, pick a mark, ask *why* — is a frozen
:class:`Command` dataclass here, and every answer a :class:`Response`.  The
JSON codecs (:func:`encode_command` / :func:`decode_command` and the
response pair) are the wire format of :mod:`repro.server`; the in-process
:class:`~repro.ui.session.Session` builds exactly the same dataclasses and
routes them through the same :class:`~repro.protocol.dispatch.CommandExecutor`,
so local and remote interaction are provably one code path.

Compatibility contract: the protocol is versioned by
:data:`PROTOCOL_VERSION`.  Within a version, command kinds and field names
are append-only — new optional fields may appear with defaults; existing
fields never change meaning.  Decoders reject unknown versions, unknown
kinds, and unknown fields with :class:`~repro.protocol.errors.ProtocolError`
(stable code ``T2-E510``/``T2-E511``) instead of guessing.
"""

from __future__ import annotations

import base64
import dataclasses
import json
from dataclasses import dataclass
from typing import Any, ClassVar

from repro.protocol.errors import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "Command",
    "OpenProgram",
    "AddViewer",
    "Pan",
    "PanTo",
    "Zoom",
    "SetElevation",
    "SetSlider",
    "Render",
    "Pick",
    "Why",
    "Explain",
    "Stats",
    "Response",
    "Reply",
    "ErrorReply",
    "FrameReply",
    "Welcome",
    "COMMAND_KINDS",
    "RESPONSE_KINDS",
    "encode_command",
    "decode_command",
    "encode_response",
    "decode_response",
]

PROTOCOL_VERSION = 1
"""Wire protocol version; bumped only on incompatible changes."""

#: Frame payload formats a ``render`` command may request.
FRAME_FORMATS = ("ppm", "png", "ops")


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Command:
    """Base class for protocol commands (never instantiated directly).

    ``seq`` is an optional client correlation id: servers echo it back as
    ``reply_to`` on the response so pipelined clients can match answers to
    questions.  ``trace`` is an optional wire form of a
    :class:`~repro.obs.trace.TraceContext` (``{"trace_id": ...}``): clients
    that already carry a distributed trace attach it so the server joins
    their trace instead of minting a fresh id; responses echo the id back
    as ``trace_id``.  Both fields are append-only protocol extensions with
    defaults — a version-1 peer that never sends them is unaffected.
    """

    kind: ClassVar[str] = ""


@dataclass(frozen=True)
class OpenProgram(Command):
    """Load a named program (figure scenario or database-saved) into the
    session — the demand-side ``Session.load_program``."""

    kind: ClassVar[str] = "open_program"
    name: str = ""
    seq: int | None = None
    trace: dict | None = None


@dataclass(frozen=True)
class AddViewer(Command):
    """Connect a viewer box to an output and open its canvas window."""

    kind: ClassVar[str] = "add_viewer"
    src_box: int = 0
    src_port: str | None = None
    name: str | None = None
    width: int = 640
    height: int = 480
    world_per_elevation: float = 1.0
    seq: int | None = None
    trace: dict | None = None


@dataclass(frozen=True)
class Pan(Command):
    """Pan a window by world-unit deltas in the two screen dimensions."""

    kind: ClassVar[str] = "pan"
    window: str = ""
    dx: float = 0.0
    dy: float = 0.0
    member: str | None = None
    seq: int | None = None
    trace: dict | None = None


@dataclass(frozen=True)
class PanTo(Command):
    """Pan a window so its center lands on absolute world coordinates."""

    kind: ClassVar[str] = "pan_to"
    window: str = ""
    cx: float = 0.0
    cy: float = 0.0
    member: str | None = None
    seq: int | None = None
    trace: dict | None = None


@dataclass(frozen=True)
class Zoom(Command):
    """Zoom a window (factor > 1 descends; elevation divides by factor)."""

    kind: ClassVar[str] = "zoom"
    window: str = ""
    factor: float = 1.0
    member: str | None = None
    seq: int | None = None
    trace: dict | None = None


@dataclass(frozen=True)
class SetElevation(Command):
    """Set a window's elevation directly (the elevation control)."""

    kind: ClassVar[str] = "set_elevation"
    window: str = ""
    elevation: float = 100.0
    member: str | None = None
    seq: int | None = None
    trace: dict | None = None


@dataclass(frozen=True)
class SetSlider(Command):
    """Set one slider dimension's visible range on a window."""

    kind: ClassVar[str] = "set_slider"
    window: str = ""
    dim: str = ""
    low: float = 0.0
    high: float = 0.0
    member: str | None = None
    seq: int | None = None
    trace: dict | None = None


@dataclass(frozen=True)
class Render(Command):
    """Render a window and return the frame.

    ``format`` selects the payload: ``"ppm"`` (base64 P6 bytes), ``"png"``
    (base64 PNG bytes), or ``"ops"`` (draw-op delta — rendered-item
    summaries added/removed since this session's previous ``ops`` frame of
    the same window).
    """

    kind: ClassVar[str] = "render"
    window: str = ""
    format: str = "ppm"
    cull: bool = True
    seq: int | None = None
    trace: dict | None = None


@dataclass(frozen=True)
class Pick(Command):
    """The topmost screen object under a pixel (the §8 click)."""

    kind: ClassVar[str] = "pick"
    window: str = ""
    px: float = 0.0
    py: float = 0.0
    seq: int | None = None
    trace: dict | None = None


@dataclass(frozen=True)
class Why(Command):
    """Why-provenance drill-down: mark under a pixel → base-table rows."""

    kind: ClassVar[str] = "why"
    window: str = ""
    px: float = 0.0
    py: float = 0.0
    seq: int | None = None
    trace: dict | None = None


@dataclass(frozen=True)
class Explain(Command):
    """Machine-readable EXPLAIN of the session's current program."""

    kind: ClassVar[str] = "explain"
    box_id: int | None = None
    seq: int | None = None
    trace: dict | None = None


@dataclass(frozen=True)
class Stats(Command):
    """Run-summary snapshot of the process metrics registry."""

    kind: ClassVar[str] = "stats"
    seq: int | None = None
    trace: dict | None = None


# ---------------------------------------------------------------------------
# Responses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Response:
    """Base class for protocol responses."""

    kind: ClassVar[str] = ""

    @property
    def ok(self) -> bool:
        return True


@dataclass(frozen=True)
class Reply(Response):
    """Generic success: the command kind it answers plus a JSON-able result."""

    kind: ClassVar[str] = "reply"
    command: str = ""
    result: Any = None
    reply_to: int | None = None
    trace_id: str | None = None


@dataclass(frozen=True)
class ErrorReply(Response):
    """A failed command: stable protocol code, exception type, message.

    ``code`` follows the repo's ``T2-Exxx`` diagnostic convention (the
    ``T2-E5xx`` family is the protocol/server range — see
    :data:`repro.protocol.errors.PROTOCOL_CODES`), so clients branch on a
    machine-readable code, never on message prose or a traceback.
    """

    kind: ClassVar[str] = "error"
    code: str = "T2-E500"
    error_type: str = "TiogaError"
    message: str = ""
    command: str | None = None
    reply_to: int | None = None
    trace_id: str | None = None

    @property
    def ok(self) -> bool:
        return False


@dataclass(frozen=True)
class FrameReply(Response):
    """One rendered frame.

    ``data`` carries base64 image bytes for ``ppm``/``png`` formats;
    ``ops`` carries the draw-op delta for ``ops`` frames.  ``frame_seq`` is
    the per-window frame number within the session — consumers detect
    dropped intermediate frames by gaps, and the newest frame always has
    the highest number (the server's send queues may coalesce intermediate
    frames under backpressure but never drop the most recent one).
    """

    kind: ClassVar[str] = "frame"
    window: str = ""
    frame_seq: int = 0
    format: str = "ppm"
    width: int = 0
    height: int = 0
    data: str | None = None
    ops: dict | None = None
    draw_ops: int = 0
    render_ms: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    reply_to: int | None = None
    trace_id: str | None = None

    def data_bytes(self) -> bytes:
        """The decoded image payload (empty for ``ops`` frames)."""
        if self.data is None:
            return b""
        return base64.b64decode(self.data)


@dataclass(frozen=True)
class Welcome(Response):
    """The server's first message on a WebSocket connection."""

    kind: ClassVar[str] = "welcome"
    session: str = ""
    protocol: int = PROTOCOL_VERSION
    database: str = ""
    programs: tuple[str, ...] = ()
    reply_to: int | None = None


# ---------------------------------------------------------------------------
# Codecs
# ---------------------------------------------------------------------------

COMMAND_KINDS: dict[str, type[Command]] = {
    cls.kind: cls
    for cls in (
        OpenProgram, AddViewer, Pan, PanTo, Zoom, SetElevation, SetSlider,
        Render, Pick, Why, Explain, Stats,
    )
}

RESPONSE_KINDS: dict[str, type[Response]] = {
    cls.kind: cls for cls in (Reply, ErrorReply, FrameReply, Welcome)
}


def _encode(message: Command | Response, type_tag: str) -> str:
    payload: dict[str, Any] = {"v": PROTOCOL_VERSION, "kind": message.kind}
    for field in dataclasses.fields(message):
        value = getattr(message, field.name)
        if isinstance(value, tuple):
            value = list(value)
        payload[field.name] = value
    try:
        return json.dumps(payload, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"{type_tag} {message.kind!r} is not JSON-serializable: {exc}",
            code="T2-E510",
        ) from exc


def _decode(text: str | bytes, kinds: dict[str, type], type_tag: str):
    try:
        payload = json.loads(text)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"malformed {type_tag}: not valid JSON ({exc})", code="T2-E510"
        ) from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"malformed {type_tag}: expected a JSON object, "
            f"got {type(payload).__name__}",
            code="T2-E510",
        )
    version = payload.pop("v", None)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this build speaks {PROTOCOL_VERSION})",
            code="T2-E510",
        )
    kind = payload.pop("kind", None)
    cls = kinds.get(kind)
    if cls is None:
        known = ", ".join(sorted(kinds))
        raise ProtocolError(
            f"unknown {type_tag} kind {kind!r}; known: {known}",
            code="T2-E511",
        )
    fields = {field.name: field for field in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - set(fields))
    if unknown:
        raise ProtocolError(
            f"{type_tag} {kind!r} has unknown fields: {', '.join(unknown)}",
            code="T2-E510",
        )
    kwargs: dict[str, Any] = {}
    for name, field in fields.items():
        if name in payload:
            value = payload[name]
            if isinstance(value, list) and _field_is_tuple(field):
                value = tuple(value)
            kwargs[name] = value
        elif (field.default is dataclasses.MISSING
              and field.default_factory is dataclasses.MISSING):
            raise ProtocolError(
                f"{type_tag} {kind!r} is missing required field {name!r}",
                code="T2-E510",
            )
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"{type_tag} {kind!r} could not be constructed: {exc}",
            code="T2-E510",
        ) from exc


def _field_is_tuple(field: dataclasses.Field) -> bool:
    return isinstance(field.default, tuple) or "tuple" in str(field.type)


def encode_command(command: Command) -> str:
    """One JSON line for a command (the WS/HTTP wire form)."""
    if type(command) not in COMMAND_KINDS.values():
        raise ProtocolError(
            f"not a protocol command: {type(command).__name__}",
            code="T2-E510",
        )
    return _encode(command, "command")


def decode_command(text: str | bytes) -> Command:
    """Parse and validate a wire command; raises :class:`ProtocolError`."""
    return _decode(text, COMMAND_KINDS, "command")


def encode_response(response: Response) -> str:
    """One JSON line for a response."""
    if type(response) not in RESPONSE_KINDS.values():
        raise ProtocolError(
            f"not a protocol response: {type(response).__name__}",
            code="T2-E510",
        )
    return _encode(response, "response")


def decode_response(text: str | bytes) -> Response:
    """Parse and validate a wire response; raises :class:`ProtocolError`."""
    return _decode(text, RESPONSE_KINDS, "response")
