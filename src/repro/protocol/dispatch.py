"""Execute protocol commands against a live session.

:class:`CommandExecutor` is the single dispatch point for demand commands.
:class:`~repro.ui.session.Session`'s imperative methods build a
:class:`~repro.protocol.messages.Command` and call :meth:`CommandExecutor.run`
(rich results, exceptions propagate); transports — the WebSocket/HTTP server,
or any future embedding — call :meth:`CommandExecutor.execute` (wire-safe
:class:`~repro.protocol.messages.Response` objects, every
:class:`~repro.errors.TiogaError` mapped to a stable ``T2-E5xx`` code).
Both entry points share the same handlers, so a remote ``set_slider`` fails
with character-for-character the same :class:`~repro.errors.ViewerError`
diagnostic a local call raises.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import TiogaError
from repro.obs.trace import TraceContext, current_tracer
from repro.protocol.errors import ProtocolError, error_code_for
from repro.protocol.messages import (
    FRAME_FORMATS,
    AddViewer,
    Command,
    ErrorReply,
    Explain,
    FrameReply,
    OpenProgram,
    Pan,
    PanTo,
    Pick,
    Render,
    Reply,
    Response,
    SetElevation,
    SetSlider,
    Stats,
    Why,
    Zoom,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ui.session import Session

__all__ = ["CommandExecutor", "FrameCache", "jsonable"]


def jsonable(value: Any) -> Any:
    """Coerce a rich result into JSON-safe data (dates and such become
    strings), preserving structure — the wire form of ``why``/``pick``
    row values."""
    return json.loads(json.dumps(value, default=str))


class FrameCache:
    """LRU cache of fully encoded frames, shared across sessions.

    The result cache (PR-4) shares *plan* results between sessions, but each
    render still rasterizes and base64-encodes the canvas — the dominant
    cost when many viewers look at the same view.  The server hands every
    hosted session one :class:`FrameCache` so identical (program, view,
    data-epoch) renders are served as a dict lookup.  Keys include the
    global storage epoch, so any table mutation anywhere invalidates every
    cached frame — conservative but always correct.

    Entries carry the frame's :class:`~repro.viewer.viewer.RenderResult`
    alongside the encoded bytes: a hit restores it as the viewer's
    ``last_result``, so pick/why/wormhole provenance resolves against the
    display list of the frame the client is looking at, never the display
    list of the last render that actually rasterized.

    In-process sessions leave ``CommandExecutor.frame_cache`` unset: local
    callers keep the engine-executing path (and its per-box statistics)
    byte-for-byte identical to the imperative API.
    """

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Any, tuple] = OrderedDict()

    def get(self, key: Any) -> tuple | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: Any, entry: tuple) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class CommandExecutor:
    """Run demand commands against one :class:`~repro.ui.session.Session`.

    Holds the small amount of per-session protocol state: per-window frame
    sequence numbers and the previous ``ops``-frame display list used to
    compute draw-op deltas.
    """

    def __init__(self, session: "Session"):
        self.session = session
        self._frame_seq: dict[str, int] = {}
        self._last_ops: dict[str, dict[str, Any]] = {}
        #: Optional shared :class:`FrameCache`; the server sets this on every
        #: hosted session.  None (the default) renders every frame.
        self.frame_cache: FrameCache | None = None

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run(self, command: Command) -> Any:
        """Execute a command and return its rich result; raises
        :class:`TiogaError` exactly as the equivalent imperative call.

        When the current tracer is enabled, every dispatch runs inside a
        ``request.<kind>`` span under a :class:`TraceContext` — adopted
        from the caller when one is active (the server's pool workers), or
        minted here (in-process sessions), so engine/plan/render/lineage
        spans attach to one connected request tree either way.  Disabled
        tracers pay a single attribute check.
        """
        handler = self._HANDLERS.get(type(command))
        if handler is None:
            raise ProtocolError(
                f"unknown command kind {getattr(command, 'kind', None)!r}",
                code="T2-E511",
            )
        tracer = current_tracer()
        if not tracer.enabled:
            return handler(self, command)
        ctx = self.trace_context_for(command, tracer)
        attrs: dict[str, Any] = {"command": command.kind}
        if ctx.session is not None:
            attrs["session"] = ctx.session
        window = getattr(command, "window", None)
        if window:
            attrs["window"] = window
        with tracer.adopt(ctx):
            with tracer.span(f"request.{command.kind}", **attrs):
                return handler(self, command)

    def trace_context_for(self, command: Command,
                          tracer=None) -> TraceContext:
        """The request context this dispatch will run under: the already
        adopted one, else the client-supplied ``trace`` wire field, else a
        freshly minted id."""
        tracer = tracer if tracer is not None else current_tracer()
        ctx = tracer.context()
        if ctx is not None:
            return ctx
        wire = getattr(command, "trace", None)
        if wire:
            return TraceContext.from_wire(wire)
        return TraceContext.new(command=command.kind)

    def execute(self, command: Command) -> Response:
        """Execute a command and return a wire-safe response (never raises
        for Tioga-level failures — they become :class:`ErrorReply`).

        Responses carry the request's ``trace_id`` so remote clients can
        quote it back at ``/debug/trace`` (and correlate their own logs)."""
        tracer = current_tracer()
        trace_id: str | None = None
        if tracer.enabled:
            # Resolve (and adopt) the context up front so the id stamped on
            # the response is the one run() traces under.
            ctx = self.trace_context_for(command, tracer)
            trace_id = ctx.trace_id
            with tracer.adopt(ctx):
                response = self._execute_raw(command)
        else:
            response = self._execute_raw(command)
        if trace_id is not None:
            response = dataclasses.replace(response, trace_id=trace_id)
        return response

    def _execute_raw(self, command: Command) -> Response:
        try:
            result = self.run(command)
            wire = self._WIRE.get(type(command), CommandExecutor._wire_reply)
            return wire(self, command, result)
        except TiogaError as exc:
            return ErrorReply(
                code=error_code_for(exc),
                error_type=type(exc).__name__,
                message=str(exc),
                command=getattr(command, "kind", None),
                reply_to=getattr(command, "seq", None),
            )

    # ------------------------------------------------------------------
    # Handlers (rich results; shared by local and remote callers)
    # ------------------------------------------------------------------

    def _open_program(self, command: OpenProgram) -> dict[str, Any]:
        self.session._load_program_impl(command.name)
        self._frame_seq.clear()
        self._last_ops.clear()
        return {
            "program": self.session.program.name,
            "windows": sorted(self.session.windows),
        }

    def _add_viewer(self, command: AddViewer):
        return self.session._add_viewer_impl(
            command.src_box,
            command.src_port,
            name=command.name,
            width=command.width,
            height=command.height,
            world_per_elevation=command.world_per_elevation,
        )

    def _viewer_for(self, window: str):
        return self.session.window(window).viewer

    def _view_state(self, window: str, member: str | None) -> dict[str, Any]:
        viewer = self._viewer_for(window)
        view = viewer.view(member)
        return {
            "window": window,
            "member": member or viewer.member_names()[0],
            "center": [view.center[0], view.center[1]],
            "elevation": view.elevation,
            "sliders": {dim: [low, high]
                        for dim, (low, high) in view.slider_ranges.items()},
        }

    def _pan(self, command: Pan) -> dict[str, Any]:
        self._viewer_for(command.window)._pan(
            command.dx, command.dy, command.member)
        return self._view_state(command.window, command.member)

    def _pan_to(self, command: PanTo) -> dict[str, Any]:
        self._viewer_for(command.window)._pan_to(
            command.cx, command.cy, command.member)
        return self._view_state(command.window, command.member)

    def _zoom(self, command: Zoom) -> dict[str, Any]:
        self._viewer_for(command.window)._zoom(command.factor, command.member)
        return self._view_state(command.window, command.member)

    def _set_elevation(self, command: SetElevation) -> dict[str, Any]:
        self._viewer_for(command.window)._set_elevation(
            command.elevation, command.member)
        return self._view_state(command.window, command.member)

    def _set_slider(self, command: SetSlider) -> dict[str, Any]:
        # Validation (unknown dim, empty range) lives in the viewer — the
        # one copy both local and remote callers hit, so diagnostics match.
        self._viewer_for(command.window)._set_slider(
            command.dim, command.low, command.high, command.member)
        return self._view_state(command.window, command.member)

    def _render(self, command: Render) -> FrameReply:
        if command.format not in FRAME_FORMATS:
            raise ProtocolError(
                f"unknown frame format {command.format!r}; "
                f"choose from {', '.join(FRAME_FORMATS)}",
                code="T2-E510",
            )
        from repro.obs.metrics import global_registry

        window = self.session.window(command.window)
        registry = global_registry()
        # ops frames are per-session deltas and never shared.
        key = None
        if self.frame_cache is not None and command.format in ("ppm", "png"):
            key = self._frame_key(command, window)
        if key is not None:
            cached = self.frame_cache.get(key)
            if cached is not None:
                registry.counter(
                    "cache.frame_hit",
                    "renders served whole from the shared frame cache",
                ).inc()
                width, height, data, draw_ops, result = cached
                # The client now sees this cached frame: pick/why must
                # resolve against its display list, not the one left over
                # from the previous actual render (possibly another view).
                window.viewer.last_result = result
                seq = self._frame_seq.get(command.window, 0) + 1
                self._frame_seq[command.window] = seq
                return FrameReply(
                    window=command.window,
                    frame_seq=seq,
                    format=command.format,
                    width=width,
                    height=height,
                    data=data,
                    ops=None,
                    draw_ops=draw_ops,
                    render_ms=0.0,
                    cache_hits=1,
                    cache_misses=0,
                )
            registry.counter(
                "cache.frame_miss",
                "renders that rasterized and encoded a fresh frame",
            ).inc()
        hits_before = registry.counter(
            "cache.hit", "result-cache lookups served from memory").total()
        misses_before = registry.counter(
            "cache.miss", "result-cache lookups that ran the plan").total()
        started = time.perf_counter()
        canvas = window.render(cull=command.cull)
        render_ms = (time.perf_counter() - started) * 1000.0
        seq = self._frame_seq.get(command.window, 0) + 1
        self._frame_seq[command.window] = seq
        data: str | None = None
        ops: dict[str, Any] | None = None
        if command.format == "ppm":
            data = base64.b64encode(canvas.ppm_bytes()).decode("ascii")
        elif command.format == "png":
            data = base64.b64encode(canvas.png_bytes()).decode("ascii")
        else:
            ops = self._ops_delta(command.window, window)
        hits = registry.counter("cache.hit").total() - hits_before
        misses = registry.counter("cache.miss").total() - misses_before
        if key is not None:
            self.frame_cache.put(
                key, (canvas.width, canvas.height, data, canvas.draw_ops,
                      window.viewer.last_result))
        return FrameReply(
            window=command.window,
            frame_seq=seq,
            format=command.format,
            width=canvas.width,
            height=canvas.height,
            data=data,
            ops=ops,
            draw_ops=canvas.draw_ops,
            render_ms=round(render_ms, 3),
            cache_hits=int(hits),
            cache_misses=int(misses),
        )

    def _frame_key(self, command: Render, window) -> tuple | None:
        """Everything a frame's pixels depend on, or None when unsure.

        Program structure (serialized), the full per-member view state, the
        viewport geometry, and the global storage epoch — any table update
        anywhere bumps the epoch and orphans every cached frame.
        """
        from repro.dataflow.serialize import program_to_dict
        from repro.dbms.relation import storage_epoch

        if any(not glass.deleted for glass in window.magnifiers):
            # Magnifier overlays are composited into the encoded bytes but
            # are session-local furniture outside the key; don't cache.
            return None
        viewer = window.viewer
        try:
            program_fp = hash(json.dumps(
                program_to_dict(self.session.program),
                sort_keys=True, default=str))
            views = []
            for member in viewer.member_names():
                view = viewer.view(member)
                views.append((
                    member,
                    float(view.center[0]),
                    float(view.center[1]),
                    float(view.elevation),
                    tuple(sorted(
                        (dim, float(low), float(high))
                        for dim, (low, high) in view.slider_ranges.items()
                    )),
                ))
        except (TiogaError, TypeError, ValueError):
            return None
        return (
            command.format,
            bool(command.cull),
            window.name,
            viewer.width,
            viewer.height,
            viewer.world_per_elevation,
            program_fp,
            tuple(views),
            storage_epoch(),
        )

    def _ops_delta(self, name: str, window) -> dict[str, Any]:
        """Draw-op delta versus this session's previous ``ops`` frame.

        Items are keyed by (member, relation, kind, tuple index, bbox); the
        first ``ops`` frame of a window is ``full``, later ones carry only
        ``added``/``removed`` — the cheap wire form for slaved viewers that
        track marks instead of pixels.
        """
        result = window.viewer.last_result
        current: dict[str, Any] = {}
        if result is not None:
            for member, items in result.items.items():
                for item in items:
                    signature = (
                        f"{member}|{item.relation_name}|{item.drawable_kind}"
                        f"|{item.tuple_index}|"
                        + ",".join(f"{v:.2f}" for v in item.bbox)
                    )
                    current[signature] = {
                        "member": member,
                        "relation": item.relation_name,
                        "kind": item.drawable_kind,
                        "tuple_index": item.tuple_index,
                        "bbox": [round(v, 2) for v in item.bbox],
                    }
        previous = self._last_ops.get(name)
        self._last_ops[name] = current
        if previous is None:
            return {"mode": "full",
                    "items": [current[k] for k in sorted(current)]}
        added = sorted(set(current) - set(previous))
        removed = sorted(set(previous) - set(current))
        return {
            "mode": "delta",
            "added": [current[k] for k in added],
            "removed": [previous[k] for k in removed],
        }

    def _pick(self, command: Pick):
        return self._viewer_for(command.window).pick(command.px, command.py)

    def _why(self, command: Why) -> dict[str, Any]:
        from repro.obs.lineage import why

        return why(self.session.window(command.window), command.px, command.py)

    def _explain(self, command: Explain) -> dict[str, Any]:
        from repro.dataflow.explain import explain_data

        return explain_data(
            self.session.program,
            self.session.database,
            engine=self.session.engine,
            box_id=command.box_id,
        )

    def _stats(self, command: Stats) -> dict[str, Any]:
        from repro.obs import global_registry, run_summary

        return run_summary(None, global_registry())

    _HANDLERS: dict[type, Callable[["CommandExecutor", Any], Any]] = {
        OpenProgram: _open_program,
        AddViewer: _add_viewer,
        Pan: _pan,
        PanTo: _pan_to,
        Zoom: _zoom,
        SetElevation: _set_elevation,
        SetSlider: _set_slider,
        Render: _render,
        Pick: _pick,
        Why: _why,
        Explain: _explain,
        Stats: _stats,
    }

    # ------------------------------------------------------------------
    # Wire conversion (rich result -> Response)
    # ------------------------------------------------------------------

    def _wire_reply(self, command: Command, result: Any) -> Response:
        # Normalize eagerly so a local execute() observes exactly what a
        # remote client would after the JSON hop (int keys become strings,
        # tuples become lists).
        return Reply(command=command.kind, result=jsonable(result),
                     reply_to=getattr(command, "seq", None))

    def _wire_add_viewer(self, command: AddViewer, window) -> Response:
        return Reply(
            command=command.kind,
            result={
                "window": window.name,
                "viewer_box": window.viewer_box_id,
                "width": window.viewer.width,
                "height": window.viewer.height,
            },
            reply_to=command.seq,
        )

    def _wire_frame(self, command: Render, frame: FrameReply) -> Response:
        if command.seq is None:
            return frame
        return FrameReply(**{**_frame_fields(frame), "reply_to": command.seq})

    def _wire_pick(self, command: Pick, item) -> Response:
        result: dict[str, Any] = {"picked": item is not None, "item": None}
        if item is not None:
            result["item"] = jsonable({
                "relation": item.relation_name,
                "source_table": item.source_table,
                "kind": item.drawable_kind,
                "tuple_index": item.tuple_index,
                "bbox": list(item.bbox),
                "row": item.row.as_dict(),
            })
        return Reply(command=command.kind, result=result,
                     reply_to=command.seq)

    def _wire_why(self, command: Why, doc: dict[str, Any]) -> Response:
        return Reply(command=command.kind, result=jsonable(doc),
                     reply_to=command.seq)

    _WIRE: dict[type, Callable[["CommandExecutor", Any, Any], Response]] = {
        AddViewer: _wire_add_viewer,
        Render: _wire_frame,
        Pick: _wire_pick,
        Why: _wire_why,
    }


def _frame_fields(frame: FrameReply) -> dict[str, Any]:
    import dataclasses

    return {field.name: getattr(frame, field.name)
            for field in dataclasses.fields(frame)}
