"""Serializable command layer for Tioga-2 demands.

The protocol is the seam between interaction and execution: the in-process
:class:`~repro.ui.session.Session` and the network server in
:mod:`repro.server` both express every demand (open a program, pan, zoom,
move a slider, render, pick, *why*) as the same versioned
:class:`Command` dataclasses and dispatch them through the same
:class:`CommandExecutor`, so local and remote interaction are one code path.

See :mod:`repro.protocol.messages` for the wire format and compatibility
contract, :mod:`repro.protocol.errors` for the stable ``T2-E5xx`` error-code
family, and :mod:`repro.protocol.dispatch` for execution.
"""

from repro.protocol.dispatch import CommandExecutor, FrameCache, jsonable
from repro.protocol.errors import (
    PROTOCOL_CODES,
    ProtocolError,
    error_code_for,
    protocol_code_info,
)
from repro.protocol.messages import (
    COMMAND_KINDS,
    FRAME_FORMATS,
    PROTOCOL_VERSION,
    RESPONSE_KINDS,
    AddViewer,
    Command,
    ErrorReply,
    Explain,
    FrameReply,
    OpenProgram,
    Pan,
    PanTo,
    Pick,
    Render,
    Reply,
    Response,
    SetElevation,
    SetSlider,
    Stats,
    Welcome,
    Why,
    Zoom,
    decode_command,
    decode_response,
    encode_command,
    encode_response,
)

__all__ = [
    "PROTOCOL_VERSION",
    "FRAME_FORMATS",
    "Command",
    "OpenProgram",
    "AddViewer",
    "Pan",
    "PanTo",
    "Zoom",
    "SetElevation",
    "SetSlider",
    "Render",
    "Pick",
    "Why",
    "Explain",
    "Stats",
    "Response",
    "Reply",
    "ErrorReply",
    "FrameReply",
    "Welcome",
    "COMMAND_KINDS",
    "RESPONSE_KINDS",
    "encode_command",
    "decode_command",
    "encode_response",
    "decode_response",
    "CommandExecutor",
    "FrameCache",
    "jsonable",
    "PROTOCOL_CODES",
    "ProtocolError",
    "error_code_for",
    "protocol_code_info",
]
