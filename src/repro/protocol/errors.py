"""Stable protocol error codes: the ``T2-E5xx`` family.

Remote clients must get machine-readable failures, never tracebacks.  Every
:class:`~repro.errors.TiogaError` subclass a command handler can raise maps
to one stable code here, following the ``T2-Exxx`` diagnostic-code
convention from :mod:`repro.analyze` (whose catalog owns ``E1xx``/``W2xx``/
``I3xx``; the protocol/server range is ``E5xx``).  The mapping is by
exception *class*, walking the MRO, so a new ``ViewerError`` subclass
automatically inherits ``T2-E501`` until it earns its own code.

Codes are append-only: a released code never changes meaning.
"""

from __future__ import annotations

from repro.errors import (
    CatalogError,
    DisplayError,
    EvaluationError,
    ExpressionError,
    GraphError,
    ObservabilityError,
    SchemaError,
    StaticAnalysisError,
    TiogaError,
    TypeCheckError,
    UIError,
    UpdateError,
    ViewerError,
)

__all__ = [
    "PROTOCOL_CODES",
    "ProtocolError",
    "error_code_for",
    "protocol_code_info",
]

#: Stable protocol error codes and their one-line summaries.  The server
#: range (``T2-E5xx``) deliberately does not overlap the static-analysis
#: catalog (``repro.analyze.diagnostics.CODES``); the guard below keeps it
#: that way at import time.
PROTOCOL_CODES: dict[str, str] = {
    "T2-E500": "unclassified server-side error (bare TiogaError)",
    "T2-E501": "illegal viewer interaction (bad slider, zoom, member)",
    "T2-E502": "illegal session operation (unknown window, bad edit)",
    "T2-E503": "catalog lookup failed (unknown table, program, or box)",
    "T2-E504": "screen-initiated database update failed",
    "T2-E505": "query-language expression is syntactically or semantically bad",
    "T2-E506": "illegal edit of the boxes-and-arrows graph",
    "T2-E507": "static analysis rejected the program before execution",
    "T2-E508": "well-typed expression failed at evaluation time",
    "T2-E509": "schema or dataflow type error",
    "T2-E510": "malformed or unsupported protocol message",
    "T2-E511": "unknown command or response kind",
    "T2-E512": "unknown or expired server session",
    "T2-E513": "unknown program name (no figure or saved program matches)",
    "T2-E514": "internal server error (handler raised a non-Tioga exception)",
    "T2-E515": "malformed displayable reached the viewer",
    "T2-E516": "observability subsystem misuse",
}


class ProtocolError(TiogaError):
    """A message-level protocol failure (decode, version, unknown kind).

    Carries its stable ``code`` so transports can surface it without a
    lookup; :func:`error_code_for` returns the same code for consistency.
    """

    def __init__(self, *args, code: str = "T2-E510", **kwargs):
        super().__init__(*args, **kwargs)
        self.code = code


#: Exception class → stable code.  Order does not matter: the lookup walks
#: each exception's MRO most-derived-first, so the most specific registered
#: ancestor wins.
_CODE_BY_CLASS: dict[type[BaseException], str] = {
    ViewerError: "T2-E501",
    UIError: "T2-E502",
    CatalogError: "T2-E503",
    UpdateError: "T2-E504",
    ExpressionError: "T2-E505",
    GraphError: "T2-E506",
    StaticAnalysisError: "T2-E507",
    EvaluationError: "T2-E508",
    SchemaError: "T2-E509",
    TypeCheckError: "T2-E509",
    DisplayError: "T2-E515",
    ObservabilityError: "T2-E516",
    TiogaError: "T2-E500",
}


def error_code_for(exc: BaseException) -> str:
    """The stable protocol code for an exception.

    :class:`ProtocolError` carries its own code; other Tioga errors map by
    class (most-derived registered ancestor); anything else is the internal
    server error ``T2-E514``.
    """
    if isinstance(exc, ProtocolError):
        return exc.code
    for cls in type(exc).__mro__:
        code = _CODE_BY_CLASS.get(cls)
        if code is not None:
            return code
    return "T2-E514"


def protocol_code_info(code: str) -> str:
    """The one-line summary for a protocol code (KeyError if unknown)."""
    return PROTOCOL_CODES[code]


def _assert_disjoint_from_analysis_catalog() -> None:
    # The analyze catalog raises on duplicate registration inside itself;
    # this guard extends the same uniqueness across the protocol family.
    from repro.analyze.diagnostics import CODES

    overlap = sorted(set(PROTOCOL_CODES) & set(CODES))
    if overlap:  # pragma: no cover - developer error caught at import
        raise ValueError(
            f"protocol codes collide with the analysis catalog: {overlap}"
        )


_assert_disjoint_from_analysis_catalog()
