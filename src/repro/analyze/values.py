"""Abstract values flowed along wires by the program checker.

The checker mirrors the runtime displayable hierarchy at the schema level:

- :class:`RelValue` ~ ``DisplayableRelation`` — a stored :class:`Schema`,
  an ordered list of computed attributes, and the slider dimensions;
- :class:`CompValue` ~ ``Composite`` — ordered named components;
- :class:`GroupValue` ~ ``Group`` — named members;
- :class:`ScalarValue` — a parameter wire carrying one atomic value.

``None`` stands for *unknown* (an upstream box already reported an error, or
no transfer function is registered), which suppresses cascading diagnostics
downstream.
"""

from __future__ import annotations

from typing import Iterable

from repro.dbms import types as T
from repro.dbms.tuples import Field, Schema
from repro.display.displayable import SEQ_FIELD

__all__ = [
    "CompAttr",
    "RelValue",
    "CompValue",
    "GroupValue",
    "ScalarValue",
    "ensure_comp",
    "dimension_of",
]


class CompAttr:
    """A computed attribute: name, type, dependency set, defining source."""

    __slots__ = ("name", "atomic", "depends", "source")

    def __init__(
        self,
        name: str,
        atomic: T.AtomicType,
        depends: Iterable[str] = (),
        source: str | None = None,
    ):
        self.name = name
        self.atomic = atomic
        self.depends = frozenset(depends)
        self.source = source

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CompAttr({self.name}:{self.atomic})"


class RelValue:
    """The static shape of a displayable relation."""

    __slots__ = ("schema", "methods", "sliders", "name")

    def __init__(
        self,
        schema: Schema,
        methods: Iterable[CompAttr] = (),
        sliders: Iterable[str] = (),
        name: str = "relation",
    ):
        self.schema = schema
        self.methods = tuple(methods)
        self.sliders = tuple(sliders)
        self.name = name

    # -- schema views ---------------------------------------------------

    @property
    def extended_schema(self) -> Schema:
        """Stored fields plus computed attributes, in definition order."""
        schema = self.schema
        for method in self.methods:
            if method.name not in schema:
                schema = schema.extend(Field(method.name, method.atomic))
        return schema

    def reference_schema(self) -> Schema:
        """What attribute definitions may reference: extended + ambient seq."""
        schema = self.extended_schema
        if SEQ_FIELD not in schema:
            schema = schema.extend(Field(SEQ_FIELD, T.INT))
        return schema

    @property
    def dimension(self) -> int:
        return 2 + len(self.sliders)

    def attr_type(self, name: str) -> T.AtomicType | None:
        """The type of a stored or computed attribute, or ``None``."""
        schema = self.extended_schema
        if name in schema:
            return schema.type_of(name)
        return None

    def method_named(self, name: str) -> CompAttr | None:
        for method in self.methods:
            if method.name == name:
                return method
        return None

    def clone(self, **overrides) -> "RelValue":
        kwargs = {
            "schema": self.schema,
            "methods": self.methods,
            "sliders": self.sliders,
            "name": self.name,
        }
        kwargs.update(overrides)
        return RelValue(**kwargs)

    def with_name(self, name: str) -> "RelValue":
        return self.clone(name=name) if name != self.name else self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RelValue({self.name!r}, stored={self.schema.names}, "
            f"computed={[m.name for m in self.methods]}, sliders={self.sliders})"
        )


class CompValue:
    """The static shape of a composite: ordered, uniquely named components."""

    __slots__ = ("entries",)

    def __init__(self, entries: Iterable[RelValue] = ()):
        self.entries: list[RelValue] = []
        for entry in entries:
            self._add_entry(entry)

    @property
    def dimension(self) -> int:
        if not self.entries:
            return 2
        return max(entry.dimension for entry in self.entries)

    @property
    def slider_dims(self) -> tuple[str, ...]:
        seen: list[str] = []
        for entry in self.entries:
            for dim in entry.sliders:
                if dim not in seen:
                    seen.append(dim)
        return tuple(seen)

    def component_names(self) -> list[str]:
        return [entry.name for entry in self.entries]

    def _unique_name(self, name: str) -> str:
        taken = set(self.component_names())
        if name not in taken:
            return name
        suffix = 2
        while f"{name}_{suffix}" in taken:
            suffix += 1
        return f"{name}_{suffix}"

    def _add_entry(self, entry: RelValue) -> None:
        self.entries.append(entry.with_name(self._unique_name(entry.name)))

    def entry_named(self, name: str) -> RelValue | None:
        for entry in self.entries:
            if entry.name == name:
                return entry
        return None

    def copy(self) -> "CompValue":
        clone = CompValue()
        clone.entries = list(self.entries)
        return clone

    def overlay(self, other: "CompValue") -> "CompValue":
        result = self.copy()
        for entry in other.entries:
            result._add_entry(entry)
        return result

    def replace_component(self, name: str, relation: RelValue) -> "CompValue":
        result = self.copy()
        for pos, entry in enumerate(result.entries):
            if entry.name == name:
                result.entries[pos] = relation.with_name(name)
                break
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CompValue({self.component_names()})"


class GroupValue:
    """The static shape of a group: named composite members."""

    __slots__ = ("members",)

    def __init__(self, members: Iterable[tuple[str, CompValue]] = ()):
        self.members: list[tuple[str, CompValue]] = list(members)

    def member_names(self) -> list[str]:
        return [name for name, __ in self.members]

    def member(self, name: str) -> CompValue | None:
        for member_name, composite in self.members:
            if member_name == name:
                return composite
        return None

    def replace_member(self, name: str, composite: CompValue) -> "GroupValue":
        return GroupValue(
            (n, composite if n == name else c) for n, c in self.members
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GroupValue({self.member_names()})"


class ScalarValue:
    """A parameter wire: one atomic type (value unknown statically)."""

    __slots__ = ("atomic",)

    def __init__(self, atomic: T.AtomicType):
        self.atomic = atomic

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ScalarValue({self.atomic})"


def ensure_comp(value: "RelValue | CompValue") -> CompValue:
    """The R = Composite(R) equivalence, statically."""
    if isinstance(value, CompValue):
        return value
    return CompValue([value])


def dimension_of(value: "RelValue | CompValue") -> int:
    return value.dimension
