"""Abstract interpretation over expressions, plans, and programs.

This is the static mirror of the *values* that flow through a Tioga-2
program, the way :mod:`repro.analyze.checker` is the static mirror of the
*schemas*.  Four abstract domains are tracked per attribute:

* **interval** — a closed range ``[lo, hi]`` over the extended reals
  covering every possible (non-NaN) value; ``maybe_nan`` records whether a
  float NaN can occur, since a NaN lies outside every interval;
* **nullability** — whether the value may be missing.  Tioga-2 tuples are
  total (typed columns admit no NULL), so facts derived from stored data
  are always non-null; the domain is carried so future NULL-bearing
  sources degrade soundly rather than silently;
* **constancy** — a known concrete value, when one is provable;
* **sign** — derived from the interval (``+``, ``-``, ``0``, ``±``).

Entry facts come from :func:`repro.dbms.catalog.stats_for` (per-column
min/max over immutable row sets, memoized per table version); the
evaluator then runs the same structural recursion as ``Expr.infer`` but
over abstract values, collecting **hazard proofs** at every site where the
columnar compiler would otherwise emit a runtime guard:

``div_zero``
    the divisor's interval excludes 0 (sound even for NaN-bearing columns:
    ``NaN != 0``, so the zero-divide guard can never fire);
``exact_int``
    both int operands are bounded within ±2**53, so numpy's float64
    promotion is exact;
``sqrt_nonneg``
    the argument's interval lies in ``[0, inf)`` (a NaN argument never
    trips the ``x < 0`` guard either way).

Proofs are keyed by the *identity* of the expression node — the plan node
holds the same live ``Expr`` objects the compiler walks, so the keys line
up by construction.

The same machinery powers:

* guard elision in :func:`repro.dbms.expr_compile.compile_expression`
  (``hazards=`` parameter), surfaced as ``proof=`` in EXPLAIN and counted
  in ``absint.proofs`` / ``absint.guards_elided``;
* the ``T2-W204``/``T2-W205`` rewrites (always-true/false Restrict
  elimination, statically-empty-subtree pruning) applied by
  :func:`repro.dbms.plan_rewrite.optimize_plan` and re-certified by the
  plan verifier;
* :func:`check_program_deep` — whole-program propagation along the wires
  (``repro lint --deep``), reusing the per-box transfer registry for
  schemas and emitting ``T2-I301`` proof notes with source positions.

Enable with ``REPRO_ABSINT=1`` or :func:`set_absint_enabled`; everything
here is advisory — with the interpreter off, compiled kernels keep their
runtime guards and behave exactly as before.
"""

from __future__ import annotations

import math
import os
from typing import Any, Callable, Iterable, Mapping

from repro.analyze.diagnostics import Diagnostic, Report
from repro.dbms import plan as P
from repro.dbms import types as T
from repro.dbms.catalog import Database, TableStats, stats_for
from repro.dbms.expr import (
    Binary,
    Call,
    Conditional,
    Expr,
    FieldRef,
    Literal,
    Unary,
)
from repro.dbms.expr_compile import ELIDED_COUNTER
from repro.dbms.relation import RowSet
from repro.dbms.tuples import Schema

__all__ = [
    "AbstractValue",
    "HazardProofs",
    "Interval",
    "PROOFS_COUNTER",
    "abstract_eval",
    "absint_enabled",
    "absint_rewrite_plan",
    "analyze_hazards",
    "check_program_deep",
    "env_from_stats",
    "install_from_env",
    "plan_column_facts",
    "prove_plan_predicate",
    "set_absint_enabled",
    "top_env",
]

_INF = float("inf")

#: Largest int magnitude float64 represents exactly (mirror of expr_compile).
_EXACT_INT = 2 ** 53

#: Canonical declaration for the proof counter; ``stats --check`` verifies
#: every declaration site uses the identical description.
PROOFS_COUNTER = (
    "absint.proofs",
    "hazard-impossibility proofs produced by the abstract interpreter",
)

_UNKNOWN = object()  # constancy lattice top ("no known constant")


def _fmt_bound(value: Any) -> str:
    if isinstance(value, float):
        if value == _INF:
            return "inf"
        if value == -_INF:
            return "-inf"
        return f"{value:g}"
    return str(value)


class Interval:
    """A closed interval over the extended reals (the value-range domain).

    ``Interval()`` is top.  There is no bottom element: emptiness of a
    *relation* is tracked separately (an empty column satisfies any
    interval vacuously).  No widening operator is needed — expressions and
    plans are DAGs, so abstract evaluation always terminates.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Any = -_INF, hi: Any = _INF):
        self.lo = lo
        self.hi = hi

    @staticmethod
    def point(value: Any) -> "Interval":
        return Interval(value, value)

    @property
    def is_top(self) -> bool:
        return self.lo == -_INF and self.hi == _INF

    @property
    def bounded(self) -> bool:
        return self.lo != -_INF and self.hi != _INF

    def contains(self, value: Any) -> bool:
        return self.lo <= value <= self.hi

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval":
        """Intersection; may produce an inverted (vacuous) interval."""
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def excludes_zero(self) -> bool:
        return self.lo > 0 or self.hi < 0

    def within_exact_int(self) -> bool:
        return self.lo >= -_EXACT_INT and self.hi <= _EXACT_INT

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Interval)
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"[{_fmt_bound(self.lo)}, {_fmt_bound(self.hi)}]"


_TOP_IV = Interval()


class AbstractValue:
    """One attribute's abstract value across all four domains."""

    __slots__ = ("type", "interval", "maybe_nan", "nullable", "const")

    def __init__(
        self,
        type_: T.AtomicType | None,
        interval: Interval | None = None,
        *,
        maybe_nan: bool = False,
        nullable: bool = False,
        const: Any = _UNKNOWN,
    ):
        self.type = type_
        self.interval = interval
        self.maybe_nan = maybe_nan
        self.nullable = nullable
        self.const = const

    # -- constructors ---------------------------------------------------

    @staticmethod
    def top(atomic: T.AtomicType | None) -> "AbstractValue":
        if atomic is T.INT:
            return AbstractValue(atomic, _TOP_IV)
        if atomic is T.FLOAT:
            return AbstractValue(atomic, _TOP_IV, maybe_nan=True)
        return AbstractValue(atomic)

    @staticmethod
    def constant(value: Any) -> "AbstractValue":
        atomic = T.infer_type(value)
        interval = None
        maybe_nan = False
        if atomic in (T.INT, T.FLOAT):
            if isinstance(value, float) and value != value:
                interval, maybe_nan = _TOP_IV, True
            else:
                interval = Interval.point(value)
        return AbstractValue(
            atomic, interval, maybe_nan=maybe_nan, const=value
        )

    # -- queries --------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.const is not _UNKNOWN

    @property
    def sign(self) -> str:
        """Derived sign domain: '+', '-', '0', '±', or '?' (non-numeric)."""
        if self.interval is None:
            return "?"
        if self.interval.lo > 0:
            return "+"
        if self.interval.hi < 0:
            return "-"
        if self.interval.lo == 0 == self.interval.hi:
            return "0"
        return "±"

    def contains(self, value: Any) -> bool:
        """Soundness check: could a concrete run produce ``value``?"""
        if value is None:
            return self.nullable
        if isinstance(value, float) and value != value:
            return self.maybe_nan
        if self.is_const:
            try:
                if not (value == self.const):
                    return False
            except Exception:
                return True
        if self.interval is not None and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            return self.interval.contains(value)
        return True

    def join(self, other: "AbstractValue") -> "AbstractValue":
        if self.type is other.type:
            atomic = self.type
        elif (
            self.type is not None and other.type is not None
            and T.numeric(self.type) and T.numeric(other.type)
        ):
            atomic = T.FLOAT
        else:
            atomic = None
        interval = None
        if self.interval is not None and other.interval is not None:
            interval = self.interval.join(other.interval)
        const = _UNKNOWN
        if self.is_const and other.is_const:
            try:
                if self.const == other.const:
                    const = self.const
            except Exception:
                pass
        return AbstractValue(
            atomic,
            interval,
            maybe_nan=self.maybe_nan or other.maybe_nan,
            nullable=self.nullable or other.nullable,
            const=const,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [f"{self.type}"]
        if self.interval is not None:
            parts.append(repr(self.interval))
        if self.maybe_nan:
            parts.append("nan?")
        if self.nullable:
            parts.append("null?")
        if self.is_const:
            parts.append(f"={self.const!r}")
        return f"AbstractValue({' '.join(parts)})"


def _bool_const(value: bool) -> AbstractValue:
    return AbstractValue(T.BOOL, const=value)


_BOOL_TOP = AbstractValue(T.BOOL)


# ---------------------------------------------------------------------------
# Interval arithmetic (conservative; bounds may be Python ints or floats)
# ---------------------------------------------------------------------------


def _candidates(fn: Callable[[Any, Any], Any], l: Interval, r: Interval):
    out = []
    for a in (l.lo, l.hi):
        for b in (r.lo, r.hi):
            try:
                out.append(fn(a, b))
            except OverflowError:
                out.append(math.nan)
    return out


def _from_candidates(values: Iterable[Any]) -> tuple[Interval, bool]:
    lo, hi = _INF, -_INF
    nan = False
    for v in values:
        if isinstance(v, float) and v != v:
            nan = True
            continue
        lo = min(lo, v)
        hi = max(hi, v)
    if nan or lo > hi:
        return _TOP_IV, True
    return Interval(lo, hi), False


def _add_iv(l: Interval, r: Interval) -> tuple[Interval, bool]:
    nan = (l.hi == _INF and r.lo == -_INF) or (l.lo == -_INF and r.hi == _INF)
    lo = -_INF if (l.lo == -_INF or r.lo == -_INF) else l.lo + r.lo
    hi = _INF if (l.hi == _INF or r.hi == _INF) else l.hi + r.hi
    return Interval(lo, hi), nan


def _neg_iv(iv: Interval) -> Interval:
    return Interval(-iv.hi, -iv.lo)


def _mul_iv(l: Interval, r: Interval) -> tuple[Interval, bool]:
    if (not l.bounded and r.contains(0)) or (not r.bounded and l.contains(0)):
        return _TOP_IV, True  # 0 * inf is NaN at runtime
    iv, nan = _from_candidates(_candidates(lambda a, b: a * b, l, r))
    if not l.bounded or not r.bounded:
        # Infinite bounds survive candidate arithmetic but the interior of
        # the product is still covered; keep the candidate hull.
        pass
    return iv, nan


def _div_iv(l: Interval, r: Interval) -> tuple[Interval, bool]:
    if not r.excludes_zero():
        return _TOP_IV, True  # divide-by-zero possible: no range claim
    if not l.bounded or not r.bounded:
        return _TOP_IV, l.lo == -_INF or l.hi == _INF  # inf/inf is NaN
    return _from_candidates(_candidates(lambda a, b: a / b, l, r))


def _mod_iv(l: Interval, r: Interval) -> tuple[Interval, bool]:
    del l
    if r.lo > 0:
        return Interval(0, r.hi), False
    if r.hi < 0:
        return Interval(r.lo, 0), False
    return _TOP_IV, True


def _abs_iv(iv: Interval) -> Interval:
    if iv.lo >= 0:
        return iv
    if iv.hi <= 0:
        return _neg_iv(iv)
    return Interval(0, max(-iv.lo, iv.hi))


def _square_iv(iv: Interval) -> Interval:
    """The interval of ``x * x`` for x in ``iv`` — never negative."""
    if not iv.bounded:
        return Interval(0, _INF)
    a = _abs_iv(iv)
    try:
        return Interval(a.lo * a.lo, a.hi * a.hi)
    except OverflowError:
        return Interval(0, _INF)


# ---------------------------------------------------------------------------
# Hazard proofs
# ---------------------------------------------------------------------------


class HazardProofs:
    """Proof facts collected during one abstract evaluation.

    ``proven`` is keyed by ``(id(expr_node), kind)`` — the compiler walks
    the very same live ``Expr`` objects, so identity keys are stable for
    the lifetime of the plan that holds them.
    """

    __slots__ = ("proven", "notes")

    def __init__(self) -> None:
        self.proven: set[tuple[int, str]] = set()
        self.notes: list[str] = []

    def prove(self, node: Expr, kind: str, note: str) -> None:
        key = (id(node), kind)
        if key not in self.proven:
            self.proven.add(key)
            self.notes.append(note)

    def proves(self, node: Expr, kind: str) -> bool:
        return (id(node), kind) in self.proven

    def __len__(self) -> int:
        return len(self.proven)

    def proof_text(self) -> str:
        return "; ".join(self.notes)


# ---------------------------------------------------------------------------
# The abstract evaluator
# ---------------------------------------------------------------------------


def _numeric_avs(*avs: AbstractValue) -> bool:
    return all(
        av.type is not None and T.numeric(av.type) and av.interval is not None
        for av in avs
    )


def _result_numeric_type(op: str, l: AbstractValue, r: AbstractValue):
    if op == "/":
        return T.FLOAT
    return T.FLOAT if T.FLOAT in (l.type, r.type) else T.INT


def abstract_eval(
    expr: Expr,
    env: Mapping[str, AbstractValue],
    schema: Schema,
    proofs: HazardProofs | None = None,
) -> AbstractValue:
    """Evaluate ``expr`` over abstract values, collecting hazard proofs.

    ``env`` maps attribute names to facts; attributes absent from ``env``
    fall back to the typed top of their schema type, so structural proofs
    (``y*y + 1`` excludes 0) work even with no data facts at all.  The
    expression is assumed to typecheck against ``schema``; anything the
    evaluator does not model precisely returns a sound top.
    """
    if isinstance(expr, Literal):
        return AbstractValue.constant(expr.value)

    if isinstance(expr, FieldRef):
        fact = env.get(expr.name)
        if fact is not None:
            return fact
        atomic = schema.type_of(expr.name) if expr.name in schema else None
        return AbstractValue.top(atomic)

    if isinstance(expr, Unary):
        inner = abstract_eval(expr.operand, env, schema, proofs)
        if expr.op == "not":
            if inner.is_const:
                return _bool_const(not inner.const)
            return _BOOL_TOP
        # numeric negation
        if inner.is_const and not inner.maybe_nan:
            return AbstractValue.constant(-inner.const)
        if inner.interval is None:
            return AbstractValue.top(inner.type)
        return AbstractValue(
            inner.type, _neg_iv(inner.interval), maybe_nan=inner.maybe_nan
        )

    if isinstance(expr, Binary):
        return _eval_binary(expr, env, schema, proofs)

    if isinstance(expr, Conditional):
        condition = abstract_eval(expr.condition, env, schema, proofs)
        if condition.is_const:
            branch = (
                expr.then_branch if condition.const else expr.else_branch
            )
            # Still walk the dead branch for proof collection? No: a proof
            # from a branch that never executes must not elide a live
            # guard, and the compiler compiles both branches — so only
            # facts that hold on *all* paths may prove anything.  Evaluate
            # the dead branch without recording proofs.
            if proofs is not None:
                dead = (
                    expr.else_branch if condition.const else expr.then_branch
                )
                abstract_eval(dead, env, schema, None)
            return abstract_eval(branch, env, schema, proofs)
        then_av = abstract_eval(expr.then_branch, env, schema, proofs)
        else_av = abstract_eval(expr.else_branch, env, schema, proofs)
        return then_av.join(else_av)

    if isinstance(expr, Call):
        return _eval_call(expr, env, schema, proofs)

    return AbstractValue(None)


def _eval_binary(
    expr: Binary,
    env: Mapping[str, AbstractValue],
    schema: Schema,
    proofs: HazardProofs | None,
) -> AbstractValue:
    op = expr.op

    if op in ("and", "or"):
        l = abstract_eval(expr.left, env, schema, proofs)
        r = abstract_eval(expr.right, env, schema, proofs)
        if op == "and":
            if (l.is_const and l.const is False) or \
                    (r.is_const and r.const is False):
                return _bool_const(False)
            if l.is_const and r.is_const:
                return _bool_const(bool(l.const) and bool(r.const))
            return _BOOL_TOP
        if (l.is_const and l.const is True) or \
                (r.is_const and r.const is True):
            return _bool_const(True)
        if l.is_const and r.is_const:
            return _bool_const(bool(l.const) or bool(r.const))
        return _BOOL_TOP

    l = abstract_eval(expr.left, env, schema, proofs)
    r = abstract_eval(expr.right, env, schema, proofs)

    if op in ("+", "-", "*", "/", "%"):
        if l.is_const and r.is_const and not (l.maybe_nan or r.maybe_nan):
            try:
                return AbstractValue.constant(
                    Binary(op, Literal(l.const), Literal(r.const)).evaluate({})
                )
            except Exception:
                pass  # e.g. constant zero divide: fall through to top
        if not _numeric_avs(l, r):
            return AbstractValue.top(
                T.FLOAT if op == "/" else None
            )
        atomic = _result_numeric_type(op, l, r)
        li, ri = l.interval, r.interval
        nan_in = l.maybe_nan or r.maybe_nan
        if op == "+":
            iv, nan = _add_iv(li, ri)
        elif op == "-":
            iv, nan = _add_iv(li, _neg_iv(ri))
        elif op == "*":
            if str(expr.left) == str(expr.right):
                # x*x is a square: never negative, never NaN for real x.
                iv, nan = _square_iv(li), False
            else:
                iv, nan = _mul_iv(li, ri)
        elif op == "/":
            if proofs is not None:
                if ri.excludes_zero():
                    proofs.prove(
                        expr, "div_zero",
                        f"div_zero: divisor ({expr.right}) in {ri}",
                    )
                if l.type is T.INT and r.type is T.INT and \
                        li.within_exact_int() and ri.within_exact_int():
                    proofs.prove(
                        expr, "exact_int",
                        f"exact_int: ({expr.left}) in {li}, "
                        f"({expr.right}) in {ri}",
                    )
            iv, nan = _div_iv(li, ri)
        else:  # "%"
            if proofs is not None and ri.excludes_zero():
                proofs.prove(
                    expr, "div_zero",
                    f"div_zero: modulus ({expr.right}) in {ri}",
                )
            iv, nan = _mod_iv(li, ri)
        return AbstractValue(atomic, iv, maybe_nan=nan_in or nan)

    if op in ("=", "!=", "<", "<=", ">", ">="):
        if proofs is not None and {l.type, r.type} == {T.INT, T.FLOAT}:
            # Mixed int/float comparisons guard the int side's magnitude;
            # prove it bounded and the guard is dead.
            int_side_bounded = all(
                av.interval is not None and av.interval.within_exact_int()
                for av in (l, r) if av.type is T.INT
            )
            if int_side_bounded:
                proofs.prove(
                    expr, "exact_int",
                    f"exact_int: int side of ({expr}) bounded within 2^53",
                )
        return _compare(op, l, r)

    return AbstractValue.top(T.TEXT)  # "||"


def _compare(op: str, l: AbstractValue, r: AbstractValue) -> AbstractValue:
    if l.is_const and r.is_const and not (l.maybe_nan or r.maybe_nan):
        try:
            return _bool_const(
                Binary(op, Literal(l.const), Literal(r.const)).evaluate({})
            )
        except Exception:
            return _BOOL_TOP
    if not _numeric_avs(l, r):
        return _BOOL_TOP
    li, ri = l.interval, r.interval
    no_nan = not (l.maybe_nan or r.maybe_nan)
    # "Always true" claims require NaN-freedom (NaN comparisons are False);
    # "always false" claims hold regardless (NaN makes them False too).
    if op == "<":
        if no_nan and li.hi < ri.lo:
            return _bool_const(True)
        if li.lo >= ri.hi:
            return _bool_const(False)
    elif op == "<=":
        if no_nan and li.hi <= ri.lo:
            return _bool_const(True)
        if li.lo > ri.hi:
            return _bool_const(False)
    elif op == ">":
        if no_nan and li.lo > ri.hi:
            return _bool_const(True)
        if li.hi <= ri.lo:
            return _bool_const(False)
    elif op == ">=":
        if no_nan and li.lo >= ri.hi:
            return _bool_const(True)
        if li.hi < ri.lo:
            return _bool_const(False)
    elif op == "=":
        if li.hi < ri.lo or li.lo > ri.hi:
            return _bool_const(False)
    elif op == "!=":
        if li.hi < ri.lo or li.lo > ri.hi:
            # Disjoint intervals: non-NaN values differ, and NaN != x is
            # True as well — so the claim holds even with NaN present.
            return _bool_const(True)
    return _BOOL_TOP


_DATE_PART_RANGES = {
    "year": Interval(1, 9999),
    "month": Interval(1, 12),
    "day": Interval(1, 31),
    "day_of_year": Interval(1, 366),
}


def _eval_call(
    expr: Call,
    env: Mapping[str, AbstractValue],
    schema: Schema,
    proofs: HazardProofs | None,
) -> AbstractValue:
    name = expr.fn.name
    args = [abstract_eval(arg, env, schema, proofs) for arg in expr.args]

    if name == "sqrt" and len(args) == 1:
        a = args[0]
        if a.interval is not None:
            if proofs is not None and a.interval.lo >= 0:
                proofs.prove(
                    expr, "sqrt_nonneg",
                    f"sqrt_nonneg: ({expr.args[0]}) in {a.interval}",
                )
            if a.interval.hi >= 0:
                lo = math.sqrt(max(a.interval.lo, 0))
                hi = (
                    _INF if a.interval.hi == _INF
                    else math.sqrt(a.interval.hi)
                )
                return AbstractValue(
                    T.FLOAT, Interval(lo, hi),
                    maybe_nan=a.maybe_nan or a.interval.lo < 0,
                )
        return AbstractValue.top(T.FLOAT)

    if name == "abs" and len(args) == 1:
        a = args[0]
        if a.interval is not None:
            return AbstractValue(
                a.type, _abs_iv(a.interval), maybe_nan=a.maybe_nan
            )
        return AbstractValue.top(a.type)

    if name in ("floor", "ceil", "round") and len(args) == 1:
        a = args[0]
        if a.interval is not None and a.interval.bounded and not a.maybe_nan:
            return AbstractValue(
                T.INT,
                Interval(
                    int(math.floor(a.interval.lo)),
                    int(math.ceil(a.interval.hi)),
                ),
            )
        return AbstractValue(T.INT, _TOP_IV)

    if name in ("min", "max") and len(args) >= 2 and _numeric_avs(*args):
        if any(a.maybe_nan for a in args):
            return AbstractValue.top(
                T.FLOAT if T.FLOAT in [a.type for a in args] else T.INT
            )
        pick = min if name == "min" else max
        lo = pick(a.interval.lo for a in args)
        hi = pick(a.interval.hi for a in args)
        atomic = T.FLOAT if T.FLOAT in [a.type for a in args] else T.INT
        return AbstractValue(atomic, Interval(lo, hi))

    if name == "length" and len(args) == 1:
        return AbstractValue(T.INT, Interval(0, _INF))

    if name in _DATE_PART_RANGES and len(args) == 1:
        return AbstractValue(T.INT, _DATE_PART_RANGES[name])

    if all(a.is_const for a in args) and not any(a.maybe_nan for a in args):
        try:
            return AbstractValue.constant(
                expr.fn.apply(*[a.const for a in args])
            )
        except Exception:
            pass

    try:
        atomic = expr.fn.infer([a.type for a in args])
    except Exception:
        atomic = None
    return AbstractValue.top(atomic)


def analyze_hazards(
    expr: Expr, schema: Schema, env: Mapping[str, AbstractValue]
) -> HazardProofs:
    """Run the evaluator purely for its proofs."""
    proofs = HazardProofs()
    abstract_eval(expr, env, schema, proofs)
    return proofs


# ---------------------------------------------------------------------------
# Entry facts: catalog stats -> abstract environments
# ---------------------------------------------------------------------------


def top_env(schema: Schema) -> dict[str, AbstractValue]:
    """The no-information environment: typed top for every attribute."""
    return {
        field.name: AbstractValue.top(field.type) for field in schema
    }


def env_from_stats(
    stats: TableStats, schema: Schema
) -> dict[str, AbstractValue]:
    """Column stats as entry facts (NaN-bearing columns keep their bounds
    with ``maybe_nan`` set; empty columns are typed top)."""
    env: dict[str, AbstractValue] = {}
    for field in schema:
        cs = stats.column(field.name)
        if cs is None or cs.minimum is None or \
                field.type not in (T.INT, T.FLOAT):
            env[field.name] = AbstractValue.top(field.type)
            continue
        interval = Interval(cs.minimum, cs.maximum)
        const = cs.minimum if cs.constant else _UNKNOWN
        env[field.name] = AbstractValue(
            field.type, interval, maybe_nan=cs.has_nan, const=const
        )
    return env


# ---------------------------------------------------------------------------
# Plan-level facts and predicate refinement
# ---------------------------------------------------------------------------

#: Unary plan ops that only drop or reorder rows: child facts pass through.
_ROW_SUBSET_OPS = frozenset((
    "SampleNode", "LimitNode", "OrderByNode", "DistinctNode",
    "ToColumnsNode", "ToRowsNode", "ParallelMapNode",
    "ColumnarLimitNode", "ColumnarDistinctNode", "ColumnarOrderByNode",
))


def _refine_env(
    env: dict[str, AbstractValue], predicate: Expr, schema: Schema
) -> dict[str, AbstractValue]:
    """Tighten facts with what a passed predicate implies (conjuncts of
    ``field cmp expr`` only — everything else is ignored, conservatively).

    Rows where the comparison is False (including NaN operands) are
    dropped, so a surviving ``x > c`` row has a non-NaN ``x >= c``."""
    if isinstance(predicate, Binary) and predicate.op == "and":
        env = _refine_env(env, predicate.left, schema)
        return _refine_env(env, predicate.right, schema)
    if not isinstance(predicate, Binary):
        return env
    op = predicate.op
    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
    ref, other = predicate.left, predicate.right
    if not isinstance(ref, FieldRef) and isinstance(predicate.right, FieldRef):
        ref, other = predicate.right, predicate.left
        op = flip.get(op, op)
    if not isinstance(ref, FieldRef) or op not in flip:
        return env
    fact = env.get(ref.name)
    if fact is None or fact.interval is None:
        return env
    bound = abstract_eval(other, env, schema)
    if bound.interval is None:
        return env
    iv = fact.interval
    if op in ("<", "<="):
        iv = iv.meet(Interval(-_INF, bound.interval.hi))
    elif op in (">", ">="):
        iv = iv.meet(Interval(bound.interval.lo, _INF))
    elif op == "=":
        iv = iv.meet(bound.interval)
    else:
        return env
    if iv.lo > iv.hi:
        iv = fact.interval  # vacuous meet: inputs were already contradictory
    out = dict(env)
    out[ref.name] = AbstractValue(
        fact.type, iv, maybe_nan=False, const=fact.const
    )
    return out


def plan_column_facts(node: P.PlanNode) -> dict[str, AbstractValue]:
    """Abstract facts about the columns ``node`` produces.

    Facts over-approximate: any operator that only drops/reorders rows
    passes its child's facts through unchanged.  Unknown operators (joins,
    aggregates, ...) return the typed top of their schema, so structural
    proofs still apply downstream of them."""
    if isinstance(node, P.ScanNode):
        source = getattr(node, "_source", None)
        if isinstance(source, P.LazyRowSet):
            # Never force the lazy set: derive facts from its plan instead.
            return plan_column_facts(source.plan)
        if isinstance(source, RowSet):
            return env_from_stats(stats_for(source), node.schema)
        return top_env(node.schema)
    if isinstance(node, P.CacheNode):
        # The cached plan appears as the child (for EXPLAIN continuity).
        return plan_column_facts(node.children[0])
    if isinstance(node, (P.RestrictNode, P.ColumnarRestrictNode)):
        env = plan_column_facts(node.children[0])
        predicate = getattr(node, "predicate", None)
        if predicate is not None:
            env = _refine_env(env, predicate, node.children[0].schema)
        return env
    if isinstance(node, (P.ProjectNode, P.ColumnarProjectNode)):
        child = plan_column_facts(node.children[0])
        return {
            name: child.get(name, AbstractValue.top(node.schema.type_of(name)))
            for name in node.schema.names
        }
    if isinstance(node, (P.RenameNode, P.ColumnarRenameNode)):
        child = plan_column_facts(node.children[0])
        mapping = _rename_mapping(node)
        out: dict[str, AbstractValue] = {}
        for name in node.schema.names:
            old = mapping.get(name, name)
            out[name] = child.get(
                old, AbstractValue.top(node.schema.type_of(name))
            )
        return out
    if type(node).__name__ in _ROW_SUBSET_OPS and node.children:
        return plan_column_facts(node.children[0])
    return top_env(node.schema)


def _rename_mapping(node: P.PlanNode) -> dict[str, str]:
    """new-name -> old-name for a (columnar) rename node."""
    mapping = getattr(node, "mapping", None)
    if isinstance(mapping, dict):  # ColumnarRenameNode: old -> new
        return {new: old for old, new in mapping.items()}
    old = getattr(node, "_old", None)
    new = getattr(node, "_new", None)
    if isinstance(old, str) and isinstance(new, str):
        return {new: old}
    return {}


# ---------------------------------------------------------------------------
# The plan annotator (hook installed into repro.dbms.plan)
# ---------------------------------------------------------------------------


def _proofs_counter():
    from repro.obs import global_registry

    return global_registry().counter(*PROOFS_COUNTER)


def prove_plan_predicate(
    predicate: Expr, child: P.PlanNode
) -> HazardProofs:
    """The annotator: prove away hazards in a plan predicate.

    Called by compiled plan nodes at construction; the returned proofs are
    handed to :func:`repro.dbms.expr_compile.compile_predicate` to elide
    the corresponding runtime guards."""
    env = plan_column_facts(child)
    proofs = analyze_hazards(predicate, child.schema, env)
    if proofs.proven:
        _proofs_counter().inc(len(proofs.proven))
    return proofs


def absint_enabled() -> bool:
    """Is the abstract interpreter installed as the plan annotator?"""
    return P.plan_annotator() is not None


def set_absint_enabled(enabled: bool) -> bool:
    """Install (or remove) the plan annotator; returns the previous state."""
    previous = absint_enabled()
    P.set_plan_annotator(prove_plan_predicate if enabled else None)
    return previous


def install_from_env(environ: Mapping[str, str] | None = None) -> bool:
    """Enable the interpreter when ``REPRO_ABSINT=1`` (the CLI/env hook)."""
    environ = os.environ if environ is None else environ
    if environ.get("REPRO_ABSINT") == "1":
        set_absint_enabled(True)
        return True
    return False


# ---------------------------------------------------------------------------
# Certified rewrites: dead predicates and statically empty subtrees
# ---------------------------------------------------------------------------


def _predicate_truth(node: P.RestrictNode) -> bool | None:
    """The constant truth value of a Restrict's predicate, if provable."""
    env = plan_column_facts(node.children[0])
    verdict = abstract_eval(node.predicate, env, node.children[0].schema)
    if verdict.is_const and isinstance(verdict.const, bool):
        return verdict.const
    return None


def _empty_scan(schema: Schema) -> P.ScanNode:
    return P.ScanNode(RowSet(schema, ()), name="empty")


def _is_statically_empty(node: P.PlanNode) -> bool:
    return (
        isinstance(node, P.ScanNode)
        and isinstance(getattr(node, "_source", None), RowSet)
        and not isinstance(node._source, P.LazyRowSet)
        and len(node._source) == 0
    )


#: Ops through which emptiness propagates (empty input => empty output).
_EMPTY_CLOSED = (
    P.ProjectNode, P.RenameNode, P.RestrictNode, P.OrderByNode,
    P.DistinctNode, P.LimitNode, P.SampleNode,
)
_EMPTY_JOINS = (
    P.CrossProductNode, P.NestedLoopJoinNode, P.HashJoinNode,
    P.ThetaJoinNode,
)


def absint_rewrite_plan(
    root: P.PlanNode, log: list[str] | None = None
) -> tuple[P.PlanNode, list[str]]:
    """Apply the abstract-interpretation rewrites to a plan.

    * an always-**true** Restrict is removed (``T2-W204``);
    * an always-**false** Restrict becomes an empty scan (``T2-W204`` +
      ``T2-W205``), and emptiness is then propagated upward through
      every operator that cannot manufacture tuples from nothing.

    Runs inside :func:`repro.dbms.plan_rewrite.optimize_plan` (when the
    interpreter is enabled) *before* parallelization/columnarization, and
    the optimizer's existing schema check + plan verifier re-certify the
    rewritten tree."""
    log = log if log is not None else []

    def walk(node: P.PlanNode) -> P.PlanNode:
        # Leaves end the recursion; compiled regions (columnar kernels,
        # parallel operators) hold internal templates besides ``children``
        # and are left untouched — this pass runs before those rewrites.
        if isinstance(node, (P.ScanNode, P.CacheNode)) or \
                node.backend != "row" or \
                type(node).__name__.startswith("Parallel"):
            return node
        node._children = tuple(walk(child) for child in node.children)

        if isinstance(node, P.RestrictNode):
            truth = _predicate_truth(node)
            if truth is True:
                log.append(
                    f"absint: removed always-true restrict "
                    f"({node.predicate}) [T2-W204]"
                )
                return node.children[0]
            if truth is False:
                log.append(
                    f"absint: restrict ({node.predicate}) is always false; "
                    f"replaced subtree with an empty scan [T2-W204, T2-W205]"
                )
                return _empty_scan(node.schema)

        children_empty = [
            _is_statically_empty(child) for child in node.children
        ]
        if isinstance(node, P.UnionNode):
            if all(children_empty):
                log.append("absint: pruned empty union [T2-W205]")
                return _empty_scan(node.schema)
            if any(children_empty):
                keep = node.children[0 if children_empty[1] else 1]
                if keep.schema == node.schema:
                    log.append(
                        "absint: dropped statically-empty union arm "
                        "[T2-W205]"
                    )
                    return keep
        elif isinstance(node, _EMPTY_JOINS):
            if any(children_empty):
                log.append(
                    f"absint: pruned {type(node).__name__} over a "
                    f"statically-empty input [T2-W205]"
                )
                return _empty_scan(node.schema)
        elif isinstance(node, _EMPTY_CLOSED) and children_empty[0]:
            log.append(
                f"absint: pruned {type(node).__name__} over a "
                f"statically-empty input [T2-W205]"
            )
            return _empty_scan(node.schema)
        return node

    return walk(root), log


# ---------------------------------------------------------------------------
# Whole-program propagation: repro lint --deep
# ---------------------------------------------------------------------------


class _Facts:
    """Per-wire abstract state: attribute facts plus static emptiness."""

    __slots__ = ("env", "empty")

    def __init__(
        self, env: dict[str, AbstractValue] | None, empty: bool = False
    ):
        self.env = env
        self.empty = empty


def _deep_expr(source: str, schema: Schema) -> Expr | None:
    from repro.analyze.exprcheck import analyze_expression

    expr, __, diagnostics = analyze_expression(source, schema)
    if expr is None or any(d.is_error for d in diagnostics):
        return None
    return expr


def _note_proofs(
    report: Report, box, source: str, proofs: HazardProofs
) -> None:
    for note in proofs.notes:
        report.add(
            Diagnostic(
                "T2-I301",
                f"proof: {note}",
                box_id=box.box_id,
                box=box.describe(),
                source=source,
            )
        )


def check_program_deep(program, database: Database | None = None) -> Report:
    """Abstract interpretation along the program's wires.

    Complements :func:`repro.analyze.checker.check_program` (which should
    be run first — this pass assumes a schema-checked program and stays
    silent about anything it cannot prove).  Emits:

    * ``T2-W204`` — a Restrict/Switch predicate that is statically always
      true or always false;
    * ``T2-W205`` — a viewer demanded from a statically empty wire;
    * ``T2-I301`` — hazard-impossibility proof notes for predicates and
      attribute definitions, with source positions.
    """
    from repro.analyze.checker import CheckContext, _check_edges
    from repro.dataflow.registry import schema_transfer
    from repro.analyze.values import RelValue

    report = Report()
    ctx = CheckContext(program, database, Report())  # scratch: schemas only
    bad_edges = _check_edges(program, ctx)
    produced: dict[tuple[int, str], Any] = {}
    facts: dict[tuple[int, str], _Facts] = {}
    unknown = _Facts(None)

    for box_id in program.topological_order():
        box = program.box(box_id)
        inputs: dict[str, Any] = {}
        in_facts: dict[str, _Facts] = {}
        for port in box.inputs:
            edge = program.edge_into_port(box_id, port.name)
            if edge is None or edge in bad_edges:
                inputs[port.name] = None
                in_facts[port.name] = unknown
            else:
                key = (edge.src_box, edge.src_port)
                inputs[port.name] = produced.get(key)
                in_facts[port.name] = facts.get(key, unknown)
        transfer = schema_transfer(box.type_name)
        result = (transfer(box, inputs, ctx) or {}) if transfer else {}
        out_facts = _deep_box_facts(
            box, inputs, in_facts, result, database, report, RelValue
        )
        for port in box.outputs:
            produced[(box_id, port.name)] = result.get(port.name)
            facts[(box_id, port.name)] = out_facts.get(port.name, unknown)
        if not box.outputs:  # a sink: demanded output
            fact = in_facts.get("in", unknown)
            if fact.empty:
                report.add(
                    Diagnostic(
                        "T2-W205",
                        "statically empty result: no tuple can ever reach "
                        "this viewer",
                        box_id=box.box_id,
                        box=box.describe(),
                        hint="an upstream restriction is provably "
                        "unsatisfiable for the current data",
                    )
                )
    return report


def _deep_box_facts(
    box,
    inputs: dict[str, Any],
    in_facts: dict[str, "_Facts"],
    result: dict[str, Any],
    database: Database | None,
    report: Report,
    RelValue,
) -> dict[str, "_Facts"]:
    """Transfer abstract facts through one box (best-effort, sound)."""
    kind = box.type_name
    unknown = _Facts(None)
    fact_in = in_facts.get("in", unknown)
    rel_in = inputs.get("in")

    if kind == "AddTable":
        table = box.param("table")
        if database is not None and table and database.has_table(table):
            stats = database.table_stats(table)
            schema = database.table(table).schema
            return {"out": _Facts(
                env_from_stats(stats, schema), empty=stats.row_count == 0
            )}
        return {}

    if kind in ("Restrict", "Switch"):
        source = box.param("predicate")
        if not isinstance(rel_in, RelValue) or not source:
            passthrough = _Facts(fact_in.env, fact_in.empty)
            if kind == "Switch":
                return {"true": passthrough, "false": passthrough}
            return {"out": passthrough}
        schema = rel_in.extended_schema
        expr = _deep_expr(source, schema)
        if expr is None:
            return {}
        env = fact_in.env if fact_in.env is not None else top_env(schema)
        proofs = HazardProofs()
        verdict = abstract_eval(expr, env, schema, proofs)
        _note_proofs(report, box, source, proofs)
        truth = (
            verdict.const
            if verdict.is_const and isinstance(verdict.const, bool)
            else None
        )
        if truth is not None:
            report.add(
                Diagnostic(
                    "T2-W204",
                    f"{kind} predicate {source!r} is statically always "
                    f"{'true' if truth else 'false'}",
                    box_id=box.box_id,
                    box=box.describe(),
                    source=source,
                    pos=expr.pos,
                    hint=(
                        "the restriction never filters anything"
                        if truth else
                        "no tuple of the current data can satisfy it"
                    ),
                )
            )
        kept = _Facts(
            _refine_env(env, expr, schema),
            fact_in.empty or truth is False,
        )
        dropped = _Facts(dict(env), fact_in.empty or truth is True)
        if kind == "Switch":
            return {"true": kept, "false": dropped}
        return {"out": kept}

    if kind in ("SetAttribute", "AddAttribute"):
        name = box.param("name")
        source = box.param("definition")
        if not isinstance(rel_in, RelValue) or not name or not source:
            return {"out": _Facts(fact_in.env, fact_in.empty)}
        schema = rel_in.reference_schema()
        expr = _deep_expr(source, schema)
        if expr is None:
            return {"out": _Facts(fact_in.env, fact_in.empty)}
        env = fact_in.env if fact_in.env is not None else top_env(schema)
        proofs = HazardProofs()
        value = abstract_eval(expr, env, schema, proofs)
        _note_proofs(report, box, source, proofs)
        out = dict(env)
        out[name] = value
        return {"out": _Facts(out, fact_in.empty)}

    if kind == "Project":
        if fact_in.env is None or not isinstance(
            result.get("out"), RelValue
        ):
            return {"out": _Facts(None, fact_in.empty)}
        names = set(result["out"].extended_schema.names)
        return {"out": _Facts(
            {k: v for k, v in fact_in.env.items() if k in names},
            fact_in.empty,
        )}

    if kind == "Rename":
        old, new = box.param("old"), box.param("new")
        if fact_in.env is None or not old or not new:
            return {"out": _Facts(None, fact_in.empty)}
        env = dict(fact_in.env)
        if old in env:
            env[new] = env.pop(old)
        return {"out": _Facts(env, fact_in.empty)}

    if kind in ("ScaleAttribute", "TranslateAttribute"):
        name = box.param("name")
        if fact_in.env is None:
            return {"out": _Facts(None, fact_in.empty)}
        env = dict(fact_in.env)
        if name in env:
            env[name] = AbstractValue.top(T.FLOAT)
        return {"out": _Facts(env, fact_in.empty)}

    if kind in ("Sample", "SetRange", "OrderBy", "Distinct", "Limit",
                "Threshold"):
        return {"out": _Facts(fact_in.env, fact_in.empty)}

    if kind == "T":
        passthrough = _Facts(fact_in.env, fact_in.empty)
        return {"out1": passthrough, "out2": passthrough}

    if kind == "Union":
        lf = in_facts.get("left", unknown)
        rf = in_facts.get("right", unknown)
        env = None
        if lf.env is not None and rf.env is not None:
            env = {
                name: lf.env[name].join(rf.env[name])
                for name in lf.env
                if name in rf.env
            }
        return {"out": _Facts(env, lf.empty and rf.empty)}

    if kind == "Join":
        lf = in_facts.get("left", unknown)
        rf = in_facts.get("right", unknown)
        return {
            port.name: _Facts(None, lf.empty or rf.empty)
            for port in box.outputs
        }

    return {}
