"""Output-schema transfer functions: the static mirror of every box catalog.

Each registered box type gets a transfer function (via
:func:`repro.dataflow.registry.register_schema_transfer`) that mirrors its
``fire`` method at the schema level: abstract input values in, abstract
output values out, with every runtime validation reproduced as a
:class:`~repro.analyze.diagnostics.Diagnostic` instead of an exception.

A transfer returning ``None`` for an output marks it *unknown*, which
suppresses cascading diagnostics downstream.  The context object (``ctx``)
is provided by :mod:`repro.analyze.checker` and offers ``report``/``emit``
for diagnostics, ``require`` for required params, and ``database`` for
catalog lookups.
"""

from __future__ import annotations

from repro.analyze.exprcheck import analyze_expression, types_compatible
from repro.analyze.values import (
    CompAttr,
    CompValue,
    GroupValue,
    RelValue,
    ScalarValue,
    ensure_comp,
)
from repro.dataflow.registry import register_schema_transfer
from repro.dbms import types as T
from repro.dbms.plan import AGGREGATES, _AGG_RESULT_TYPE, joined_schema
from repro.dbms.tuples import Field, Schema
from repro.display.displayable import LAYOUTS, SEQ_FIELD
from repro.errors import SchemaError, TypeCheckError

__all__: list[str] = []

_PROTECTED = ("x", "y", "display")
_RESERVED_SLIDERS = ("x", "y", "display")


# ---------------------------------------------------------------------------
# Shared helpers: overload selection, expression checks, method validation
# ---------------------------------------------------------------------------


def _expr(ctx, box, source, schema, *, expect_bool=False, declared=None, what):
    """Check an expression, attributing its diagnostics to ``box``."""
    expr, inferred, diagnostics = analyze_expression(
        source, schema, expect_bool=expect_bool, declared=declared, what=what
    )
    ok = True
    for diagnostic in diagnostics:
        ctx.emit(diagnostic, box)
        ok = ok and not diagnostic.is_error
    return (expr, inferred) if ok else (None, None)


def _sole(ctx, box, names, what, owner):
    """Mirror of ``overload._sole``: the only choice, or an E109."""
    if len(names) == 1:
        return names[0]
    ctx.report(
        "T2-E109",
        f"{owner} has {len(names)} {what}s ({', '.join(names)}); "
        f"specify which {what} the operation applies to",
        box=box,
        hint=f"set the {what!r} parameter",
    )
    return None


def _select_composite(ctx, box, value):
    """Mirror of ``overload.select_composite``; returns (comp, rebuild)."""
    if isinstance(value, RelValue):
        return CompValue([value]), (lambda new: new)
    if isinstance(value, CompValue):
        return value, (lambda new: new)
    if isinstance(value, GroupValue):
        member = box.param("member")
        name = member if member is not None else _sole(
            ctx, box, value.member_names(), "member", "group"
        )
        if name is None:
            return None, None
        composite = value.member(name)
        if composite is None:
            ctx.report(
                "T2-E109",
                f"group has no member {name!r}; members: "
                f"{', '.join(value.member_names()) or '(none)'}",
                box=box,
            )
            return None, None
        return composite, (lambda new: value.replace_member(name, new))
    return None, None


def _select_relation(ctx, box, value):
    """Mirror of ``overload.select_relation``; returns (rel, rebuild)."""
    if isinstance(value, RelValue):
        return value, (lambda new: new)
    composite, rebuild_container = _select_composite(ctx, box, value)
    if composite is None:
        return None, None
    component = box.param("component")
    name = component if component is not None else _sole(
        ctx, box, composite.component_names(), "component", "composite"
    )
    if name is None:
        return None, None
    relation = composite.entry_named(name)
    if relation is None:
        ctx.report(
            "T2-E109",
            f"composite has no component {name!r}; components: "
            f"{', '.join(composite.component_names()) or '(none)'}",
            box=box,
        )
        return None, None

    def rebuild(new):
        return rebuild_container(composite.replace_component(name, new))

    return relation, rebuild


def _apply(ctx, box, value, op):
    """Apply an R-level ``op`` through the overload selection; None on error."""
    if value is None:
        return None
    relation, rebuild = _select_relation(ctx, box, value)
    if relation is None:
        return None
    result = op(relation)
    if result is None:
        return None
    return rebuild(result)


def _with_seq(schema: Schema) -> Schema:
    if SEQ_FIELD in schema:
        return schema
    return schema.extend(Field(SEQ_FIELD, T.INT))


def _rebuild_methods(ctx, box, stored: Schema, methods) -> tuple | None:
    """Re-validate computed attributes over a new stored schema.

    The static mirror of ``MethodSet.rebase``: every method is re-added in
    order, re-inferring expression definitions and re-checking dependency
    sets.  Returns the validated methods, or ``None`` after reporting.
    """
    extended = stored
    out: list[CompAttr] = []
    for method in methods:
        reference = _with_seq(extended)
        if method.source is not None:
            expr, inferred = _expr(
                ctx, box, method.source, reference,
                declared=method.atomic,
                what=f"definition of computed attribute {method.name!r}",
            )
            if expr is None:
                return None
        else:
            missing = sorted(
                dep for dep in method.depends if dep not in reference
            )
            if missing:
                ctx.report(
                    "T2-E105",
                    f"computed attribute {method.name!r} depends on "
                    f"{', '.join(repr(m) for m in missing)}, absent from the "
                    "schema at this point",
                    box=box,
                    hint="keep the attributes the definition references",
                )
                return None
        out.append(method)
        if method.name not in extended:
            extended = extended.extend(Field(method.name, method.atomic))
    return tuple(out)


def _post_validate(ctx, box, rel: RelValue) -> RelValue | None:
    """Mirror of ``DisplayableRelation._validate`` over the abstract value."""
    schema = rel.extended_schema
    ok = True
    for dim in rel.sliders:
        if dim in _RESERVED_SLIDERS:
            ctx.report(
                "T2-E109",
                f"{dim!r} cannot be a slider dimension",
                box=box,
            )
            ok = False
        elif dim not in schema:
            ctx.report(
                "T2-E105",
                f"slider dimension {dim!r} is not an attribute of "
                f"{rel.name!r}; available: {', '.join(schema.names)}",
                box=box,
                hint="add the attribute before using it as a slider",
            )
            ok = False
        elif not T.numeric(schema.type_of(dim)):
            ctx.report(
                "T2-E107",
                f"slider dimension {dim!r} must be numeric, "
                f"got {schema.type_of(dim)}",
                box=box,
            )
            ok = False
    if len(set(rel.sliders)) != len(rel.sliders):
        ctx.report("T2-E110", "duplicate slider dimensions", box=box)
        ok = False
    for axis in ("x", "y"):
        if axis in schema and not T.numeric(schema.type_of(axis)):
            ctx.report(
                "T2-E107",
                f"location attribute {axis!r} must be numeric, "
                f"got {schema.type_of(axis)}",
                box=box,
                hint="x and y position tuples on the canvas",
            )
            ok = False
    if "display" in schema and schema.type_of("display") is not T.DRAWABLES:
        ctx.report(
            "T2-E107",
            f"attribute 'display' must be of drawable-list type, "
            f"got {schema.type_of('display')}",
            box=box,
            hint="declare the display definition with type 'drawables'",
        )
        ok = False
    return rel if ok else None


# ---------------------------------------------------------------------------
# Database-operation boxes (boxes_db)
# ---------------------------------------------------------------------------


@register_schema_transfer("AddTable")
def _t_add_table(box, inputs, ctx):
    table = ctx.require(box, "table")
    if table is None:
        return {"out": None}
    if ctx.database is None:
        return {"out": None}
    if not ctx.database.has_table(table):
        known = ", ".join(ctx.database.table_names()) or "(none)"
        ctx.report(
            "T2-E104",
            f"database has no table {table!r}; tables: {known}",
            box=box,
            hint="name one of the database's tables",
        )
        return {"out": None}
    schema = ctx.database.table(table).schema
    return {"out": RelValue(schema, name=table)}


@register_schema_transfer("Restrict")
def _t_restrict(box, inputs, ctx):
    predicate = ctx.require(box, "predicate")

    def op(rel):
        if predicate is not None:
            _expr(ctx, box, predicate, rel.extended_schema,
                  expect_bool=True, what="Restrict predicate")
        return rel  # schema-preserving even when the predicate is bad

    return {"out": _apply(ctx, box, inputs.get("in"), op)}


@register_schema_transfer("Project")
def _t_project(box, inputs, ctx):
    fields = ctx.require(box, "fields")

    def op(rel):
        if fields is None:
            return None
        if not fields:
            ctx.report(
                "T2-E109", "projection requires at least one field", box=box
            )
            return None
        missing = [name for name in fields if name not in rel.schema]
        if missing:
            for name in missing:
                computed = rel.method_named(name) is not None
                note = (
                    " (it is a computed attribute; Project keeps stored fields"
                    " and computed attributes survive automatically)"
                    if computed else ""
                )
                ctx.report(
                    "T2-E105",
                    f"Project field {name!r} is not a stored field of "
                    f"{rel.name!r}{note}; stored: {', '.join(rel.schema.names)}",
                    box=box,
                )
            return None
        stored = rel.schema.project(list(fields))
        methods = _rebuild_methods(ctx, box, stored, rel.methods)
        if methods is None:
            return None
        return _post_validate(
            ctx, box, rel.clone(schema=stored, methods=methods)
        )

    return {"out": _apply(ctx, box, inputs.get("in"), op)}


@register_schema_transfer("Sample")
def _t_sample(box, inputs, ctx):
    probability = ctx.require(box, "probability")
    if probability is not None:
        if not isinstance(probability, (int, float)) or isinstance(
            probability, bool
        ) or not 0.0 <= float(probability) <= 1.0:
            ctx.report(
                "T2-E109",
                f"sample probability must be in [0, 1], got {probability!r}",
                box=box,
            )
    return {"out": _apply(ctx, box, inputs.get("in"), lambda rel: rel)}


_JOIN_STRATEGIES = ("hash", "nested_loop")


@register_schema_transfer("Join")
def _t_join(box, inputs, ctx):
    left = inputs.get("left")
    right = inputs.get("right")
    if not isinstance(left, RelValue) or not isinstance(right, RelValue):
        return {"out": None}
    schema, __ = joined_schema(left.schema, right.schema)
    predicate = box.param("predicate")
    ok = True
    if predicate is not None:
        expr, __ = _expr(ctx, box, predicate, schema,
                         expect_bool=True, what="Join predicate")
        ok = expr is not None
    else:
        left_key = ctx.require(box, "left_key")
        right_key = ctx.require(box, "right_key")
        strategy = box.param("strategy", "hash")
        if strategy not in _JOIN_STRATEGIES:
            ctx.report(
                "T2-E109",
                f"unknown join strategy {strategy!r}; "
                f"known: {', '.join(_JOIN_STRATEGIES)}",
                box=box,
            )
            ok = False
        if left_key is None or right_key is None:
            ok = False
        else:
            for key, side in ((left_key, left), (right_key, right)):
                if key not in side.schema:
                    ctx.report(
                        "T2-E105",
                        f"join key {key!r} is not a stored field of "
                        f"{side.name!r}; stored: {', '.join(side.schema.names)}",
                        box=box,
                    )
                    ok = False
            if ok:
                left_type = left.schema.type_of(left_key)
                right_type = right.schema.type_of(right_key)
                if not types_compatible(left_type, right_type):
                    ctx.report(
                        "T2-E108",
                        f"join keys {left_key!r} ({left_type}) and "
                        f"{right_key!r} ({right_type}) have incompatible types",
                        box=box,
                        hint="join keys must be the same type or both numeric",
                    )
                    ok = False
    if not ok:
        return {"out": None}
    return {"out": RelValue(schema, name=f"{left.name}_join_{right.name}")}


@register_schema_transfer("T")
def _t_tee(box, inputs, ctx):
    value = inputs.get("in")
    return {"out1": value, "out2": value}


@register_schema_transfer("Switch")
def _t_switch(box, inputs, ctx):
    predicate = ctx.require(box, "predicate")

    def op(rel):
        if predicate is not None:
            _expr(ctx, box, predicate, rel.extended_schema,
                  expect_bool=True, what="Switch predicate")
        return rel

    result = _apply(ctx, box, inputs.get("in"), op)
    return {"true": result, "false": result}


# ---------------------------------------------------------------------------
# Attribute boxes (boxes_attr)
# ---------------------------------------------------------------------------


def _declared_type(ctx, box):
    """Resolve the declared_type param to an atomic type (None = inferred)."""
    declared = box.param("declared_type")
    if declared is None:
        return None, True
    try:
        return T.type_by_name(declared), True
    except TypeCheckError as exc:
        ctx.report("T2-E109", str(exc), box=box)
        return None, False


@register_schema_transfer("AddAttribute")
def _t_add_attribute(box, inputs, ctx):
    name = ctx.require(box, "name")
    definition = ctx.require(box, "definition")

    def op(rel):
        if name is None or definition is None:
            return None
        declared, declared_ok = _declared_type(ctx, box)
        if not declared_ok:
            return None
        if name in rel.extended_schema:
            ctx.report(
                "T2-E110",
                f"attribute {name!r} already exists (stored or computed) on "
                f"{rel.name!r}",
                box=box,
                hint="use Set Attribute to redefine, or pick a new name",
            )
            return None
        expr, inferred = _expr(
            ctx, box, definition, rel.reference_schema(),
            declared=declared, what=f"definition of {name!r}",
        )
        if expr is None or inferred is None:
            return None
        atomic = declared or inferred
        method = CompAttr(name, atomic, expr.fields_used(), definition)
        result = rel.clone(methods=(*rel.methods, method))
        if box.param("location"):
            if not T.numeric(atomic):
                ctx.report(
                    "T2-E107",
                    f"location attribute {name!r} must be numeric, got {atomic}",
                    box=box,
                )
                return None
            if name not in ("x", "y"):
                if name in result.sliders:
                    ctx.report(
                        "T2-E110",
                        f"{name!r} is already a slider dimension",
                        box=box,
                    )
                    return None
                result = result.clone(sliders=(*result.sliders, name))
        return _post_validate(ctx, box, result)

    return {"out": _apply(ctx, box, inputs.get("in"), op)}


@register_schema_transfer("RemoveAttribute")
def _t_remove_attribute(box, inputs, ctx):
    name = ctx.require(box, "name")
    if name in _PROTECTED:
        ctx.report(
            "T2-E109",
            f"cannot remove attribute {name!r}: x, y, and display are "
            "required for a valid visualization",
            box=box,
        )
        return {"out": None}

    def op(rel):
        if name is None:
            return None
        sliders = tuple(d for d in rel.sliders if d != name)
        method = rel.method_named(name)
        if method is not None:
            dependents = [
                m.name for m in rel.methods
                if m.name != name and name in m.depends
            ]
            if dependents:
                ctx.report(
                    "T2-E109",
                    f"cannot remove {name!r}: method {dependents[0]!r} "
                    "depends on it",
                    box=box,
                    hint="remove or redefine the dependent attribute first",
                )
                return None
            methods = tuple(m for m in rel.methods if m.name != name)
            return rel.clone(methods=methods, sliders=sliders)
        if name in rel.schema:
            keep = [f for f in rel.schema.names if f != name]
            if not keep:
                ctx.report(
                    "T2-E109",
                    f"cannot remove {name!r}: it is the only stored field",
                    box=box,
                )
                return None
            stored = rel.schema.project(keep)
            methods = _rebuild_methods(ctx, box, stored, rel.methods)
            if methods is None:
                return None
            return _post_validate(
                ctx, box, rel.clone(schema=stored, methods=methods,
                                    sliders=sliders)
            )
        ctx.report(
            "T2-E105",
            f"relation {rel.name!r} has no attribute {name!r}; available: "
            f"{', '.join(rel.extended_schema.names)}",
            box=box,
        )
        return None

    return {"out": _apply(ctx, box, inputs.get("in"), op)}


@register_schema_transfer("SetAttribute")
def _t_set_attribute(box, inputs, ctx):
    name = ctx.require(box, "name")
    definition = ctx.require(box, "definition")

    def op(rel):
        if name is None or definition is None:
            return None
        if name in rel.schema:
            ctx.report(
                "T2-E110",
                f"{name!r} is a stored field; Set Attribute redefines "
                "computed attributes only",
                box=box,
                hint="use Add Attribute under a new name",
            )
            return None
        declared, declared_ok = _declared_type(ctx, box)
        if not declared_ok:
            return None
        expr, inferred = _expr(
            ctx, box, definition, rel.reference_schema(),
            declared=declared, what=f"definition of {name!r}",
        )
        if expr is None or inferred is None:
            return None
        atomic = declared or inferred
        method = CompAttr(name, atomic, expr.fields_used(), definition)
        existing = rel.method_named(name)
        if existing is None:
            methods = (*rel.methods, method)
        else:
            methods = tuple(
                method if m.name == name else m for m in rel.methods
            )
        rebuilt = _rebuild_methods(ctx, box, rel.schema, methods)
        if rebuilt is None:
            return None
        return _post_validate(ctx, box, rel.clone(methods=rebuilt))

    return {"out": _apply(ctx, box, inputs.get("in"), op)}


@register_schema_transfer("SwapAttributes")
def _t_swap_attributes(box, inputs, ctx):
    first = ctx.require(box, "first")
    second = ctx.require(box, "second")
    if first is not None and first == second:
        ctx.report(
            "T2-E109", "Swap Attributes needs two distinct attributes", box=box
        )
        return {"out": None}

    def op(rel):
        if first is None or second is None:
            return None
        a, b = rel.method_named(first), rel.method_named(second)
        if a is not None and b is not None:
            if not types_compatible(a.atomic, b.atomic):
                ctx.report(
                    "T2-E108",
                    f"cannot swap attributes of different types: {first!r} is "
                    f"{a.atomic}, {second!r} is {b.atomic}",
                    box=box,
                )
                return None
            swapped = []
            for m in rel.methods:
                if m.name == first:
                    swapped.append(CompAttr(first, b.atomic, b.depends, b.source))
                elif m.name == second:
                    swapped.append(CompAttr(second, a.atomic, a.depends, a.source))
                else:
                    swapped.append(m)
            return _post_validate(ctx, box, rel.clone(methods=tuple(swapped)))
        if first in rel.schema and second in rel.schema:
            ta, tb = rel.schema.type_of(first), rel.schema.type_of(second)
            if ta is not tb:
                ctx.report(
                    "T2-E108",
                    f"cannot swap stored fields of different types: "
                    f"{first!r} is {ta}, {second!r} is {tb}",
                    box=box,
                )
                return None
            return rel
        for attr in (first, second):
            if attr not in rel.extended_schema:
                ctx.report(
                    "T2-E105",
                    f"relation {rel.name!r} has no attribute {attr!r}; "
                    f"available: {', '.join(rel.extended_schema.names)}",
                    box=box,
                )
                return None
        ctx.report(
            "T2-E108",
            f"cannot swap {first!r} and {second!r}: both must be computed "
            "attributes or both stored fields",
            box=box,
        )
        return None

    return {"out": _apply(ctx, box, inputs.get("in"), op)}


def _numeric_adjust(box, inputs, ctx):
    name = ctx.require(box, "name")
    amount = ctx.require(box, "amount")
    if amount is not None and (
        not isinstance(amount, (int, float)) or isinstance(amount, bool)
    ):
        ctx.report(
            "T2-E109", f"amount must be a number, got {amount!r}", box=box
        )

    def op(rel):
        if name is None:
            return None
        method = rel.method_named(name)
        if method is not None:
            if not T.numeric(method.atomic):
                ctx.report(
                    "T2-E107",
                    f"attribute {name!r} is {method.atomic}; Scale/Translate "
                    "apply to numeric attributes only",
                    box=box,
                )
                return None
            adjusted = CompAttr(name, T.FLOAT, method.depends, None)
            methods = tuple(
                adjusted if m.name == name else m for m in rel.methods
            )
            return rel.clone(methods=methods)
        if name in rel.schema:
            atomic = rel.schema.type_of(name)
            if not T.numeric(atomic):
                ctx.report(
                    "T2-E107",
                    f"stored field {name!r} is {atomic}; Scale/Translate "
                    "apply to numeric attributes only",
                    box=box,
                )
                return None
            if (
                atomic is T.INT
                and isinstance(amount, (int, float))
                and not float(amount).is_integer()
            ):
                # Mirrors the runtime rule: a stored int column cannot hold
                # the non-integer values this adjustment would produce.
                ctx.report(
                    "T2-E107",
                    f"adjusting stored int field {name!r} by non-integer "
                    f"{amount} would produce non-integer values",
                    box=box,
                    hint="use Add Attribute to derive a float attribute "
                    "instead",
                )
                return None
            return rel
        ctx.report(
            "T2-E105",
            f"relation {rel.name!r} has no attribute {name!r}; available: "
            f"{', '.join(rel.extended_schema.names)}",
            box=box,
        )
        return None

    return {"out": _apply(ctx, box, inputs.get("in"), op)}


register_schema_transfer("ScaleAttribute")(_numeric_adjust)
register_schema_transfer("TranslateAttribute")(_numeric_adjust)


@register_schema_transfer("CombineDisplays")
def _t_combine_displays(box, inputs, ctx):
    first = ctx.require(box, "first")
    second = ctx.require(box, "second")
    target = box.param("target", "display")

    def op(rel):
        if first is None or second is None:
            return None
        schema = rel.extended_schema
        for name in (first, second):
            if name not in schema:
                ctx.report(
                    "T2-E105",
                    f"relation {rel.name!r} has no display attribute {name!r};"
                    f" available: {', '.join(schema.names)}",
                    box=box,
                )
                return None
            if schema.type_of(name) is not T.DRAWABLES:
                ctx.report(
                    "T2-E107",
                    f"attribute {name!r} is {schema.type_of(name)}; Combine "
                    "Displays requires drawable-list attributes",
                    box=box,
                )
                return None
        if target in rel.schema:
            ctx.report(
                "T2-E110",
                f"Combine Displays target {target!r} is a stored field",
                box=box,
            )
            return None
        method = CompAttr(target, T.DRAWABLES, {first, second}, None)
        existing = rel.method_named(target)
        if existing is None:
            methods = (*rel.methods, method)
        else:
            methods = tuple(
                method if m.name == target else m for m in rel.methods
            )
        return _post_validate(ctx, box, rel.clone(methods=methods))

    return {"out": _apply(ctx, box, inputs.get("in"), op)}


# ---------------------------------------------------------------------------
# Drill-down and multi-view boxes (boxes_display)
# ---------------------------------------------------------------------------


@register_schema_transfer("SetRange")
def _t_set_range(box, inputs, ctx):
    ctx.require(box, "minimum")
    ctx.require(box, "maximum")
    return {"out": _apply(ctx, box, inputs.get("in"), lambda rel: rel)}


@register_schema_transfer("Overlay")
def _t_overlay(box, inputs, ctx):
    base_value = inputs.get("base")
    top_value = inputs.get("top")
    if base_value is None or top_value is None:
        return {"out": None}
    if isinstance(top_value, GroupValue):
        ctx.report(
            "T2-E102",
            "Overlay 'top' input must be a composite or relation, got a group",
            box=box,
            port="top",
            hint="stitch groups; overlay composites",
        )
        return {"out": None}
    base, rebuild = _select_composite(ctx, box, base_value)
    if base is None:
        return {"out": None}
    top = ensure_comp(top_value)
    result = base.copy()
    for entry in top.entries:
        if result.entries and entry.dimension != result.dimension:
            ctx.report(
                "T2-W203",
                f"dimension mismatch: composite is {result.dimension}-"
                f"dimensional, {entry.name!r} is {entry.dimension}-dimensional;"
                " lower-dimensional relations are treated as invariant in the"
                " extra dimensions",
                box=box,
            )
        result._add_entry(entry)
    return {"out": rebuild(result)}


@register_schema_transfer("Shuffle")
def _t_shuffle(box, inputs, ctx):
    value = inputs.get("in")
    if value is None:
        return {"out": None}
    composite, rebuild = _select_composite(ctx, box, value)
    if composite is None:
        return {"out": None}
    component = ctx.require(box, "component")
    if component is None:
        return {"out": None}
    if composite.entry_named(component) is None:
        ctx.report(
            "T2-E109",
            f"no component {component!r} in composite; have: "
            f"{', '.join(composite.component_names()) or '(none)'}",
            box=box,
        )
        return {"out": None}
    shuffled = composite.copy()
    entry = shuffled.entry_named(component)
    shuffled.entries.remove(entry)
    shuffled.entries.append(entry)
    return {"out": rebuild(shuffled)}


@register_schema_transfer("Stitch")
def _t_stitch(box, inputs, ctx):
    arity = box.param("arity", 2)
    names = box.param("names") or [f"c{i + 1}" for i in range(arity)]
    layout = box.param("layout", "horizontal")
    shape = box.param("table_shape")
    ok = True
    if layout not in LAYOUTS:
        ctx.report(
            "T2-E109",
            f"layout must be one of {LAYOUTS}, got {layout!r}",
            box=box,
        )
        ok = False
    if layout == "tabular":
        if shape is None:
            ctx.report(
                "T2-E109", "tabular layout requires a table_shape", box=box
            )
            ok = False
        else:
            try:
                rows, cols = shape
                bad = rows < 1 or cols < 1
            except (TypeError, ValueError):
                bad = True
            if bad:
                ctx.report(
                    "T2-E109", f"illegal table shape {shape!r}", box=box
                )
                ok = False
    if len(set(names)) != len(names):
        duplicate = next(n for n in names if names.count(n) > 1)
        ctx.report(
            "T2-E110",
            f"group already has a member named {duplicate!r}",
            box=box,
            hint="give each stitched member a distinct name",
        )
        ok = False
    members = []
    for i in range(arity):
        value = inputs.get(f"c{i + 1}")
        if isinstance(value, GroupValue):
            ctx.report(
                "T2-E102",
                "Stitch takes composites; to restitch a group, stitch its "
                "members individually",
                box=box,
                port=f"c{i + 1}",
            )
            ok = False
            continue
        if value is None:
            return {"out": None}
        members.append((names[i], ensure_comp(value)))
    if not ok:
        return {"out": None}
    return {"out": GroupValue(members)}


@register_schema_transfer("Replicate")
def _t_replicate(box, inputs, ctx):
    value = inputs.get("in")
    if value is None:
        return {"out": None}
    predicates = box.param("predicates")
    enum_field = box.param("enum_field")
    layout = box.param("layout", "horizontal")
    if not predicates and not enum_field:
        ctx.report(
            "T2-E109",
            "Replicate needs partition predicates or an enum_field",
            box=box,
        )
        return {"out": None}
    if layout not in LAYOUTS:
        ctx.report(
            "T2-E109",
            f"layout must be one of {LAYOUTS}, got {layout!r}",
            box=box,
        )
        return {"out": None}

    relation, rebuild = _select_relation(ctx, box, value)
    if relation is None:
        return {"out": None}
    if predicates:
        ok = True
        for predicate in predicates:
            expr, __ = _expr(
                ctx, box, predicate, relation.extended_schema,
                expect_bool=True, what="Replicate partition predicate",
            )
            ok = ok and expr is not None
        if not ok:
            return {"out": None}
        count = len(predicates)
    else:
        if enum_field not in relation.extended_schema:
            ctx.report(
                "T2-E105",
                f"relation {relation.name!r} has no attribute {enum_field!r};"
                f" available: {', '.join(relation.extended_schema.names)}",
                box=box,
            )
            return {"out": None}
        # The partition count depends on the data; the member list is unknown.
        return {"out": None}

    if isinstance(value, GroupValue):
        members = []
        for pos in range(count):
            for name in value.member_names():
                members.append((f"{name}_part{pos + 1}",
                                value.member(name)))
        return {"out": GroupValue(members)}
    members = [
        (f"part{pos + 1}", ensure_comp(rebuild(relation)))
        for pos in range(count)
    ]
    return {"out": GroupValue(members)}


# ---------------------------------------------------------------------------
# Big-programmer boxes (boxes_extra)
# ---------------------------------------------------------------------------


@register_schema_transfer("Aggregate")
def _t_aggregate(box, inputs, ctx):
    keys = ctx.require(box, "keys")
    aggregations = ctx.require(box, "aggregations")

    def op(rel):
        if keys is None or aggregations is None:
            return None
        schema = rel.schema
        ok = True
        out_fields: list[Field] = []
        for key in keys:
            if key not in schema:
                ctx.report(
                    "T2-E105",
                    f"group-by key {key!r} is not a stored field of "
                    f"{rel.name!r}; stored: {', '.join(schema.names)}",
                    box=box,
                )
                ok = False
            else:
                out_fields.append(schema.field(key))
        for spec in aggregations:
            if len(spec) != 3:
                ctx.report(
                    "T2-E109",
                    f"aggregation spec must be [agg, field, output], "
                    f"got {list(spec)!r}",
                    box=box,
                )
                ok = False
                continue
            agg_name, field, output_name = spec
            if agg_name not in AGGREGATES:
                ctx.report(
                    "T2-E109",
                    f"unknown aggregate {agg_name!r}; "
                    f"known: {', '.join(sorted(AGGREGATES))}",
                    box=box,
                )
                ok = False
                continue
            if field not in schema:
                ctx.report(
                    "T2-E105",
                    f"aggregated field {field!r} is not a stored field of "
                    f"{rel.name!r}; stored: {', '.join(schema.names)}",
                    box=box,
                )
                ok = False
                continue
            source_type = schema.type_of(field)
            if agg_name in ("sum", "avg") and not T.numeric(source_type):
                ctx.report(
                    "T2-E107",
                    f"{agg_name} requires a numeric field, "
                    f"{field!r} is {source_type}",
                    box=box,
                )
                ok = False
                continue
            result_type = _AGG_RESULT_TYPE.get(agg_name, source_type)
            out_fields.append(Field(output_name, result_type))
        if not ok:
            return None
        try:
            out_schema = Schema(out_fields)
        except SchemaError as exc:
            ctx.report("T2-E110", f"aggregate output: {exc}", box=box)
            return None
        return RelValue(out_schema, name=f"{rel.name}_agg")

    return {"out": _apply(ctx, box, inputs.get("in"), op)}


@register_schema_transfer("OrderBy")
def _t_order_by(box, inputs, ctx):
    fields = ctx.require(box, "fields")

    def op(rel):
        if fields is None:
            return None
        for name in fields:
            if name not in rel.schema:
                ctx.report(
                    "T2-E105",
                    f"OrderBy field {name!r} is not a stored field of "
                    f"{rel.name!r}; stored: {', '.join(rel.schema.names)}",
                    box=box,
                )
                return None
        return rel

    return {"out": _apply(ctx, box, inputs.get("in"), op)}


@register_schema_transfer("Distinct")
def _t_distinct(box, inputs, ctx):
    return {"out": _apply(ctx, box, inputs.get("in"), lambda rel: rel)}


@register_schema_transfer("Limit")
def _t_limit(box, inputs, ctx):
    count = ctx.require(box, "count")
    if count is not None and (not isinstance(count, int) or count < 0):
        ctx.report(
            "T2-E109", f"limit must be non-negative, got {count!r}", box=box
        )
    return {"out": _apply(ctx, box, inputs.get("in"), lambda rel: rel)}


@register_schema_transfer("Rename")
def _t_rename(box, inputs, ctx):
    old = ctx.require(box, "old")
    new = ctx.require(box, "new")

    def op(rel):
        if old is None or new is None:
            return None
        if old not in rel.schema:
            ctx.report(
                "T2-E105",
                f"Rename source {old!r} is not a stored field of "
                f"{rel.name!r}; stored: {', '.join(rel.schema.names)}",
                box=box,
            )
            return None
        if new != old and new in rel.schema:
            ctx.report(
                "T2-E110",
                f"cannot rename {old!r} to {new!r}: the field already exists",
                box=box,
            )
            return None
        stored = rel.schema.rename(old, new)
        methods = _rebuild_methods(ctx, box, stored, rel.methods)
        if methods is None:
            return None
        return _post_validate(
            ctx, box,
            rel.clone(
                schema=stored,
                methods=methods,
                sliders=tuple(rel.sliders),
            ),
        )

    return {"out": _apply(ctx, box, inputs.get("in"), op)}


@register_schema_transfer("Union")
def _t_union(box, inputs, ctx):
    left = inputs.get("left")
    right = inputs.get("right")
    if not isinstance(left, RelValue) or not isinstance(right, RelValue):
        return {"out": None}
    if left.schema != right.schema:
        ctx.report(
            "T2-E108",
            f"union requires identical schemas, got "
            f"({', '.join(f'{f.name}:{f.type}' for f in left.schema)}) and "
            f"({', '.join(f'{f.name}:{f.type}' for f in right.schema)})",
            box=box,
            hint="project/rename the inputs into the same shape first",
        )
        return {"out": None}
    return {"out": left}


@register_schema_transfer("Parameter")
def _t_parameter(box, inputs, ctx):
    value_type = box.param("value_type", "float")
    try:
        atomic = T.type_by_name(value_type)
    except TypeCheckError as exc:
        ctx.report("T2-E109", str(exc), box=box)
        return {"out": None}
    value = ctx.require(box, "value")
    if value is not None:
        try:
            atomic.coerce(value)
        except TypeCheckError as exc:
            ctx.report("T2-E107", f"parameter value: {exc}", box=box)
            return {"out": None}
    return {"out": ScalarValue(atomic)}


@register_schema_transfer("Threshold")
def _t_threshold(box, inputs, ctx):
    predicate = ctx.require(box, "predicate")
    try:
        atomic = T.type_by_name(box.param("value_type", "float"))
    except TypeCheckError as exc:
        ctx.report("T2-E109", str(exc), box=box)
        return {"out": None}

    def op(rel):
        if predicate is None:
            return None
        schema = rel.reference_schema()
        if "param" not in schema:
            schema = schema.extend(Field("param", atomic))
        _expr(ctx, box, predicate, schema,
              expect_bool=True, what="Threshold predicate")
        return rel

    return {"out": _apply(ctx, box, inputs.get("in"), op)}


@register_schema_transfer("Viewer")
def _t_viewer(box, inputs, ctx):
    return {}
