"""Plan-IR invariant verification.

:func:`verify_plan` walks a physical-plan tree (:mod:`repro.dbms.plan`) and
re-derives every structural invariant the node constructors established,
reporting violations as ``T2-E111`` diagnostics:

- the tree is acyclic and every node's ``schema`` is consistent with its
  children (Project really projects, Rename really renames, joins carry the
  concatenated-and-renamed schema, Union's inputs are identical, …);
- every Restrict/ThetaJoin predicate is *closed over its input schema* and
  infers to boolean;
- operator parameters are in range (sample probability, limit count,
  aggregate names);
- backend regions are well formed: a columnar kernel's inputs are columnar
  (entered only through a ``ToColumns`` adapter), and a columnar region is
  consumed only through a ``ToRows`` adapter — no bare backend crossings;
- parallel regions are race-free by declaration (``T2-E112``): every morsel
  template inside a :class:`~repro.dbms.plan_parallel.ParallelMapNode` must
  be *declared* pure (:func:`repro.dbms.plan.declared_effect`), the
  partitioned leaf declared a source, and any sample seeded.  The effect
  table uses exact-class lookup, so a subclass that overrides behaviour
  without declaring its own effect is rejected rather than trusted.

Constructors check these once; rewrites (:mod:`repro.dbms.plan_rewrite`)
mutate ``_children`` in place, so a buggy rewrite is exactly what this
verifier exists to catch.  Setting ``REPRO_PLAN_VERIFY=1`` installs
:func:`assert_valid_plan` as the verification hook that runs on every
``PlanNode.open()`` and after every ``optimize_plan`` pass.
"""

from __future__ import annotations

import os

from repro.analyze.diagnostics import Diagnostic, Report
from repro.dbms import plan as P
from repro.dbms import plan_parallel as PP
from repro.dbms import types as T
from repro.errors import SchemaError, StaticAnalysisError, TiogaError

__all__ = ["verify_plan", "assert_valid_plan", "install_from_env"]


def _fail(report: Report, node, message: str, hint: str | None = None) -> None:
    report.add(
        Diagnostic(
            "T2-E111",
            f"{node.describe()}: {message}",
            hint=hint,
        )
    )


def _race(report: Report, node, message: str, hint: str | None = None) -> None:
    report.add(
        Diagnostic(
            "T2-E112",
            f"{node.describe()}: {message}",
            hint=hint,
        )
    )


def _check_parallel_region(report: Report, node) -> None:
    """Effect/race lint for one morsel-parallel region (``T2-E112``).

    Morsel workers run every chain template concurrently over disjoint row
    ranges; that is only sound when each template is *declared* pure in
    :data:`repro.dbms.plan.NODE_EFFECTS` and operates on the row backend.
    Declarations do not inherit, so an undeclared subclass (e.g. a test
    double with a side effect) has effect ``None`` and is rejected here
    even if ``parallelize_plan`` was somehow talked into accepting it.
    """
    for template in node._chain:
        effect = P.declared_effect(template)
        if effect != P.EFFECT_PURE:
            _race(
                report, node,
                f"morsel template {template.describe()} has declared effect "
                f"{effect!r}, want {P.EFFECT_PURE!r}",
                hint="declare_effect(cls, EFFECT_PURE) only for operators "
                "that are safe to run concurrently per-morsel",
            )
        if template.backend != "row":
            _race(
                report, node,
                f"morsel template {template.describe()} is on the "
                f"{template.backend!r} backend, want 'row'",
            )
    if node._sample is not None and node._sample._seed is None:
        _race(
            report, node,
            "unseeded sample inside a parallel region is nondeterministic",
            hint="seed the sample, or leave it serial",
        )
    leaf_effect = P.declared_effect(node._leaf)
    if leaf_effect != P.EFFECT_SOURCE:
        _race(
            report, node,
            f"partitioned leaf {node._leaf.describe()} has declared effect "
            f"{leaf_effect!r}, want {P.EFFECT_SOURCE!r}",
        )


def _check_predicate(report: Report, node, predicate, schema, what: str) -> None:
    """A predicate must be closed over ``schema`` and infer to boolean."""
    free = sorted(
        name for name in predicate.fields_used() if name not in schema
    )
    if free:
        _fail(
            report, node,
            f"{what} references {', '.join(repr(n) for n in free)}, not in "
            f"the input schema ({', '.join(schema.names)})",
            hint="a rewrite moved the predicate past an operator that "
            "changes the schema",
        )
        return
    try:
        inferred = predicate.infer(schema)
    except TiogaError as exc:
        _fail(report, node, f"{what} does not typecheck: {exc}")
        return
    if inferred is not T.BOOL:
        _fail(report, node, f"{what} has type {inferred}, want bool")


def _expect_schema(report: Report, node, expected) -> None:
    if node.schema != expected:
        _fail(
            report, node,
            f"schema is {node.schema!r}, expected {expected!r} from its "
            "children",
        )


def _expect_children(report: Report, node, count: int) -> bool:
    if len(node.children) != count:
        _fail(
            report, node,
            f"has {len(node.children)} children, expected {count}",
        )
        return False
    return True


def _check_backend_edges(report: Report, node) -> None:
    """Adapter placement: backend changes only at ToColumns / ToRows.

    ``columnarize_plan`` wraps every columnar region in exactly one
    ``ToColumns`` at the bottom and one ``ToRows`` at the top; a rewrite
    that splices a kernel against a row node (or vice versa) produces a
    plan whose two protocols disagree about who is iterating what.
    """
    if isinstance(node, P.ToColumnsNode):
        for child in node.children:
            if isinstance(child, P.ColumnarNode):
                _fail(
                    report, node,
                    f"child {child.describe()} is already columnar",
                    hint="ToColumns belongs below the columnar region, "
                    "not inside it",
                )
        return
    if isinstance(node, P.ColumnarNode):
        for child in node.children:
            if not isinstance(child, P.ColumnarNode):
                _fail(
                    report, node,
                    f"row-backend child {child.describe()} without a "
                    "ToColumns adapter",
                )
        return
    if isinstance(node, P.ToRowsNode):
        for child in node.children:
            if not isinstance(child, P.ColumnarNode):
                _fail(
                    report, node,
                    f"child {child.describe()} is not columnar",
                    hint="ToRows consumes a columnar region; a row child "
                    "needs no adapter",
                )
        return
    for child in node.children:
        if isinstance(child, P.ColumnarNode):
            _fail(
                report, node,
                f"columnar child {child.describe()} without a ToRows "
                "adapter",
            )


def _verify_node(report: Report, node) -> None:
    """Dispatch on node class; unknown classes get only generic checks."""
    if isinstance(node, PP.ParallelMapNode):
        if not _expect_children(report, node, 1):
            return
        _expect_schema(report, node, node.children[0].schema)
        # The child is the serial template chain the morsel builders were
        # cloned from; every template (and the partitioned leaf) must still
        # be on that chain, or folded stats and EXPLAIN would lie.
        on_chain = []
        cursor = node.children[0]
        while cursor is not None:
            on_chain.append(cursor)
            cursor = cursor.children[0] if cursor.children else None
        for template in node._chain:
            if template not in on_chain:
                _fail(
                    report, node,
                    f"morsel template {template.describe()} is not on the "
                    "serial chain child",
                )
        if node._leaf not in on_chain:
            _fail(report, node, "partitioned leaf is not on the serial chain")
        _check_parallel_region(report, node)
        return
    if isinstance(node, P.ScanNode):
        _expect_children(report, node, 0)
        source = node._source
        if hasattr(source, "schema") and source.schema != node.schema:
            _fail(report, node, "schema differs from its source's schema")
        return
    if isinstance(node, P.CacheNode):
        if not _expect_children(report, node, 1):
            return
        if node.schema != node._source.schema:
            _fail(report, node, "schema differs from its lazy source's schema")
        if node.children[0] is not node._source.plan:
            _fail(
                report, node,
                "child is not the lazy source's plan (EXPLAIN continuity "
                "broken)",
            )
        return
    if isinstance(node, P.ProjectNode):
        if not _expect_children(report, node, 1):
            return
        child = node.children[0]
        if not node._names:
            _fail(report, node, "projects zero fields")
            return
        missing = [n for n in node._names if n not in child.schema]
        if missing:
            _fail(
                report, node,
                f"projects {', '.join(repr(n) for n in missing)}, not in the "
                f"child schema ({', '.join(child.schema.names)})",
            )
            return
        _expect_schema(report, node, child.schema.project(node._names))
        return
    if isinstance(node, P.RestrictNode):
        if not _expect_children(report, node, 1):
            return
        child = node.children[0]
        _check_predicate(
            report, node, node.predicate, child.schema, "restrict predicate"
        )
        _expect_schema(report, node, child.schema)
        return
    if isinstance(node, P.SampleNode):
        if not _expect_children(report, node, 1):
            return
        if not 0.0 <= node._probability <= 1.0:
            _fail(
                report, node,
                f"sample probability {node._probability!r} outside [0, 1]",
            )
        _expect_schema(report, node, node.children[0].schema)
        return
    if isinstance(node, P.RenameNode):
        if not _expect_children(report, node, 1):
            return
        child = node.children[0]
        old, new = node.mapping
        if old not in child.schema:
            _fail(
                report, node,
                f"renames {old!r}, not in the child schema "
                f"({', '.join(child.schema.names)})",
            )
            return
        try:
            expected = child.schema.rename(old, new)
        except SchemaError as exc:
            _fail(report, node, f"illegal rename: {exc}")
            return
        _expect_schema(report, node, expected)
        return
    if isinstance(node, P.LimitNode):
        if not _expect_children(report, node, 1):
            return
        if node._count < 0:
            _fail(report, node, f"negative limit {node._count}")
        _expect_schema(report, node, node.children[0].schema)
        return
    if isinstance(node, P.OrderByNode):
        if not _expect_children(report, node, 1):
            return
        child = node.children[0]
        missing = [n for n in node._names if n not in child.schema]
        if missing:
            _fail(
                report, node,
                f"orders by {', '.join(repr(n) for n in missing)}, not in "
                f"the child schema ({', '.join(child.schema.names)})",
            )
        _expect_schema(report, node, child.schema)
        return
    if isinstance(node, P.DistinctNode):
        if not _expect_children(report, node, 1):
            return
        _expect_schema(report, node, node.children[0].schema)
        return
    if isinstance(node, P.GroupByNode):
        if not _expect_children(report, node, 1):
            return
        schema = node.children[0].schema
        out_fields = []
        for key in node._keys:
            if key not in schema:
                _fail(
                    report, node,
                    f"groups by {key!r}, not in the child schema "
                    f"({', '.join(schema.names)})",
                )
                return
            out_fields.append(schema.field(key))
        for spec in node._aggregations:
            agg_name, field, output_name = spec
            if agg_name not in P.AGGREGATES:
                _fail(report, node, f"unknown aggregate {agg_name!r}")
                return
            if field not in schema:
                _fail(
                    report, node,
                    f"aggregates {field!r}, not in the child schema "
                    f"({', '.join(schema.names)})",
                )
                return
            source_type = schema.type_of(field)
            if agg_name in ("sum", "avg") and not T.numeric(source_type):
                _fail(
                    report, node,
                    f"{agg_name} over non-numeric field {field!r} "
                    f"({source_type})",
                )
                return
            result_type = P._AGG_RESULT_TYPE.get(agg_name, source_type)
            out_fields.append(P.Field(output_name, result_type))
        try:
            expected = P.Schema(out_fields)
        except SchemaError as exc:
            _fail(report, node, f"illegal output schema: {exc}")
            return
        _expect_schema(report, node, expected)
        return
    if isinstance(node, P.UnionNode):
        if not _expect_children(report, node, 2):
            return
        left, right = node.children
        if left.schema != right.schema:
            _fail(
                report, node,
                f"input schemas differ: {left.schema!r} vs {right.schema!r}",
            )
            return
        _expect_schema(report, node, left.schema)
        return
    if isinstance(node, P.CrossProductNode):
        if not _expect_children(report, node, 2):
            return
        left, right = node.children
        _expect_schema(report, node, P.joined_schema(left.schema, right.schema)[0])
        return
    if isinstance(node, (P.NestedLoopJoinNode, P.HashJoinNode)):
        if not _expect_children(report, node, 2):
            return
        left, right = node.children
        for key, side, label in (
            (node._left_key, left, "left"),
            (node._right_key, right, "right"),
        ):
            if key not in side.schema:
                _fail(
                    report, node,
                    f"{label} join key {key!r} not in the {label} schema "
                    f"({', '.join(side.schema.names)})",
                )
                return
        left_type = left.schema.type_of(node._left_key)
        right_type = right.schema.type_of(node._right_key)
        if left_type is not right_type and not (
            T.numeric(left_type) and T.numeric(right_type)
        ):
            _fail(
                report, node,
                f"join keys have incompatible types "
                f"({left_type} vs {right_type})",
            )
        _expect_schema(report, node, P.joined_schema(left.schema, right.schema)[0])
        return
    if isinstance(node, P.ThetaJoinNode):
        if not _expect_children(report, node, 2):
            return
        left, right = node.children
        expected = P.joined_schema(left.schema, right.schema)[0]
        _check_predicate(
            report, node, node.predicate, expected, "theta-join predicate"
        )
        _expect_schema(report, node, expected)
        return
    if isinstance(node, P.ToColumnsNode):
        if not _expect_children(report, node, 1):
            return
        if node.batch_rows < 1:
            _fail(report, node, f"batch size {node.batch_rows} below 1")
        _expect_schema(report, node, node.children[0].schema)
        return
    if isinstance(node, P.ToRowsNode):
        if not _expect_children(report, node, 1):
            return
        _expect_schema(report, node, node.children[0].schema)
        return
    if isinstance(node, P.ColumnarRestrictNode):
        if not _expect_children(report, node, 1):
            return
        child = node.children[0]
        _check_predicate(
            report, node, node.predicate, child.schema, "restrict predicate"
        )
        _expect_schema(report, node, child.schema)
        return
    if isinstance(node, P.ColumnarProjectNode):
        if not _expect_children(report, node, 1):
            return
        child = node.children[0]
        if not node._names:
            _fail(report, node, "projects zero fields")
            return
        missing = [n for n in node._names if n not in child.schema]
        if missing:
            _fail(
                report, node,
                f"projects {', '.join(repr(n) for n in missing)}, not in the "
                f"child schema ({', '.join(child.schema.names)})",
            )
            return
        _expect_schema(report, node, child.schema.project(node._names))
        return
    if isinstance(node, P.ColumnarRenameNode):
        if not _expect_children(report, node, 1):
            return
        child = node.children[0]
        old, new = node.mapping
        if old not in child.schema:
            _fail(
                report, node,
                f"renames {old!r}, not in the child schema "
                f"({', '.join(child.schema.names)})",
            )
            return
        try:
            expected = child.schema.rename(old, new)
        except SchemaError as exc:
            _fail(report, node, f"illegal rename: {exc}")
            return
        _expect_schema(report, node, expected)
        return
    if isinstance(node, P.ColumnarLimitNode):
        if not _expect_children(report, node, 1):
            return
        if node._count < 0:
            _fail(report, node, f"negative limit {node._count}")
        _expect_schema(report, node, node.children[0].schema)
        return
    if isinstance(node, P.ColumnarDistinctNode):
        if not _expect_children(report, node, 1):
            return
        _expect_schema(report, node, node.children[0].schema)
        return
    if isinstance(node, P.ColumnarOrderByNode):
        if not _expect_children(report, node, 1):
            return
        child = node.children[0]
        missing = [n for n in node._names if n not in child.schema]
        if missing:
            _fail(
                report, node,
                f"orders by {', '.join(repr(n) for n in missing)}, not in "
                f"the child schema ({', '.join(child.schema.names)})",
            )
        _expect_schema(report, node, child.schema)
        return
    if isinstance(node, P.ColumnarGroupByNode):
        if not _expect_children(report, node, 1):
            return
        # Same typing rules as the serial GroupBy — re-derive the output
        # schema through the shared helper both constructors use.
        try:
            expected = P._groupby_output_schema(
                node.children[0].schema, node._keys, node._aggregations
            )
        except TiogaError as exc:
            _fail(report, node, f"illegal grouping: {exc}")
            return
        _expect_schema(report, node, expected)
        return
    if isinstance(node, P.ColumnarHashJoinNode):
        if not _expect_children(report, node, 2):
            return
        left, right = node.children
        for key, side, label in (
            (node._left_key, left, "left"),
            (node._right_key, right, "right"),
        ):
            if key not in side.schema:
                _fail(
                    report, node,
                    f"{label} join key {key!r} not in the {label} schema "
                    f"({', '.join(side.schema.names)})",
                )
                return
        left_type = left.schema.type_of(node._left_key)
        right_type = right.schema.type_of(node._right_key)
        if left_type is not right_type and not (
            T.numeric(left_type) and T.numeric(right_type)
        ):
            _fail(
                report, node,
                f"join keys have incompatible types "
                f"({left_type} vs {right_type})",
            )
        _expect_schema(report, node, P.joined_schema(left.schema, right.schema)[0])
        return
    # Unknown node class: nothing structural to assert beyond the walk.


def verify_plan(root) -> Report:
    """Verify a plan tree; returns a :class:`Report` of ``T2-E111`` findings.

    Shared subtrees (a memoized :class:`CacheNode` source appearing under
    several consumers) are verified once; a node appearing on its own
    ancestor path is reported as a cycle.
    """
    from repro.obs.trace import current_tracer

    verify_span = current_tracer().span("analyze.verify_plan",
                                        root=type(root).__name__)
    report = Report()
    verified: set[int] = set()

    def walk(node, path: set[int]) -> None:
        ident = id(node)
        if ident in path:
            _fail(report, node, "plan tree contains a cycle")
            return
        if ident in verified:
            return
        if not isinstance(node._children, tuple):
            _fail(report, node, "_children is not a tuple (in-place rewrite bug)")
        on_path = path | {ident}
        for child in node.children:
            walk(child, on_path)
        _check_backend_edges(report, node)
        _verify_node(report, node)
        verified.add(ident)

    with verify_span as span:
        walk(root, set())
        span.set(nodes=len(verified), ok=report.ok)
    return report


def assert_valid_plan(root) -> None:
    """Raise :class:`StaticAnalysisError` if the plan violates an invariant."""
    report = verify_plan(root)
    if not report.ok:
        raise StaticAnalysisError(
            "plan-IR verification failed:\n" + report.render(),
            report=report,
        )


def install_from_env(environ=None) -> bool:
    """Install the verifier as the plan hook when ``REPRO_PLAN_VERIFY=1``."""
    if environ is None:
        environ = os.environ
    if environ.get("REPRO_PLAN_VERIFY") == "1":
        P.set_plan_verifier(assert_valid_plan)
        return True
    return False
