"""Static analysis for Tioga-2 programs: lint without executing.

Three non-executing passes over three layers of the system, all reporting
through the shared :class:`Diagnostic`/:class:`Report` vocabulary with
stable ``T2-*`` codes (catalog: ``docs/STATIC_ANALYSIS.md``):

- :func:`check_program` (``repro.analyze.checker``) — schema/type inference
  over a boxes-and-arrows program;
- :func:`analyze_expression` / :func:`check_expression`
  (``repro.analyze.exprcheck``) — the expression typechecker with source
  positions;
- :func:`verify_plan` / :func:`assert_valid_plan`
  (``repro.analyze.planverify``) — plan-IR invariant verification, also
  installable as a runtime hook via ``REPRO_PLAN_VERIFY=1``;
- :func:`check_program_deep` / :func:`abstract_eval`
  (``repro.analyze.absint``) — abstract interpretation over expressions,
  programs, and plans (interval/nullability/constancy/sign domains);
  ``REPRO_ABSINT=1`` installs its hazard prover as the plan annotator so
  the columnar compiler can elide proven-impossible runtime guards.

The heavy passes are imported lazily so ``repro.analyze.diagnostics`` stays
importable from low-level modules (e.g. ``repro.dataflow.graph``) without
creating import cycles.
"""

from __future__ import annotations

from repro.analyze.diagnostics import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    Report,
    code_info,
)

__all__ = [
    "CODES",
    "ERROR",
    "INFO",
    "WARNING",
    "Diagnostic",
    "Report",
    "code_info",
    "check_program",
    "check_program_deep",
    "analyze_expression",
    "check_expression",
    "verify_plan",
    "assert_valid_plan",
    "install_from_env",
    "abstract_eval",
    "absint_enabled",
    "set_absint_enabled",
]

_LAZY = {
    "check_program": "repro.analyze.checker",
    "CheckContext": "repro.analyze.checker",
    "analyze_expression": "repro.analyze.exprcheck",
    "check_expression": "repro.analyze.exprcheck",
    "types_compatible": "repro.analyze.exprcheck",
    "verify_plan": "repro.analyze.planverify",
    "assert_valid_plan": "repro.analyze.planverify",
    "install_from_env": "repro.analyze.planverify",
    "AbstractValue": "repro.analyze.absint",
    "HazardProofs": "repro.analyze.absint",
    "Interval": "repro.analyze.absint",
    "abstract_eval": "repro.analyze.absint",
    "absint_enabled": "repro.analyze.absint",
    "analyze_hazards": "repro.analyze.absint",
    "check_program_deep": "repro.analyze.absint",
    "set_absint_enabled": "repro.analyze.absint",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.analyze' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
