"""The program checker: schema/type inference over boxes-and-arrows programs.

:func:`check_program` walks a :class:`~repro.dataflow.graph.Program` without
executing it and reports every problem it can prove statically:

1. **Edge validity** — every edge must name real ports of compatible kinds
   (``T2-E101``/``T2-E102``).  ``Program.connect`` enforces this at edit
   time; the checker re-proves it so deserialized or hand-built graphs get
   the same guarantee.
2. **Schema inference** — abstract values (:mod:`repro.analyze.values`) are
   propagated through each box's registered transfer function
   (:mod:`repro.analyze.transfers`), reproducing every runtime schema/type
   validation as a diagnostic: unwired required inputs (``T2-E103``),
   unknown tables (``T2-E104``), bad attribute references (``T2-E105``),
   expression errors (``T2-E106``/``T2-E107``), schema mismatches
   (``T2-E108``), bad parameters (``T2-E109``), conflicting definitions
   (``T2-E110``).
3. **Demand analysis** — under the engine's demand-driven evaluation only
   boxes upstream of a viewer ever fire; everything else is dead
   (``T2-W201``), and a program with no sink at all renders nothing
   (``T2-W202``).

An unknown value (``None``) flows through boxes whose inputs could not be
inferred, so one error does not cascade into dozens.
"""

from __future__ import annotations

from typing import Any

from repro.analyze import transfers as _transfers  # registers all transfers
from repro.analyze.diagnostics import Diagnostic, Report
from repro.dataflow.graph import Program
from repro.dataflow.ports import can_connect
from repro.dataflow.registry import schema_transfer

__all__ = ["CheckContext", "check_program"]

del _transfers


class CheckContext:
    """What transfer functions see: the database and a way to report."""

    def __init__(self, program: Program, database, report: Report):
        self.program = program
        self.database = database
        self._report = report

    # -- reporting ------------------------------------------------------

    def report(
        self,
        code: str,
        message: str,
        *,
        box=None,
        port: str | None = None,
        source: str | None = None,
        pos: int | None = None,
        token: str | None = None,
        hint: str | None = None,
    ) -> Diagnostic:
        return self._report.add(
            Diagnostic(
                code,
                message,
                box_id=None if box is None else box.box_id,
                box=None if box is None else box.describe(),
                port=port,
                source=source,
                pos=pos,
                token=token,
                hint=hint,
            )
        )

    def emit(self, diagnostic: Diagnostic, box) -> Diagnostic:
        """Attach a box location to a diagnostic from the expression checker."""
        if box is not None and diagnostic.box is None:
            diagnostic.box_id = box.box_id
            diagnostic.box = box.describe()
        return self._report.add(diagnostic)

    # -- parameters -----------------------------------------------------

    def require(self, box, name: str) -> Any:
        """Mirror of ``Box.require_param``: the value, or ``None`` + E109."""
        value = box.param(name)
        if value is None:
            self.report(
                "T2-E109",
                f"missing required parameter {name!r}",
                box=box,
                hint=f"set the {name!r} parameter before running",
            )
        return value


def _check_edges(program: Program, ctx: CheckContext) -> set:
    """Pass 1: every edge names real ports of compatible kinds.

    Returns the set of edges that failed, so the value pass can ignore them.
    """
    bad = set()
    for edge in program.edges():
        src = program.box(edge.src_box)
        dst = program.box(edge.dst_box)
        out_port = next(
            (p for p in src.outputs if p.name == edge.src_port), None
        )
        in_port = next(
            (p for p in dst.inputs if p.name == edge.dst_port), None
        )
        if out_port is None:
            ctx.report(
                "T2-E101",
                f"edge {edge} names unknown output port {edge.src_port!r}; "
                f"outputs: {[p.name for p in src.outputs] or '(none)'}",
                box=src,
                port=edge.src_port,
            )
            bad.add(edge)
        if in_port is None:
            ctx.report(
                "T2-E101",
                f"edge {edge} names unknown input port {edge.dst_port!r}; "
                f"inputs: {[p.name for p in dst.inputs] or '(none)'}",
                box=dst,
                port=edge.dst_port,
            )
            bad.add(edge)
        if out_port is None or in_port is None:
            continue
        if not can_connect(out_port.type, in_port.type, dst.overloadable):
            ctx.report(
                "T2-E102",
                f"cannot connect {src.describe()}.{edge.src_port} "
                f"({out_port.type}) to {dst.describe()}.{edge.dst_port} "
                f"({in_port.type})",
                box=dst,
                port=edge.dst_port,
                hint="route through a box producing the expected kind",
            )
            bad.add(edge)
    return bad


def _infer_values(program: Program, ctx: CheckContext, bad_edges: set) -> None:
    """Pass 2: propagate abstract values through transfer functions."""
    produced: dict[tuple[int, str], Any] = {}
    for box_id in program.topological_order():
        box = program.box(box_id)
        inputs: dict[str, Any] = {}
        for port in box.inputs:
            edge = program.edge_into_port(box_id, port.name)
            if edge is None:
                if not port.optional:
                    ctx.report(
                        "T2-E103",
                        f"required input {port.name!r} ({port.type}) is not "
                        "wired",
                        box=box,
                        port=port.name,
                        hint="connect an edge into this port",
                    )
                inputs[port.name] = None
            elif edge in bad_edges:
                inputs[port.name] = None
            else:
                inputs[port.name] = produced.get((edge.src_box, edge.src_port))
        transfer = schema_transfer(box.type_name)
        if transfer is None:
            result: dict[str, Any] = {}
        else:
            result = transfer(box, inputs, ctx) or {}
        for port in box.outputs:
            produced[(box_id, port.name)] = result.get(port.name)


def _check_demand(program: Program, ctx: CheckContext) -> None:
    """Pass 3: warn about dead boxes and programs with nothing demanded."""
    if not len(program):
        return
    roots = [box for box in program.boxes() if not box.outputs]
    if not roots:
        ctx.report(
            "T2-W202",
            "program has no viewer or other sink box; nothing is demanded, "
            "so nothing will ever fire",
            box=None,
            hint="add a Viewer (or another output-less box) at the end",
        )
        return
    live: set[int] = set()
    for root in roots:
        live.add(root.box_id)
        live.update(program.upstream_of(root.box_id))
    for box in program.boxes():
        if box.box_id not in live:
            ctx.report(
                "T2-W201",
                f"box feeds no viewer; under demand-driven evaluation it "
                "will never fire",
                box=box,
                hint="connect it (transitively) to a viewer or delete it",
            )


def check_program(program: Program, database=None) -> Report:
    """Statically check a program against an optional database catalog.

    Never raises and never executes a box; all findings land in the
    returned :class:`Report`.  Without a database, table existence
    (``T2-E104``) and everything downstream of table schemas is unchecked.
    """
    from repro.obs.trace import current_tracer

    with current_tracer().span(
        "analyze.check_program", program=program.name
    ) as span:
        report = Report()
        ctx = CheckContext(program, database, report)
        bad_edges = _check_edges(program, ctx)
        _infer_values(program, ctx, bad_edges)
        _check_demand(program, ctx)
        span.set(diagnostics=len(report.diagnostics), ok=report.ok)
    return report
