"""Expression typechecking with source-position diagnostics.

:func:`analyze_expression` parses and infers a query-language expression
against a schema and reports through
:class:`~repro.analyze.diagnostics.Diagnostic` records instead of exceptions:

- ``T2-E106`` — syntax errors, carrying the character offset and the
  offending token from the parser;
- ``T2-E105`` — references to fields absent from the schema;
- ``T2-E107`` — type errors: ill-typed operators, a predicate that is not
  boolean, or an inferred type incompatible with a declared type.
"""

from __future__ import annotations

from repro.analyze.diagnostics import Diagnostic
from repro.dbms import types as T
from repro.dbms.expr import (
    Binary,
    Call,
    Conditional,
    Expr,
    FieldRef,
    Unary,
)
from repro.dbms.parser import parse_expression
from repro.dbms.tuples import Schema
from repro.errors import ExpressionError, TypeCheckError

__all__ = ["analyze_expression", "check_expression", "types_compatible"]


def types_compatible(inferred: T.AtomicType, declared: T.AtomicType) -> bool:
    """Mirror of ``Method.check``: identical or both numeric."""
    return inferred is declared or (T.numeric(inferred) and T.numeric(declared))


def _children(expr: Expr) -> tuple[Expr, ...]:
    if isinstance(expr, Unary):
        return (expr.operand,)
    if isinstance(expr, Binary):
        return (expr.left, expr.right)
    if isinstance(expr, Conditional):
        return (expr.condition, expr.then_branch, expr.else_branch)
    if isinstance(expr, Call):
        return tuple(expr.args)
    return ()


def _find_field(expr: Expr, name: str) -> FieldRef | None:
    """The first (leftmost) reference to ``name`` in the expression."""
    if isinstance(expr, FieldRef):
        return expr if expr.name == name else None
    for child in _children(expr):
        found = _find_field(child, name)
        if found is not None:
            return found
    return None


def _blame(expr: Expr, schema: Schema) -> Expr:
    """The smallest subexpression whose typing fails.

    Walks bottom-up: a node is to blame when all of its children infer but
    it does not — that pins the diagnostic to the exact offending token even
    deep inside nested conditional branches, where the top-level node's
    position would be the (useless) leading ``if``.
    """
    for child in _children(expr):
        try:
            child.infer(schema)
        except TypeCheckError:
            return _blame(child, schema)
    return expr


def _token_of(expr: Expr) -> str | None:
    """The source token a blamed node anchors to, for diagnostics."""
    if isinstance(expr, (Unary, Binary)):
        return expr.op
    if isinstance(expr, FieldRef):
        return expr.name
    if isinstance(expr, Call):
        return expr.fn.name
    if isinstance(expr, Conditional):
        return "if"
    return None


def analyze_expression(
    source: str,
    schema: Schema,
    *,
    expect_bool: bool = False,
    declared: T.AtomicType | None = None,
    what: str = "expression",
) -> tuple[Expr | None, T.AtomicType | None, list[Diagnostic]]:
    """Statically check one expression; never raises.

    Returns ``(expr, inferred_type, diagnostics)``; ``expr`` and the type
    are ``None`` when the expression could not be parsed or typed.
    ``expect_bool`` marks predicates; ``declared`` adds a declared-type
    compatibility check (Set/Add Attribute).  ``what`` names the
    expression's role in messages.
    """
    diagnostics: list[Diagnostic] = []
    try:
        expr = parse_expression(source)
    except ExpressionError as exc:
        diagnostics.append(
            Diagnostic(
                "T2-E106",
                f"{what} does not parse: {exc}",
                source=source,
                pos=getattr(exc, "pos", None),
                token=getattr(exc, "token", None),
                hint="fix the expression syntax",
            )
        )
        return None, None, diagnostics

    missing = sorted(name for name in expr.fields_used() if name not in schema)
    if missing:
        known = ", ".join(schema.names)
        for name in missing:
            ref = _find_field(expr, name)
            diagnostics.append(
                Diagnostic(
                    "T2-E105",
                    f"{what} references unknown attribute {name!r}; "
                    f"available: {known}",
                    source=source,
                    pos=None if ref is None else ref.pos,
                    token=name,
                    hint="reference an attribute of the inferred schema",
                )
            )
        return expr, None, diagnostics

    try:
        inferred = expr.infer(schema)
    except TypeCheckError as exc:
        blamed = _blame(expr, schema)
        diagnostics.append(
            Diagnostic(
                "T2-E107",
                f"{what} is ill-typed: {exc}",
                source=source,
                pos=blamed.pos,
                token=_token_of(blamed),
                hint="adjust the expression so operand types agree",
            )
        )
        return expr, None, diagnostics

    if expect_bool and inferred is not T.BOOL:
        diagnostics.append(
            Diagnostic(
                "T2-E107",
                f"{what} must be boolean, but has type {inferred}",
                source=source,
                pos=expr.pos,
                token=_token_of(expr),
                hint="use a comparison or boolean operator at the top level",
            )
        )
        return expr, inferred, diagnostics

    if declared is not None and not types_compatible(inferred, declared):
        diagnostics.append(
            Diagnostic(
                "T2-E107",
                f"{what} is declared {declared} but its definition has "
                f"type {inferred}",
                source=source,
                pos=expr.pos,
                token=_token_of(expr),
                hint=f"change the declared type to {inferred} or fix the definition",
            )
        )
        return expr, inferred, diagnostics
    return expr, inferred, diagnostics


def check_expression(
    source: str,
    schema: Schema,
    *,
    expect_bool: bool = False,
    declared: T.AtomicType | None = None,
    what: str = "expression",
) -> tuple[T.AtomicType | None, list[Diagnostic]]:
    """:func:`analyze_expression` without the parsed expression."""
    __, inferred, diagnostics = analyze_expression(
        source, schema, expect_bool=expect_bool, declared=declared, what=what
    )
    if diagnostics:
        return (None if any(d.is_error for d in diagnostics) else inferred,
                diagnostics)
    return inferred, diagnostics
