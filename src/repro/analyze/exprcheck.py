"""Expression typechecking with source-position diagnostics.

:func:`analyze_expression` parses and infers a query-language expression
against a schema and reports through
:class:`~repro.analyze.diagnostics.Diagnostic` records instead of exceptions:

- ``T2-E106`` — syntax errors, carrying the character offset and the
  offending token from the parser;
- ``T2-E105`` — references to fields absent from the schema;
- ``T2-E107`` — type errors: ill-typed operators, a predicate that is not
  boolean, or an inferred type incompatible with a declared type.
"""

from __future__ import annotations

from repro.analyze.diagnostics import Diagnostic
from repro.dbms import types as T
from repro.dbms.expr import Expr
from repro.dbms.parser import parse_expression
from repro.dbms.tuples import Schema
from repro.errors import ExpressionError, TypeCheckError

__all__ = ["analyze_expression", "check_expression", "types_compatible"]


def types_compatible(inferred: T.AtomicType, declared: T.AtomicType) -> bool:
    """Mirror of ``Method.check``: identical or both numeric."""
    return inferred is declared or (T.numeric(inferred) and T.numeric(declared))


def analyze_expression(
    source: str,
    schema: Schema,
    *,
    expect_bool: bool = False,
    declared: T.AtomicType | None = None,
    what: str = "expression",
) -> tuple[Expr | None, T.AtomicType | None, list[Diagnostic]]:
    """Statically check one expression; never raises.

    Returns ``(expr, inferred_type, diagnostics)``; ``expr`` and the type
    are ``None`` when the expression could not be parsed or typed.
    ``expect_bool`` marks predicates; ``declared`` adds a declared-type
    compatibility check (Set/Add Attribute).  ``what`` names the
    expression's role in messages.
    """
    diagnostics: list[Diagnostic] = []
    try:
        expr = parse_expression(source)
    except ExpressionError as exc:
        diagnostics.append(
            Diagnostic(
                "T2-E106",
                f"{what} does not parse: {exc}",
                source=source,
                pos=getattr(exc, "pos", None),
                token=getattr(exc, "token", None),
                hint="fix the expression syntax",
            )
        )
        return None, None, diagnostics

    missing = sorted(name for name in expr.fields_used() if name not in schema)
    if missing:
        known = ", ".join(schema.names)
        for name in missing:
            diagnostics.append(
                Diagnostic(
                    "T2-E105",
                    f"{what} references unknown attribute {name!r}; "
                    f"available: {known}",
                    source=source,
                    hint="reference an attribute of the inferred schema",
                )
            )
        return expr, None, diagnostics

    try:
        inferred = expr.infer(schema)
    except TypeCheckError as exc:
        diagnostics.append(
            Diagnostic(
                "T2-E107",
                f"{what} is ill-typed: {exc}",
                source=source,
                hint="adjust the expression so operand types agree",
            )
        )
        return expr, None, diagnostics

    if expect_bool and inferred is not T.BOOL:
        diagnostics.append(
            Diagnostic(
                "T2-E107",
                f"{what} must be boolean, but has type {inferred}",
                source=source,
                hint="use a comparison or boolean operator at the top level",
            )
        )
        return expr, inferred, diagnostics

    if declared is not None and not types_compatible(inferred, declared):
        diagnostics.append(
            Diagnostic(
                "T2-E107",
                f"{what} is declared {declared} but its definition has "
                f"type {inferred}",
                source=source,
                hint=f"change the declared type to {inferred} or fix the definition",
            )
        )
        return expr, inferred, diagnostics
    return expr, inferred, diagnostics


def check_expression(
    source: str,
    schema: Schema,
    *,
    expect_bool: bool = False,
    declared: T.AtomicType | None = None,
    what: str = "expression",
) -> tuple[T.AtomicType | None, list[Diagnostic]]:
    """:func:`analyze_expression` without the parsed expression."""
    __, inferred, diagnostics = analyze_expression(
        source, schema, expect_bool=expect_bool, declared=declared, what=what
    )
    if diagnostics:
        return (None if any(d.is_error for d in diagnostics) else inferred,
                diagnostics)
    return inferred, diagnostics
