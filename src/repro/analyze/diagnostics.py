"""Shared diagnostics core for the static-analysis subsystem.

Every pass (program checker, expression typechecker, plan verifier) reports
through the same vocabulary: a :class:`Diagnostic` record with a stable code
(``T2-E105``), a severity, a location (box, port, expression source and
offset), and an optional fix-hint.  Stable codes let tests, docs, and CI
assert on *what* went wrong rather than on message prose.

The :data:`CODES` table is the single source of truth for the catalog; the
docs in ``docs/STATIC_ANALYSIS.md`` and the code-coverage tests are keyed
off it.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

__all__ = [
    "Severity",
    "ERROR",
    "WARNING",
    "INFO",
    "Diagnostic",
    "Report",
    "CODES",
    "code_info",
    "register_code",
]

Severity = str

ERROR: Severity = "error"
WARNING: Severity = "warning"
INFO: Severity = "info"

#: Stable diagnostic codes.  ``E`` codes are errors (the program cannot run
#: correctly); ``W`` codes are warnings (suspicious but executable); ``I``
#: codes are informational notes (proof annotations, not problems).
#: Populated exclusively through :func:`register_code`, which raises on a
#: duplicate — a silently re-registered code would let two passes disagree
#: about what a code means.
CODES: dict[str, str] = {}


def register_code(code: str, summary: str) -> str:
    """Register a stable diagnostic code with its one-line summary.

    Raises :class:`ValueError` at import time if the code is already
    registered (duplicate registration was previously last-writer-wins,
    which silently corrupted the catalog docs and CI assertions).
    """
    if code in CODES:
        raise ValueError(
            f"diagnostic code {code!r} is already registered as "
            f"{CODES[code]!r}; refusing duplicate registration of {summary!r}"
        )
    CODES[code] = summary
    return code


for _code, _summary in (
    ("T2-E101", "unknown port name on an edge"),
    ("T2-E102", "edge connects ports of incompatible kinds"),
    ("T2-E103", "required input port is not wired"),
    ("T2-E104", "AddTable names a table absent from the database"),
    ("T2-E105", "reference to an attribute absent from the inferred schema"),
    ("T2-E106", "expression syntax error"),
    ("T2-E107", "expression type error (wrong inferred type)"),
    ("T2-E108", "schema mismatch between inputs (union/join/swap)"),
    ("T2-E109", "bad or missing box parameter"),
    ("T2-E110", "duplicate or conflicting attribute definition"),
    ("T2-E111", "plan-IR structural invariant violated"),
    ("T2-E112", "effect violation in a parallel region"),
    ("T2-W201", "dead box: no path to any demanded output"),
    ("T2-W202", "program has no demanded output (no viewer or sink)"),
    ("T2-W203", "overlay combines composites of different dimensions"),
    ("T2-W204", "dead predicate: restriction is statically always "
                "true or always false"),
    ("T2-W205", "statically empty result: no tuple can ever reach this point"),
    ("T2-I301", "abstract-interpretation proof note (hazard proven "
                "impossible)"),
):
    register_code(_code, _summary)
del _code, _summary


def code_info(code: str) -> str:
    """The one-line summary for a registered code (KeyError if unknown)."""
    return CODES[code]


class Diagnostic:
    """One finding: a stable code, severity, message, location, fix-hint."""

    __slots__ = (
        "code",
        "severity",
        "message",
        "box_id",
        "box",
        "port",
        "source",
        "pos",
        "token",
        "hint",
    )

    def __init__(
        self,
        code: str,
        message: str,
        *,
        severity: Severity | None = None,
        box_id: int | None = None,
        box: str | None = None,
        port: str | None = None,
        source: str | None = None,
        pos: int | None = None,
        token: str | None = None,
        hint: str | None = None,
    ):
        if code not in CODES:
            raise ValueError(f"unregistered diagnostic code {code!r}")
        self.code = code
        if severity is None:
            severity = (
                ERROR if "-E" in code else INFO if "-I" in code else WARNING
            )
        self.severity = severity
        self.message = message
        self.box_id = box_id
        self.box = box
        self.port = port
        self.source = source
        self.pos = pos
        self.token = token
        self.hint = hint

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def location(self) -> str:
        """A compact human-readable location prefix (may be empty)."""
        parts: list[str] = []
        if self.box is not None:
            parts.append(self.box)
        elif self.box_id is not None:
            parts.append(f"box#{self.box_id}")
        if self.port is not None:
            parts.append(f"port {self.port!r}")
        if self.source is not None:
            span = f"expr {self.source!r}"
            if self.pos is not None:
                span += f" at {self.pos}"
            parts.append(span)
        return ", ".join(parts)

    def render(self) -> str:
        """One human-readable line: ``T2-E105 error [loc]: message (hint)``."""
        where = self.location()
        line = f"{self.code} {self.severity}"
        if where:
            line += f" [{where}]"
        line += f": {self.message}"
        if self.hint:
            line += f"  (hint: {self.hint})"
        return line

    def to_json(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        for key in ("box_id", "box", "port", "source", "pos", "token", "hint"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    def key(self) -> tuple:
        """Identity for equivalence tests: code + location + message."""
        return (self.code, self.box_id, self.port, self.message)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Diagnostic({self.render()!r})"


class Report:
    """An ordered collection of diagnostics with summary helpers."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self.diagnostics: list[Diagnostic] = list(diagnostics)

    def add(self, diagnostic: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    def warnings(self) -> list[Diagnostic]:
        """Warnings only — informational notes are excluded, so strict
        modes that fail on warnings are unaffected by proof notes."""
        return [
            d for d in self.diagnostics
            if not d.is_error and d.severity != INFO
        ]

    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == INFO]

    @property
    def ok(self) -> bool:
        """True when there are no errors (warnings allowed)."""
        return not self.errors()

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def render(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        lines = [d.render() for d in self.diagnostics]
        summary = (
            f"{len(self.errors())} error(s), {len(self.warnings())} warning(s)"
        )
        if self.infos():
            summary += f", {len(self.infos())} note(s)"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "infos": len(self.infos()),
        }

    def keys(self) -> list[tuple]:
        return [d.key() for d in self.diagnostics]

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Report({len(self.errors())} errors, {len(self.warnings())} warnings)"
        )
