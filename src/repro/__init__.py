"""Tioga-2 reproduction: a direct manipulation database visualization environment.

A full implementation of the system described in "Tioga-2: A Direct
Manipulation Database Visualization Environment" (Aiken, Chen, Stonebraker,
Woodruff; ICDE 1996): an object-relational DBMS substrate, typed
boxes-and-arrows dataflow programs with lazy evaluation, the R/C/G
displayable algebra, a software rasterizer, viewers with pan/zoom/sliders,
drill down via elevation ranges and wormholes, rear view mirrors, slaving,
magnifying glasses, stitch/replicate group views, and screen-object updates.

Subpackages
-----------
``repro.dbms``      object-relational substrate (tables, algebra, expressions)
``repro.dataflow``  boxes-and-arrows programs and the lazy engine
``repro.display``   displayable types, drawables, elevation ranges
``repro.render``    framebuffer canvas, bitmap font, scene building
``repro.viewer``    viewers, wormholes, rear view, slaving, magnifiers
``repro.ui``        the headless session model (windows, menus, undo)
``repro.data``      synthetic weather data and benchmark workloads
``repro.core``      facade and the paper's figure scenarios
``repro.analyze``   static program checker, expression typechecker, plan verifier
``repro.obs``       tracing spans, metrics registry, Chrome-trace exporters
"""

import os as _os

# The supported public surface lives in repro.api; the package root
# re-exports it so `from repro import Session` keeps working.  Deep module
# imports (repro.dbms.plan, ...) remain available but are internals.
from repro.api import (
    Command,
    Database,
    Engine,
    Program,
    Response,
    Scenario,
    Session,
    ServerThread,
    Viewer,
    build_fig1_table_view,
    build_fig4_station_map,
    build_fig7_overlay,
    build_fig8_wormholes,
    build_fig9_magnifier,
    build_fig10_stitch,
    build_fig11_replicate,
    build_weather_database,
    connect,
    open_db,
    serve,
)
from repro.errors import TiogaError

if _os.environ.get("REPRO_PLAN_VERIFY") == "1":
    from repro.analyze.planverify import install_from_env as _install_verifier

    _install_verifier()

if _os.environ.get("REPRO_ABSINT") == "1":
    from repro.analyze.absint import install_from_env as _install_absint

    _install_absint()

if _os.environ.get("REPRO_TRACE") == "1":
    from repro.obs.trace import install_from_env as _install_tracer

    _install_tracer()

if _os.environ.get("REPRO_FLIGHT") == "1":
    from repro.obs.flightrec import install_from_env as _install_flight

    _install_flight()

if _os.environ.get("REPRO_PARALLEL", "") not in ("", "0"):
    from repro.dbms.plan_parallel import install_from_env as _install_parallel

    _install_parallel()

if _os.environ.get("REPRO_COLUMNAR", "") not in ("", "0"):
    from repro.dbms.columnar import install_from_env as _install_columnar

    _install_columnar()

if _os.environ.get("REPRO_LINEAGE", "") not in ("", "0"):
    from repro.obs.lineage import install_from_env as _install_lineage

    _install_lineage()

__version__ = "1.0.0"

__all__ = [
    "Command",
    "Database",
    "Engine",
    "Program",
    "Response",
    "Scenario",
    "ServerThread",
    "Session",
    "Viewer",
    "TiogaError",
    "__version__",
    "connect",
    "serve",
    "build_fig1_table_view",
    "build_fig4_station_map",
    "build_fig7_overlay",
    "build_fig8_wormholes",
    "build_fig9_magnifier",
    "build_fig10_stitch",
    "build_fig11_replicate",
    "build_weather_database",
    "open_db",
]
