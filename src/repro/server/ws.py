"""Minimal RFC 6455 WebSocket framing over the standard library.

The container ships no websocket package, and the protocol needs is small:
text frames carrying one JSON message each, plus ping/pong/close.  This
module implements exactly that — the opening-handshake accept key, frame
encoding, and an incremental frame parser — shared by the asyncio server
(:mod:`repro.server.app`) and the blocking socket client
(:mod:`repro.server.client`), so both ends speak from one implementation.

Deliberate limits (asserted, not silently wrong): no extensions, no
fragmented messages beyond simple continuation reassembly, and a hard cap
on frame size to bound memory per connection.
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct

__all__ = [
    "GUID",
    "OP_CONT",
    "OP_TEXT",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "MAX_FRAME_BYTES",
    "WSProtocolError",
    "accept_key",
    "encode_frame",
    "FrameParser",
]

#: The fixed GUID every WebSocket handshake concatenates (RFC 6455 §1.3).
GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Upper bound on a single (reassembled) message; a fig-scale PPM frame is
#: ~1.2MB base64, so 16MB leaves generous headroom while bounding memory.
MAX_FRAME_BYTES = 16 * 1024 * 1024


class WSProtocolError(Exception):
    """A malformed or out-of-contract WebSocket frame."""


def accept_key(client_key: str) -> str:
    """The Sec-WebSocket-Accept value for a client's Sec-WebSocket-Key."""
    digest = hashlib.sha1((client_key.strip() + GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(payload: bytes, opcode: int = OP_TEXT, *,
                 mask: bool = False, fin: bool = True) -> bytes:
    """Encode one frame.  Clients must set ``mask=True`` (RFC 6455 §5.3)."""
    header = bytearray()
    header.append((0x80 if fin else 0) | (opcode & 0x0F))
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if not mask:
        return bytes(header) + payload
    key = os.urandom(4)
    header += key
    masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + masked


class FrameParser:
    """Incremental frame parser: feed bytes, take complete messages.

    Continuation frames are reassembled transparently; control frames
    (ping/pong/close) are surfaced immediately even mid-fragmentation, as
    the RFC requires.
    """

    def __init__(self, *, require_mask: bool) -> None:
        self._buffer = bytearray()
        self._require_mask = require_mask
        self._partial: bytearray | None = None
        self._partial_opcode: int | None = None

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        """Feed raw bytes; returns the complete (opcode, payload) messages
        they finished."""
        self._buffer += data
        messages: list[tuple[int, bytes]] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return messages
            fin, opcode, payload = frame
            if opcode in (OP_CLOSE, OP_PING, OP_PONG):
                if not fin:
                    raise WSProtocolError("fragmented control frame")
                messages.append((opcode, payload))
                continue
            if opcode == OP_CONT:
                if self._partial is None:
                    raise WSProtocolError("continuation without a start frame")
                self._partial += payload
                if len(self._partial) > MAX_FRAME_BYTES:
                    raise WSProtocolError("message exceeds MAX_FRAME_BYTES")
                if fin:
                    messages.append(
                        (self._partial_opcode, bytes(self._partial)))
                    self._partial = None
                    self._partial_opcode = None
                continue
            # A new data frame (text/binary).
            if self._partial is not None:
                raise WSProtocolError("interleaved data frames")
            if fin:
                messages.append((opcode, payload))
            else:
                self._partial = bytearray(payload)
                self._partial_opcode = opcode

    def _next_frame(self) -> tuple[bool, int, bytes] | None:
        buf = self._buffer
        if len(buf) < 2:
            return None
        first, second = buf[0], buf[1]
        if first & 0x70:
            raise WSProtocolError("reserved bits set (extensions unsupported)")
        fin = bool(first & 0x80)
        opcode = first & 0x0F
        masked = bool(second & 0x80)
        if self._require_mask and not masked:
            raise WSProtocolError("client frames must be masked")
        length = second & 0x7F
        offset = 2
        if length == 126:
            if len(buf) < offset + 2:
                return None
            (length,) = struct.unpack_from(">H", buf, offset)
            offset += 2
        elif length == 127:
            if len(buf) < offset + 8:
                return None
            (length,) = struct.unpack_from(">Q", buf, offset)
            offset += 8
        if length > MAX_FRAME_BYTES:
            raise WSProtocolError("frame exceeds MAX_FRAME_BYTES")
        key = b""
        if masked:
            if len(buf) < offset + 4:
                return None
            key = bytes(buf[offset:offset + 4])
            offset += 4
        if len(buf) < offset + length:
            return None
        payload = bytes(buf[offset:offset + length])
        del buf[:offset + length]
        if masked:
            payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
        return fin, opcode, payload
