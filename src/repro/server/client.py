"""Blocking WebSocket client for the visualization server.

:func:`connect` opens a socket, performs the RFC 6455 handshake against
``/ws``, reads the server's :class:`~repro.protocol.Welcome`, and returns a
:class:`Client` whose methods send the same :class:`~repro.protocol.Command`
dataclasses an in-process :class:`~repro.ui.session.Session` builds.  It is
stdlib-only and synchronous on purpose: tests, the ``repro client`` CLI, and
the load benchmark all drive it from plain threads.
"""

from __future__ import annotations

import base64
import os
import socket
from typing import Any
from urllib.parse import urlsplit

from repro.protocol import (
    Command,
    ErrorReply,
    ProtocolError,
    Response,
    Welcome,
    decode_response,
    encode_command,
)
from repro.server import ws

__all__ = ["Client", "connect"]


class Client:
    """One WebSocket connection to a :class:`~repro.server.TiogaServer`."""

    def __init__(self, host: str, port: int, *, session: str | None = None,
                 timeout: float = 30.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._parser = ws.FrameParser(require_mask=False)
        self._inbox: list[Response] = []
        self._seq = 0
        self._closed = False
        self.welcome = self._handshake(session)
        #: The server-side session id this connection drives.
        self.session = self.welcome.session

    # -- lifecycle -----------------------------------------------------

    def _handshake(self, session: str | None) -> Welcome:
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        path = "/ws" if not session else f"/ws?session={session}"
        request = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            "\r\n"
        )
        self._sock.sendall(request.encode("latin-1"))
        head = b""
        while b"\r\n\r\n" not in head:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise ProtocolError(
                    "server closed during WebSocket handshake",
                    code="T2-E510",
                )
            head += chunk
        head, rest = head.split(b"\r\n\r\n", 1)
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        if " 101 " not in f"{status_line} ":
            raise ProtocolError(
                f"WebSocket handshake refused: {status_line}",
                code="T2-E510",
            )
        expected = ws.accept_key(key)
        for line in head.decode("latin-1").split("\r\n")[1:]:
            if line.lower().startswith("sec-websocket-accept:"):
                got = line.split(":", 1)[1].strip()
                if got != expected:
                    raise ProtocolError(
                        "WebSocket handshake accept-key mismatch",
                        code="T2-E510",
                    )
        if rest:
            self._pump(rest)
        welcome = self.recv()
        if isinstance(welcome, ErrorReply):
            raise ProtocolError(
                f"server refused connection: {welcome.message}",
                code=welcome.code,
            )
        if not isinstance(welcome, Welcome):
            raise ProtocolError(
                f"expected a welcome, got {welcome.kind!r}", code="T2-E510")
        return welcome

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.sendall(
                ws.encode_frame(b"\x03\xe8", opcode=ws.OP_CLOSE, mask=True))
            self._sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- messaging -----------------------------------------------------

    def send(self, command: Command) -> int:
        """Send a command (stamping ``seq`` if unset); returns the seq."""
        seq = command.seq
        if seq is None:
            self._seq += 1
            seq = self._seq
            import dataclasses

            command = dataclasses.replace(command, seq=seq)
        else:
            self._seq = max(self._seq, seq)
        self._sock.sendall(ws.encode_frame(
            encode_command(command).encode("utf-8"), mask=True))
        return seq

    def recv(self) -> Response:
        """The next response from the server (blocking)."""
        while not self._inbox:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ProtocolError(
                    "server closed the connection", code="T2-E510")
            self._pump(chunk)
        return self._inbox.pop(0)

    def _pump(self, data: bytes) -> None:
        for opcode, payload in self._parser.feed(data):
            if opcode == ws.OP_TEXT:
                self._inbox.append(decode_response(payload))
            elif opcode == ws.OP_PING:
                self._sock.sendall(ws.encode_frame(
                    payload, opcode=ws.OP_PONG, mask=True))
            # OP_CLOSE / OP_PONG need no action here; recv() surfaces the
            # closed socket as a ProtocolError.

    def request(self, command: Command) -> Response:
        """Send one command and wait for *its* response (matched by seq).

        Out-of-band responses that arrive first (frames for other windows,
        say) stay queued for later :meth:`recv` calls.  A response the
        server coalesced away under backpressure would wait forever, so use
        this for request/reply interaction, not frame streams.
        """
        seq = self.send(command)
        held: list[Response] = []
        while True:
            response = self.recv()
            if getattr(response, "reply_to", None) == seq:
                self._inbox = held + self._inbox
                return response
            held.append(response)

    def drain(self) -> list[Response]:
        """All responses already buffered locally (non-blocking)."""
        timeout = self._sock.gettimeout()
        self._sock.setblocking(False)
        try:
            while True:
                try:
                    chunk = self._sock.recv(65536)
                except (BlockingIOError, socket.timeout):
                    break
                except OSError:
                    break
                if not chunk:
                    break
                self._pump(chunk)
        finally:
            # Restore the constructor's timeout, not bare blocking mode —
            # otherwise every recv() after a drain() could block forever.
            self._sock.settimeout(timeout)
        drained = self._inbox
        self._inbox = []
        return drained


def connect(url: str = "ws://127.0.0.1:8765/ws", *,
            session: str | None = None, timeout: float = 30.0) -> Client:
    """Open a client connection to a running server.

    Accepts ``ws://host:port/ws`` (or bare ``host:port``); returns a
    connected :class:`Client` whose ``welcome`` lists the hosted programs.
    """
    parsed = urlsplit(url if "//" in url else f"ws://{url}")
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 8765
    return Client(host, port, session=session, timeout=timeout)
