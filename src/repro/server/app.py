"""The multi-session visualization server (ROADMAP item 2, first rung).

:class:`TiogaServer` hosts one named database and its programs (the built-in
figure scenarios plus anything saved in the database) behind HTTP and
WebSocket endpoints, executing pan/zoom/slider/pick/why demands server-side
through exactly the :class:`~repro.protocol.CommandExecutor` an in-process
:class:`~repro.ui.session.Session` uses, and streaming rendered frames to
many concurrent viewers.

Endpoints (all on one port):

- ``GET /healthz`` — liveness JSON (session count, hosted programs).
- ``GET /metrics`` — Prometheus text exposition of the process registry.
- ``POST /api/session`` — create a session; returns its id.
- ``DELETE /api/session?session=ID`` — drop a session explicitly.
- ``POST /api/command?session=ID`` — execute one JSON command, JSON reply.
- ``GET /ws[?session=ID]`` — WebSocket: server sends a ``welcome``, then
  each text frame in is one command, each text frame out one response.
- ``GET /debug/requests[?limit=N]`` — recent finished requests (id,
  command, session, latency, SLO verdict), newest first.
- ``GET /debug/trace?id=TRACE`` — one request's connected span tree.
- ``GET /debug/profile[?seconds=N]`` — profiler snapshot (collapsed
  stacks, per-thread/per-request sample counts) for the trailing window.
- ``GET /debug/sessions`` — per-session liveness (refs, idle, windows).

Observability: every dispatched command runs under a
:class:`~repro.obs.trace.TraceContext` minted on arrival.  The asyncio
thread opens the ``server.dispatch`` root span, and the pool worker
*adopts* the context (``run_in_executor`` does not propagate contextvars),
so engine/plan/render/lineage spans from the worker attach to the same
tree — one connected trace per request, retrievable by id while it stays
in the :class:`~repro.obs.requests.RequestLog` ring.  A continuous
statistical profiler (:class:`~repro.obs.profiler.Profiler`) samples all
threads and attributes stacks to adopted requests; requests that exceed
their per-command SLO are captured to JSONL (span tree + profile slice +
flight-recorder ring) under ``slow_dir``.  The access log
(:data:`~repro.obs.log.ACCESS_LOGGER`) emits one structured JSON record
per HTTP request and per executed command, correlated by trace id.

Session lifetime: WebSocket-created sessions die with their connection.
HTTP-created (or adopted) sessions are reclaimed by an idle sweep — a
session with no attached connection and no command for ``session_ttl``
seconds (default 900) expires and later use fails with ``T2-E512`` — or
explicitly via ``DELETE /api/session``.

Concurrency model: the asyncio loop owns all sockets; command execution
(CPU-bound rendering) runs on a thread pool, serialized per session by a
lock — many sessions make progress concurrently, one session's commands
keep their order.  All sessions share the process result cache (the server
installs a caching parallel config on start), so two viewers panning over
the same figure hit each other's cached plan results — cross-*user* slaving
of the PR-4 cache.

Backpressure: each connection has a bounded send queue.  When a slow
consumer lets it fill, queued *frame* responses for the same window are
coalesced — the older frame is dropped (counted in ``server.frames_dropped``)
and the newest kept, so a client that falls behind skips intermediate frames
but always receives the final state.  Non-frame responses are never dropped;
a full queue of them suspends that connection's reader instead.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.dataflow.serialize import program_to_dict
from repro.dbms.catalog import Database
from repro.dbms.plan_parallel import resolve_config, set_default_config
from repro.errors import TiogaError
from repro.obs.flightrec import current_flight_recorder
from repro.obs.log import ACCESS_LOGGER, get_logger
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.profiler import Profiler
from repro.obs.requests import RequestLog, RequestRecord
from repro.obs.timeseries import MetricsRecorder
from repro.obs.trace import TraceContext, Tracer, set_tracer
from repro.protocol import (
    PROTOCOL_VERSION,
    Command,
    ErrorReply,
    FrameCache,
    FrameReply,
    ProtocolError,
    Response,
    Welcome,
    decode_command,
    encode_response,
    error_code_for,
)
from repro.server import ws
from repro.ui.session import Session

__all__ = ["TiogaServer", "ServerThread", "serve", "register_server_metrics"]

#: Default bound on a connection's send queue (responses, not bytes).
DEFAULT_MAX_QUEUE = 32

#: Default idle lifetime of a session with no attached connection (seconds);
#: the expiry behind the ``T2-E512`` "unknown or expired session" code.
DEFAULT_SESSION_TTL = 900.0

#: Default continuous-profiler sampling rate (Hz); 0 disables the sampler.
#: 67 deliberately avoids aliasing with common 10ms-periodic work.
DEFAULT_PROFILE_HZ = 67.0


def register_server_metrics(registry: MetricsRegistry) -> None:
    """Pre-register the server metric family (idempotent).

    Pre-registration pins names, kinds, and descriptions before any traffic,
    so ``/metrics`` scrapes and ``stats --check`` see a stable declaration
    set even on an idle server.
    """
    registry.gauge("server.sessions", "live sessions hosted by the server")
    registry.counter("server.commands",
                     "protocol commands executed, labeled by session")
    registry.histogram("server.frame_ms",
                       "command-to-frame latency in ms, labeled by session")
    registry.counter("server.frames_dropped",
                     "intermediate frames coalesced under backpressure")
    registry.counter("server.errors",
                     "failed commands, labeled by protocol error code")
    registry.counter("server.slow_requests",
                     "requests over their latency SLO, labeled by command")


class _ServerSession:
    """One hosted session: a Session plus the lock serializing its commands.

    ``refs`` counts attached WebSocket connections (a referenced session is
    never idle-expired); ``last_used`` feeds the idle sweep.
    """

    def __init__(self, sid: str, session: Session):
        self.sid = sid
        self.session = session
        self.lock = threading.Lock()
        self.refs = 0
        self.last_used = time.monotonic()

    def touch(self) -> None:
        self.last_used = time.monotonic()


class _SendQueue:
    """Bounded per-connection response queue with frame coalescing.

    ``put`` runs on the event loop.  When the queue is full and the incoming
    item carries a ``drop_key`` (frames key on their window), the oldest
    queued item with the *same* key is dropped — the newest frame always
    survives, so the client sees the final state of every window.  With no
    same-key victim, ``put`` waits for space (true backpressure).
    """

    def __init__(self, maxsize: int = DEFAULT_MAX_QUEUE):
        self.maxsize = maxsize
        self._items: list[tuple[str | None, str]] = []
        self._cond = asyncio.Condition()
        self._closed = False
        self.dropped = 0

    async def put(self, text: str, drop_key: str | None = None) -> None:
        async with self._cond:
            while len(self._items) >= self.maxsize and not self._closed:
                if drop_key is not None:
                    victim = next(
                        (i for i, (key, _) in enumerate(self._items)
                         if key == drop_key),
                        None,
                    )
                    if victim is not None:
                        del self._items[victim]
                        self.dropped += 1
                        break
                await self._cond.wait()
            if self._closed:
                return
            self._items.append((drop_key, text))
            self._cond.notify_all()

    async def get(self) -> str | None:
        """The next response text, or None once closed and drained."""
        async with self._cond:
            while not self._items and not self._closed:
                await self._cond.wait()
            if not self._items:
                return None
            item = self._items.pop(0)[1]
            self._cond.notify_all()
            return item

    async def close(self) -> None:
        async with self._cond:
            self._closed = True
            self._cond.notify_all()


class TiogaServer:
    """Host a database's programs for many concurrent remote viewers."""

    def __init__(
        self,
        database: Database | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queue: int = DEFAULT_MAX_QUEUE,
        pool_workers: int = 8,
        registry: MetricsRegistry | None = None,
        flight_dump: str | None = None,
        session_ttl: float | None = DEFAULT_SESSION_TTL,
        request_tracing: bool = True,
        profile_hz: float = DEFAULT_PROFILE_HZ,
        slo_ms: dict[str, float] | None = None,
        slow_dir: str | None = None,
    ):
        if database is None:
            from repro.data.weather import build_weather_database

            database = build_weather_database()
        self.database = database
        self.host = host
        self.port = port
        self.max_queue = max_queue
        self.registry = registry or global_registry()
        self.flight_dump = flight_dump
        #: Idle lifetime of unreferenced sessions; None or <= 0 disables
        #: the sweep (sessions then live until deleted or server stop).
        self.session_ttl = session_ttl
        self.sessions: dict[str, _ServerSession] = {}
        self._sid_counter = itertools.count(1)
        self._sweeper: asyncio.Task | None = None
        self._pool = ThreadPoolExecutor(
            max_workers=pool_workers, thread_name_prefix="tioga-exec")
        self._asyncio_server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._previous_config: Any = None
        self._recorder = MetricsRecorder(self.registry)
        #: Request observability: the server owns a tracer (installed as the
        #: process tracer while running), a continuous profiler, and the
        #: request log wiring them to SLO verdicts and slow-request capture.
        self.request_tracing = request_tracing
        self.tracer: Tracer | None = (
            Tracer(enabled=True, max_spans=50_000) if request_tracing
            else None)
        self.profiler: Profiler | None = (
            Profiler(hz=profile_hz) if profile_hz and profile_hz > 0
            else None)
        self.request_log: RequestLog | None = None
        if request_tracing:
            self.request_log = RequestLog(
                slo_ms=slo_ms,
                capture_dir=slow_dir,
                profiler=self.profiler,
                flight=current_flight_recorder(),
                on_slow=self._note_slow_request,
            )
        self._previous_tracer: Tracer | None = None
        self._access = get_logger(ACCESS_LOGGER)
        #: Encoded frames shared by every hosted session: fifty viewers on
        #: one view rasterize once (see :class:`repro.protocol.FrameCache`).
        self.frame_cache = FrameCache()
        #: Canonical initial view states per figure program, captured from
        #: the scenario builders so a freshly opened remote program frames
        #: the same world region the local figure does.
        self._initial_views: dict[str, list[dict[str, Any]]] = {}
        register_server_metrics(self.registry)
        self._install_figures()

    # ------------------------------------------------------------------
    # Program catalog
    # ------------------------------------------------------------------

    def _install_figures(self) -> None:
        """Save every figure scenario as a named program in the database."""
        from repro.core.scenarios import FIGURES

        for name, builder in FIGURES.items():
            scenario = builder(self.database)
            program = scenario.session.program
            self.database.save_program(name, program_to_dict(program))
            views: list[dict[str, Any]] = []
            for window_name, window in scenario.session.windows.items():
                viewer = window.viewer
                for member in viewer.member_names():
                    view = viewer.view(member)
                    views.append({
                        "window": window_name,
                        "member": member,
                        "center": view.center,
                        "elevation": view.elevation,
                        "sliders": dict(view.slider_ranges),
                    })
            self._initial_views[name] = views

    def program_names(self) -> list[str]:
        return sorted(self.database.program_names())

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def create_session(self) -> _ServerSession:
        sid = f"s{next(self._sid_counter)}"
        held = _ServerSession(sid, Session(self.database, f"server-{sid}"))
        held.session.protocol.frame_cache = self.frame_cache
        self.sessions[sid] = held
        self.registry.gauge("server.sessions").set(len(self.sessions))
        return held

    def drop_session(self, sid: str) -> None:
        dropped = self.sessions.pop(sid, None)
        self.registry.gauge("server.sessions").set(len(self.sessions))
        if dropped is not None:
            # Session-label cardinality hygiene: a dead session's per-label
            # series (server.commands{sid}, server.frame_ms{sid}, ...) would
            # otherwise live in every future /metrics scrape; prune them
            # from the registry and the recorder's time series in one go.
            self.registry.prune_label(sid)
            self._recorder.prune_label(sid)

    def session(self, sid: str) -> _ServerSession:
        try:
            held = self.sessions[sid]
        except KeyError as exc:
            raise ProtocolError(
                f"unknown or expired session {sid!r}", code="T2-E512"
            ) from exc
        held.touch()
        return held

    def expire_idle_sessions(self, now: float | None = None) -> list[str]:
        """Drop every unreferenced session idle past ``session_ttl``.

        Returns the dropped session ids; a no-op when the TTL is disabled.
        Runs from the background sweeper, but callable directly (tests,
        embeddings driving their own loop).
        """
        ttl = self.session_ttl
        if not ttl or ttl <= 0:
            return []
        now = time.monotonic() if now is None else now
        expired = [sid for sid, held in list(self.sessions.items())
                   if held.refs == 0 and now - held.last_used > ttl]
        for sid in expired:
            self.drop_session(sid)
        return expired

    async def _sweep_idle_sessions(self) -> None:
        interval = min(max((self.session_ttl or 0.0) / 4.0, 0.05), 60.0)
        while True:
            await asyncio.sleep(interval)
            self.expire_idle_sessions()

    def _apply_initial_views(self, held: _ServerSession, program: str) -> None:
        for spec in self._initial_views.get(program, ()):
            window = held.session.windows.get(spec["window"])
            if window is None:
                continue
            viewer = window.viewer
            viewer._pan_to(*spec["center"], member=spec["member"])
            viewer._set_elevation(spec["elevation"], member=spec["member"])
            for dim, (low, high) in spec["sliders"].items():
                view = viewer.view(spec["member"])
                view.slider_ranges[dim] = (low, high)

    # ------------------------------------------------------------------
    # Command execution (thread pool, per-session lock)
    # ------------------------------------------------------------------

    def _note_slow_request(self, record: RequestRecord) -> None:
        self.registry.counter("server.slow_requests").inc(
            label=record.command)
        self._access.warning(
            "slow request", extra={
                "trace_id": record.trace_id,
                "session": record.session,
                "command": record.command,
                "duration_ms": record.duration_ms,
                "threshold_ms": record.threshold_ms,
                "capture": record.capture_path,
            })

    def _execute_sync(self, held: _ServerSession, command: Command,
                      ctx: TraceContext | None = None) -> Response:
        started = time.perf_counter()
        held.touch()
        # Adopt the request's context on this pool thread: contextvars do
        # not cross run_in_executor, so without this the worker's spans
        # would start a fresh tree instead of attaching under the asyncio
        # thread's server.dispatch root.
        scope = (self.tracer.adopt(ctx) if self.tracer is not None
                 else nullcontext())
        with scope, held.lock:
            try:
                response = held.session.execute(command)
            except TiogaError as exc:
                # execute() already wraps Tioga errors; anything arriving
                # here is decode-level (ProtocolError before dispatch).
                response = ErrorReply(
                    code=error_code_for(exc),
                    error_type=type(exc).__name__,
                    message=str(exc),
                    command=getattr(command, "kind", None),
                    reply_to=getattr(command, "seq", None),
                )
            except Exception as exc:  # noqa: BLE001 - boundary
                recorder = current_flight_recorder()
                recorder.note_error(
                    exc,
                    session=held.sid,
                    command=getattr(command, "kind", None),
                )
                if self.flight_dump:
                    recorder.dump_jsonl(self.flight_dump)
                response = ErrorReply(
                    code="T2-E514",
                    error_type=type(exc).__name__,
                    message=f"internal server error: {exc}",
                    command=getattr(command, "kind", None),
                    reply_to=getattr(command, "seq", None),
                )
            if isinstance(command, Command) and command.kind == "open_program":
                if not isinstance(response, ErrorReply):
                    self._apply_initial_views(held, command.name)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.registry.counter("server.commands").inc(label=held.sid)
        if isinstance(response, FrameReply):
            self.registry.histogram("server.frame_ms").observe(
                elapsed_ms, label=held.sid)
        if isinstance(response, ErrorReply):
            self.registry.counter("server.errors").inc(label=response.code)
        return response

    async def execute(self, held: _ServerSession, command: Command) -> Response:
        """Run one command for a session: mint the request's trace, open the
        ``server.dispatch`` root span on the asyncio thread, and hand the
        context to the pool worker for adoption."""
        loop = asyncio.get_running_loop()
        if self.tracer is None:
            return await loop.run_in_executor(
                self._pool, self._execute_sync, held, command, None)
        ctx = self._mint_context(held, command)
        started = time.perf_counter()
        with self.tracer.adopt(ctx):
            with self.tracer.span(
                    "server.dispatch", command=command.kind,
                    session=held.sid) as span:
                response = await loop.run_in_executor(
                    self._pool, self._execute_sync, held, command,
                    ctx.child_of(span))
        self._access.info(
            "command", extra={
                "trace_id": ctx.trace_id,
                "session": held.sid,
                "command": command.kind,
                "ok": response.ok,
                "duration_ms": round(
                    (time.perf_counter() - started) * 1000.0, 3),
            })
        return response

    def _mint_context(self, held: _ServerSession,
                      command: Command) -> TraceContext:
        """The request's TraceContext: join the client's distributed trace
        when the command carries one, else mint a fresh id — always stamped
        with this server's session and command kind."""
        wire = getattr(command, "trace", None)
        if wire:
            try:
                client = TraceContext.from_wire(wire)
                return TraceContext(client.trace_id, client.parent_span_id,
                                    held.sid, command.kind)
            except TiogaError:
                pass  # malformed client trace never fails the command
        return TraceContext.new(session=held.sid, command=command.kind)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the port and begin accepting connections."""
        # Cross-session cache sharing: every hosted session executes under
        # a caching config, restored on stop.
        self._previous_config = set_default_config(resolve_config(cache=True))
        if self.tracer is not None:
            # The engine/render layers trace through the process tracer;
            # installing ours for the server's lifetime is what stitches
            # their spans into our request trees.  Restored on stop.
            self._previous_tracer = set_tracer(self.tracer)
            self.request_log.attach(self.tracer)
        if self.profiler is not None and not self.profiler.running:
            self.profiler.start()
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._asyncio_server.sockets[0].getsockname()[1]
        if self.session_ttl and self.session_ttl > 0:
            self._sweeper = asyncio.create_task(self._sweep_idle_sessions())
        self._access.info(
            "server started", extra={
                "host": self.host, "port": self.port,
                "database": self.database.name,
                "profiler_hz": (self.profiler.hz
                                if self.profiler is not None else 0),
            })

    async def stop(self) -> None:
        if self._sweeper is not None:
            self._sweeper.cancel()
            await asyncio.gather(self._sweeper, return_exceptions=True)
            self._sweeper = None
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        # Wind down live connection handlers before the loop goes away, so
        # their cleanup runs here rather than as unraisable GC noise.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()
        self._pool.shutdown(wait=True)
        set_default_config(self._previous_config)
        if self.profiler is not None:
            self.profiler.stop()
        if self.tracer is not None:
            self.request_log.detach(self.tracer)
            if self._previous_tracer is not None:
                set_tracer(self._previous_tracer)
                self._previous_tracer = None
        for sid in list(self.sessions):
            self.drop_session(sid)
        self.sessions.clear()
        self.registry.gauge("server.sessions").set(0)

    async def serve_forever(self) -> None:
        await self.start()
        assert self._asyncio_server is not None
        async with self._asyncio_server:
            await self._asyncio_server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            request = await self._read_http_request(reader)
            if request is None:
                return
            method, target, headers, body = request
            parsed = urlsplit(target)
            path = parsed.path
            query = parse_qs(parsed.query)
            if (path == "/ws"
                    and headers.get("upgrade", "").lower() == "websocket"):
                await self._handle_websocket(
                    reader, writer, headers, query)
                return
            await self._handle_http(
                writer, method, path, query, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # stop() cancelled us; finish normally so asyncio's stream
            # callback doesn't re-raise into the loop's exception handler.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def _read_http_request(self, reader: asyncio.StreamReader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                key, value = line.split(":", 1)
                headers[key.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length:
            body = await reader.readexactly(length)
        return method.upper(), target, headers, body

    # -- plain HTTP ----------------------------------------------------

    async def _handle_http(self, writer: asyncio.StreamWriter, method: str,
                           path: str, query: dict[str, list[str]],
                           body: bytes) -> None:
        if method == "GET" and path == "/healthz":
            await self._send_json(writer, 200, {
                "ok": True,
                "database": self.database.name,
                "sessions": len(self.sessions),
                "programs": self.program_names(),
                "protocol": PROTOCOL_VERSION,
            })
        elif method == "GET" and path == "/metrics":
            self._recorder.sample()
            text = self._recorder.prometheus_text()
            await self._send_response(
                writer, 200, text.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8")
        elif method == "POST" and path == "/api/session":
            held = self.create_session()
            await self._send_json(writer, 200, {
                "session": held.sid,
                "protocol": PROTOCOL_VERSION,
                "database": self.database.name,
                "programs": self.program_names(),
            })
        elif method == "DELETE" and path == "/api/session":
            sid = (query.get("session") or [""])[0]
            if sid in self.sessions:
                self.drop_session(sid)
                await self._send_json(writer, 200, {
                    "ok": True, "session": sid})
            else:
                await self._send_json(writer, 404, {
                    "ok": False,
                    "code": "T2-E512",
                    "error": f"unknown or expired session {sid!r}",
                })
        elif method == "POST" and path == "/api/command":
            sid = (query.get("session") or [""])[0]
            response = await self._execute_wire(sid, body)
            status = 200 if response.ok else 400
            await self._send_response(
                writer, status, encode_response(response).encode("utf-8"),
                "application/json")
        elif method == "GET" and path.startswith("/debug/"):
            await self._handle_debug(writer, path, query)
        else:
            await self._send_json(writer, 404, {
                "ok": False, "error": f"no route {method} {path}"})
        if path != "/api/command":  # commands log via execute()
            self._access.info(
                "http", extra={"method": method, "path": path})

    # -- debug surface -------------------------------------------------

    async def _handle_debug(self, writer: asyncio.StreamWriter, path: str,
                            query: dict[str, list[str]]) -> None:
        """The ``/debug/*`` read-only observability surface."""
        if path == "/debug/requests" and self.request_log is not None:
            try:
                limit = int((query.get("limit") or ["50"])[0])
            except ValueError:
                limit = 50
            await self._send_json(writer, 200, {
                "total": self.request_log.total_requests,
                "slow": self.request_log.slow_requests,
                "requests": [r.as_dict() for r in
                             self.request_log.requests(limit=limit)],
            })
        elif path == "/debug/trace" and self.request_log is not None:
            trace_id = (query.get("id") or [""])[0]
            doc = self.request_log.trace(trace_id) if trace_id else None
            if doc is None:
                await self._send_json(writer, 404, {
                    "ok": False,
                    "error": f"no retained request trace {trace_id!r}",
                })
            else:
                await self._send_json(writer, 200, doc)
        elif path == "/debug/profile" and self.profiler is not None:
            seconds: float | None = None
            raw = (query.get("seconds") or [""])[0]
            if raw:
                try:
                    seconds = float(raw)
                except ValueError:
                    seconds = None
            await self._send_json(
                writer, 200, self.profiler.snapshot(seconds=seconds))
        elif path == "/debug/sessions":
            now = time.monotonic()
            await self._send_json(writer, 200, {
                "sessions": [
                    {
                        "session": held.sid,
                        "refs": held.refs,
                        "idle_s": round(now - held.last_used, 3),
                        "program": (held.session.program.name
                                    if held.session.program else None),
                        "windows": sorted(held.session.windows),
                    }
                    for _, held in sorted(self.sessions.items())
                ],
            })
        else:
            await self._send_json(writer, 404, {
                "ok": False,
                "error": f"no debug route {path} "
                         "(tracing or profiling may be disabled)",
            })

    async def _execute_wire(self, sid: str, payload: bytes) -> Response:
        try:
            held = self.session(sid)
            command = decode_command(payload)
        except TiogaError as exc:
            self.registry.counter("server.errors").inc(
                label=error_code_for(exc))
            return ErrorReply(
                code=error_code_for(exc),
                error_type=type(exc).__name__,
                message=str(exc),
            )
        return await self.execute(held, command)

    async def _send_json(self, writer: asyncio.StreamWriter, status: int,
                         payload: dict[str, Any]) -> None:
        await self._send_response(
            writer, status, json.dumps(payload).encode("utf-8"),
            "application/json")

    async def _send_response(self, writer: asyncio.StreamWriter, status: int,
                             body: bytes, content_type: str) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
            status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- WebSocket -----------------------------------------------------

    async def _handle_websocket(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter,
                                headers: dict[str, str],
                                query: dict[str, list[str]]) -> None:
        key = headers.get("sec-websocket-key")
        if not key:
            await self._send_json(writer, 400, {
                "ok": False, "error": "missing Sec-WebSocket-Key"})
            return
        accept = ws.accept_key(key)
        writer.write((
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {accept}\r\n"
            "\r\n"
        ).encode("latin-1"))
        await writer.drain()

        sid = (query.get("session") or [""])[0]
        own_session = not sid
        try:
            held = self.session(sid) if sid else self.create_session()
        except ProtocolError as exc:
            error = ErrorReply(code=exc.code, error_type="ProtocolError",
                               message=str(exc))
            writer.write(ws.encode_frame(
                encode_response(error).encode("utf-8")))
            self._write_close_frame(writer, 1000)
            await writer.drain()
            return

        held.refs += 1
        queue = _SendQueue(self.max_queue)
        sender = asyncio.create_task(self._ws_sender(writer, queue))
        welcome = Welcome(
            session=held.sid,
            protocol=PROTOCOL_VERSION,
            database=self.database.name,
            programs=tuple(self.program_names()),
        )
        await queue.put(encode_response(welcome))
        parser = ws.FrameParser(require_mask=True)
        # One worker per connection keeps that client's commands in order
        # (pan before render); different connections still overlap in the
        # thread pool.  The bounded inbox is reader-side backpressure.
        inbox: asyncio.Queue[bytes | None] = asyncio.Queue(maxsize=256)
        worker = asyncio.create_task(self._ws_worker(held, inbox, queue))
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                try:
                    messages = parser.feed(data)
                except ws.WSProtocolError:
                    break
                closing = False
                for opcode, payload in messages:
                    if opcode == ws.OP_CLOSE:
                        # The close reply comes from _ws_sender once the
                        # send queue drains, so pending responses are
                        # delivered before the handshake completes.
                        closing = True
                        break
                    if opcode == ws.OP_PING:
                        writer.write(ws.encode_frame(
                            payload, opcode=ws.OP_PONG))
                        await writer.drain()
                        continue
                    if opcode != ws.OP_TEXT:
                        continue
                    await inbox.put(payload)
                if closing:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                try:
                    await inbox.put(None)
                    await worker
                    await queue.close()
                    await sender
                except BaseException:
                    # Server shutdown (CancelledError) or an unexpected
                    # worker/sender crash: abandon the graceful drain, but
                    # never skip the bookkeeping below.
                    worker.cancel()
                    sender.cancel()
                    await queue.close()
                    await asyncio.gather(worker, sender,
                                         return_exceptions=True)
                    self._write_close_frame(writer, 1001)
            finally:
                held.refs -= 1
                held.touch()
                if queue.dropped:
                    self.registry.counter("server.frames_dropped").inc(
                        queue.dropped, label=held.sid)
                if own_session:
                    self.drop_session(held.sid)

    async def _ws_worker(self, held: _ServerSession,
                         inbox: "asyncio.Queue[bytes | None]",
                         queue: _SendQueue) -> None:
        while True:
            payload = await inbox.get()
            if payload is None:
                return
            await self._ws_command(held, payload, queue)

    async def _ws_command(self, held: _ServerSession, payload: bytes,
                          queue: _SendQueue) -> None:
        try:
            command = decode_command(payload)
        except TiogaError as exc:
            self.registry.counter("server.errors").inc(
                label=error_code_for(exc))
            error = ErrorReply(
                code=error_code_for(exc),
                error_type=type(exc).__name__,
                message=str(exc),
            )
            await queue.put(encode_response(error))
            return
        response = await self.execute(held, command)
        drop_key = None
        if isinstance(response, FrameReply):
            drop_key = f"frame:{response.window}"
        await queue.put(encode_response(response), drop_key=drop_key)

    async def _ws_sender(self, writer: asyncio.StreamWriter,
                         queue: _SendQueue) -> None:
        try:
            while True:
                text = await queue.get()
                if text is None:
                    # Queue drained after close(): complete the RFC 6455
                    # close handshake rather than an abrupt TCP close.
                    self._write_close_frame(writer, 1000)
                    await writer.drain()
                    return
                writer.write(ws.encode_frame(text.encode("utf-8")))
                await writer.drain()
        except (ConnectionError, OSError):
            await queue.close()

    @staticmethod
    def _write_close_frame(writer: asyncio.StreamWriter, code: int) -> None:
        """Best-effort OP_CLOSE (1000 normal, 1001 going away)."""
        try:
            writer.write(ws.encode_frame(
                code.to_bytes(2, "big"), opcode=ws.OP_CLOSE))
        except (ConnectionError, OSError, RuntimeError):
            pass


class ServerThread:
    """Run a :class:`TiogaServer` on a daemon thread (tests, benchmarks).

    ``with ServerThread(db) as server:`` yields the started server with its
    bound ``port``; exiting stops the loop and joins the thread.
    """

    def __init__(self, database: Database | None = None, **options: Any):
        self.server = TiogaServer(database, **options)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._stop_event: asyncio.Event | None = None

    def start(self, timeout: float = 30.0) -> TiogaServer:
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="tioga-server")
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("server did not start in time")
        return self.server

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            self._stop_event = asyncio.Event()
            await self.server.start()
            self._started.set()
            await self._stop_event.wait()
            await self.server.stop()

        try:
            self._loop.run_until_complete(main())
        finally:
            self._loop.close()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> TiogaServer:
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def serve(host: str = "127.0.0.1", port: int = 8765,
          database: Database | None = None, **options: Any) -> None:
    """Run a :class:`TiogaServer` until interrupted (the CLI entry point)."""
    server = TiogaServer(database, host=host, port=port, **options)

    async def main() -> None:
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
