"""Multi-session visualization server (HTTP + WebSocket, stdlib only).

The ROADMAP's "millions of users" direction starts here: a
:class:`TiogaServer` hosts named databases and programs, executes demand
commands server-side through the same :mod:`repro.protocol` dispatch the
in-process :class:`~repro.ui.session.Session` uses, and streams rendered
frames to many concurrent WebSocket viewers with bounded, frame-coalescing
send queues.  :func:`serve` runs one; :func:`connect` returns a blocking
client.  See ``docs/SERVER.md``.
"""

from repro.server.app import (
    ServerThread,
    TiogaServer,
    register_server_metrics,
    serve,
)
from repro.server.client import Client, connect

__all__ = [
    "TiogaServer",
    "ServerThread",
    "serve",
    "connect",
    "Client",
    "register_server_metrics",
]
