"""Stored tables, materialized row sets, and computed attributes ("methods").

The paper assumes an object-relational DBMS "in which a relation has stored
attributes as well as methods defining additional attributes" (Section 2).
Three classes realize that here:

* :class:`Table` — a named, mutable, versioned stored relation.  The version
  stamp advances on every mutation and drives cache invalidation in the
  dataflow engine and refresh after Section-8 updates.
* :class:`RowSet` — an immutable materialized relation, the currency of the
  relational algebra and of dataflow edges.
* :class:`MethodSet` — an ordered collection of computed attributes, each an
  expression over the base tuple (and earlier methods).  Location and display
  attributes "are computed attributes and are not stored in the database"
  (Section 2); a :class:`VirtualRow` computes them lazily, per tuple, with
  memoization.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.dbms import types as T
from repro.dbms.expr import Expr
from repro.dbms.tuples import Field, Schema, Tuple
from repro.errors import EvaluationError, SchemaError, TypeCheckError

__all__ = [
    "Table",
    "RowSet",
    "Method",
    "MethodSet",
    "VirtualRow",
    "storage_epoch",
    "bump_storage_epoch",
    "table_epoch",
    "table_epochs",
    "bump_table_epoch",
]


# Process-wide storage epochs: monotone counters advanced by every stored-table
# mutation (including the Section-8 update dialogs, which land in
# ``Table.replace_row``).  The *global* epoch advances on any mutation; a
# *per-table* epoch advances only when that table mutates.  Cached plan
# results whose read set is known (every leaf is a named scan — see
# ``plan_read_set``) are keyed against the per-table epochs they read, so
# mutating one table no longer evicts every cached result; plans with
# anonymous leaves fall back to the global epoch.
_EPOCH_LOCK = threading.Lock()
_STORAGE_EPOCH = 0
_TABLE_EPOCHS: dict[str, int] = {}


def storage_epoch() -> int:
    """The current process-wide storage epoch."""
    return _STORAGE_EPOCH


def bump_storage_epoch() -> int:
    """Advance the storage epoch; returns the new value."""
    global _STORAGE_EPOCH
    with _EPOCH_LOCK:
        _STORAGE_EPOCH += 1
        return _STORAGE_EPOCH


def table_epoch(name: str) -> int:
    """The per-table epoch for ``name`` (0 if the table never mutated)."""
    return _TABLE_EPOCHS.get(name, 0)


def table_epochs(names: Iterable[str]) -> dict[str, int]:
    """A point-in-time epoch snapshot for a plan's read set."""
    epochs = _TABLE_EPOCHS
    return {name: epochs.get(name, 0) for name in names}


def bump_table_epoch(name: str) -> int:
    """Advance both the global epoch and ``name``'s epoch; returns the latter.

    Also publishes the new per-table value as a ``storage.epoch`` gauge so
    the dashboard can chart invalidation churn per table.
    """
    global _STORAGE_EPOCH
    with _EPOCH_LOCK:
        _STORAGE_EPOCH += 1
        epoch = _TABLE_EPOCHS.get(name, 0) + 1
        _TABLE_EPOCHS[name] = epoch
    # Lazy import: the metrics registry sits above the dbms layer in the
    # package graph, and importing it at module top would be circular.
    from repro.obs.metrics import global_registry

    global_registry().gauge(
        "storage.epoch", "per-table storage epoch (mutation count)"
    ).set(epoch, label=name)
    return epoch


class RowSet:
    """An immutable, materialized relation: a schema plus a tuple of rows."""

    __slots__ = ("_schema", "_rows")

    def __init__(self, schema: Schema, rows: Iterable[Tuple] = ()):
        self._schema = schema
        materialized = tuple(rows)
        for row in materialized:
            if row.schema != schema:
                raise SchemaError(
                    f"row schema {row.schema!r} does not match row-set schema {schema!r}"
                )
        self._rows = materialized

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def rows(self) -> tuple[Tuple, ...]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Tuple:
        return self._rows[index]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RowSet)
            and self._schema == other._schema
            and self._rows == other._rows
        )

    def __repr__(self) -> str:
        return f"RowSet({self._schema!r}, {len(self._rows)} rows)"

    @classmethod
    def from_dicts(
        cls, schema: Schema, dicts: Iterable[Mapping[str, Any]]
    ) -> "RowSet":
        return cls(schema, (Tuple(schema, d) for d in dicts))


class Table:
    """A named, mutable stored relation with a monotone version stamp."""

    def __init__(self, name: str, schema: Schema):
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self._schema = schema
        self._rows: list[Tuple] = []
        self._version = 0
        self._snapshot: RowSet | None = None

    def _bump(self) -> None:
        self._version += 1
        self._snapshot = None
        bump_table_epoch(self.name)

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def version(self) -> int:
        """Monotone stamp; advances on every mutation."""
        return self._version

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._rows)

    def insert(self, values: Mapping[str, Any] | Sequence[Any]) -> Tuple:
        """Insert one row (dict or positional values); returns the new tuple."""
        row = Tuple(self._schema, values)
        self._rows.append(row)
        self._bump()
        return row

    def insert_many(self, rows: Iterable[Mapping[str, Any] | Sequence[Any]]) -> int:
        """Insert many rows in one version step; returns the count inserted."""
        staged = [Tuple(self._schema, values) for values in rows]
        self._rows.extend(staged)
        if staged:
            self._bump()
        return len(staged)

    def delete_where(self, predicate: Callable[[Tuple], bool]) -> int:
        """Delete rows matching ``predicate``; returns the count deleted."""
        kept = [row for row in self._rows if not predicate(row)]
        deleted = len(self._rows) - len(kept)
        if deleted:
            self._rows = kept
            self._bump()
        return deleted

    def update_where(
        self, predicate: Callable[[Tuple], bool], changes: Mapping[str, Any]
    ) -> int:
        """Replace fields on matching rows; returns the count updated."""
        updated = 0
        new_rows: list[Tuple] = []
        for row in self._rows:
            if predicate(row):
                new_rows.append(row.replace(**changes))
                updated += 1
            else:
                new_rows.append(row)
        if updated:
            self._rows = new_rows
            self._bump()
        return updated

    def replace_row(self, old: Tuple, new: Tuple) -> bool:
        """Replace the first row equal to ``old`` with ``new`` (Section 8 update).

        Returns True when a row was replaced.
        """
        if new.schema != self._schema:
            raise SchemaError("replacement row does not match table schema")
        for pos, row in enumerate(self._rows):
            if row == old:
                self._rows[pos] = new
                self._bump()
                return True
        return False

    def clear(self) -> None:
        if self._rows:
            self._rows = []
            self._bump()

    def snapshot(self) -> RowSet:
        """An immutable row set of the current contents.

        The row set is memoized until the next mutation: repeated snapshots of
        an unchanged table return the *same* object, which lets plan
        fingerprints (``repro.dbms.plan_parallel``) recognize scans of the same
        stored data across independently built plans and engines.
        """
        if self._snapshot is None:
            self._snapshot = RowSet(self._schema, self._rows)
        return self._snapshot

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self._rows)} rows, v{self._version})"


class Method:
    """A computed attribute: a name, a declared type, and a defining expression.

    The expression may reference stored fields and previously defined methods.
    A plain Python callable is also accepted for big-programmer methods that
    outgrow the query language; its referenced fields must then be declared.
    """

    __slots__ = ("name", "type", "expr", "_callable", "_depends")

    def __init__(
        self,
        name: str,
        atomic: T.AtomicType | str,
        definition: Expr | Callable[[Mapping[str, Any]], Any],
        depends: Iterable[str] = (),
    ):
        self.name = name
        self.type = T.type_by_name(atomic) if isinstance(atomic, str) else atomic
        if isinstance(definition, Expr):
            self.expr: Expr | None = definition
            self._callable = None
            self._depends = frozenset(definition.fields_used())
        else:
            self.expr = None
            self._callable = definition
            self._depends = frozenset(depends)

    @property
    def depends(self) -> frozenset[str]:
        return self._depends

    def check(self, schema: Schema) -> None:
        """Type-check the definition against the (extended) schema."""
        if self.expr is not None:
            inferred = self.expr.infer(schema)
            compatible = inferred is self.type or (
                T.numeric(inferred) and T.numeric(self.type)
            )
            if not compatible:
                raise TypeCheckError(
                    f"method {self.name!r} is declared {self.type} but its "
                    f"definition has type {inferred}"
                )
        else:
            for dep in self._depends:
                if dep not in schema:
                    raise SchemaError(
                        f"method {self.name!r} declares dependency on unknown "
                        f"field {dep!r}"
                    )

    def compute(self, row: Mapping[str, Any]) -> Any:
        if self.expr is not None:
            value = self.expr.evaluate(row)
        else:
            assert self._callable is not None
            value = self._callable(row)
        try:
            return self.type.coerce(value)
        except TypeCheckError as exc:
            raise EvaluationError(
                f"method {self.name!r} produced a value of the wrong type: {exc}"
            ) from exc

    def __repr__(self) -> str:
        body = str(self.expr) if self.expr is not None else "<python>"
        return f"Method({self.name!r}: {self.type.name} = {body})"


class MethodSet:
    """An ordered, dependency-checked collection of computed attributes.

    ``ambient`` declares extra fields (name → type) that are not part of any
    tuple but are injected by the runtime when a row view is built — e.g.
    ``tioga_seq``, the tuple sequence number used by the default display's
    y-location (§5.2).  Method definitions may reference ambient fields.
    """

    def __init__(
        self,
        base_schema: Schema,
        methods: Iterable[Method] = (),
        ambient: Mapping[str, T.AtomicType] | None = None,
    ):
        self._base_schema = base_schema
        self._ambient: dict[str, T.AtomicType] = dict(ambient or {})
        self._methods: dict[str, Method] = {}
        self._extended = base_schema
        for method in methods:
            self.add(method)

    @property
    def ambient(self) -> dict[str, T.AtomicType]:
        return dict(self._ambient)

    def _check_schema(self) -> Schema:
        """The schema method definitions are checked against (incl. ambient)."""
        schema = self._extended
        for name, atomic in self._ambient.items():
            if name not in schema:
                schema = schema.extend(Field(name, atomic))
        return schema

    def reference_schema(self) -> Schema:
        """The schema visible to new method definitions: stored fields,
        computed attributes, and ambient fields such as ``tioga_seq``."""
        return self._check_schema()

    @property
    def base_schema(self) -> Schema:
        return self._base_schema

    @property
    def extended_schema(self) -> Schema:
        """Base schema plus one field per method, in definition order."""
        return self._extended

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._methods)

    def __contains__(self, name: object) -> bool:
        return name in self._methods

    def __iter__(self) -> Iterator[Method]:
        return iter(self._methods.values())

    def __len__(self) -> int:
        return len(self._methods)

    def get(self, name: str) -> Method:
        try:
            return self._methods[name]
        except KeyError as exc:
            raise SchemaError(f"no method {name!r}") from exc

    def add(self, method: Method) -> None:
        """Append a method; it may reference stored fields and earlier methods."""
        if method.name in self._extended or method.name in self._ambient:
            raise SchemaError(
                f"attribute {method.name!r} already exists (stored or computed)"
            )
        method.check(self._check_schema())
        self._methods[method.name] = method
        self._extended = self._extended.extend(Field(method.name, method.type))

    def replace(self, method: Method) -> None:
        """Redefine an existing method in place (Set Attribute, §5.3).

        The new definition is checked against the schema visible at the
        method's original position, and all later methods are re-checked so a
        type change cannot silently break downstream definitions.
        """
        if method.name not in self._methods:
            raise SchemaError(f"no method {method.name!r} to replace")
        rebuilt = MethodSet(self._base_schema, ambient=self._ambient)
        for existing in self._methods.values():
            rebuilt.add(method if existing.name == method.name else existing)
        self._methods = rebuilt._methods
        self._extended = rebuilt._extended

    def remove(self, name: str) -> None:
        """Remove a method; fails if a later method depends on it."""
        if name not in self._methods:
            raise SchemaError(f"no method {name!r} to remove")
        rebuilt = MethodSet(self._base_schema, ambient=self._ambient)
        for existing in self._methods.values():
            if existing.name == name:
                continue
            try:
                rebuilt.add(existing)
            except (SchemaError, TypeCheckError) as exc:
                raise SchemaError(
                    f"cannot remove {name!r}: method {existing.name!r} depends on it"
                ) from exc
        self._methods = rebuilt._methods
        self._extended = rebuilt._extended

    def copy(self) -> "MethodSet":
        clone = MethodSet(self._base_schema, ambient=self._ambient)
        clone._methods = dict(self._methods)
        clone._extended = self._extended
        return clone

    def rebase(self, base_schema: Schema) -> "MethodSet":
        """Re-check all methods against a new base schema (used after Project
        or Join change the stored fields flowing into a displayable)."""
        rebuilt = MethodSet(base_schema, ambient=self._ambient)
        for existing in self._methods.values():
            rebuilt.add(existing)
        return rebuilt

    def row_view(
        self, row: Tuple, extra: Mapping[str, Any] | None = None
    ) -> "VirtualRow":
        """A lazy mapping over stored fields and computed attributes of ``row``.

        ``extra`` supplies values for ambient fields (e.g. ``tioga_seq``).
        """
        return VirtualRow(row, self, extra)

    def __repr__(self) -> str:
        return f"MethodSet({', '.join(self._methods)})"


class VirtualRow:
    """Mapping view of one tuple extended with lazily computed methods.

    Actually computing attribute values "should be avoided except where
    necessary" (§5.1) — values are computed on first access and memoized.
    """

    __slots__ = ("_row", "_methods", "_cache", "_computing", "_extra")

    def __init__(
        self, row: Tuple, methods: MethodSet, extra: Mapping[str, Any] | None = None
    ):
        self._row = row
        self._methods = methods
        self._cache: dict[str, Any] = {}
        self._computing: set[str] = set()
        self._extra = dict(extra or {})

    @property
    def base(self) -> Tuple:
        return self._row

    def __getitem__(self, name: str) -> Any:
        if name in self._row.schema:
            return self._row[name]
        if name in self._cache:
            return self._cache[name]
        if name in self._extra:
            return self._extra[name]
        if name not in self._methods:
            raise KeyError(name)
        if name in self._computing:
            raise EvaluationError(
                f"cyclic dependency while computing attribute {name!r}"
            )
        self._computing.add(name)
        try:
            value = self._methods.get(name).compute(self)
        finally:
            self._computing.discard(name)
        self._cache[name] = value
        return value

    def get(self, name: str, default: Any = None) -> Any:
        try:
            return self[name]
        except KeyError:
            return default

    def keys(self) -> tuple[str, ...]:
        return self._methods.extended_schema.names

    def as_dict(self) -> dict[str, Any]:
        """Force all attributes and return a plain dict."""
        return {name: self[name] for name in self.keys()}

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        return name in self._methods.extended_schema or name in self._extra

    def __repr__(self) -> str:
        return f"VirtualRow({self._row!r}, +{len(self._methods)} methods)"
