"""Screen-object updates (Section 8).

"When a user clicks on a screen object, the Tioga-2 run time system activates
a generic update procedure, passing it the tuple corresponding to the screen
object.  The function engages a dialog with the user to construct a new tuple
— using the primitive update functions for the fields — and then perform an
SQL update to install the new value in the database."

Headlessly, the *dialog* is an object answering :meth:`UpdateDialog.ask` for
each field; interactive front ends would implement it with widgets, tests use
:class:`ScriptedDialog`.  Per-type update functions come from
:func:`repro.dbms.types.get_update_function` and can be overridden by type
definers; per-visualization custom update commands are installed on
displayable relations (see :mod:`repro.display.displayable`).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.dbms import types as T
from repro.dbms.relation import Table
from repro.dbms.tuples import Tuple
from repro.errors import TypeCheckError, UpdateError

__all__ = ["UpdateDialog", "ScriptedDialog", "UpdateResult", "generic_update"]


class UpdateDialog:
    """The dialog protocol: one question per field of the clicked tuple."""

    def ask(self, field_name: str, atomic: T.AtomicType, old_value: Any) -> str | None:
        """Return the user's raw text for ``field_name``, or None to keep it."""
        raise NotImplementedError


class ScriptedDialog(UpdateDialog):
    """A dialog answering from a prepared mapping — the headless stand-in.

    Fields absent from the mapping are kept unchanged.
    """

    def __init__(self, answers: Mapping[str, str]):
        self.answers = dict(answers)
        self.asked: list[str] = []

    def ask(self, field_name: str, atomic: T.AtomicType, old_value: Any) -> str | None:
        del atomic, old_value
        self.asked.append(field_name)
        return self.answers.get(field_name)


class UpdateResult:
    """Outcome of a generic update: the old and new tuples and whether applied."""

    __slots__ = ("applied", "old", "new")

    def __init__(self, applied: bool, old: Tuple, new: Tuple):
        self.applied = applied
        self.old = old
        self.new = new

    def __repr__(self) -> str:
        state = "applied" if self.applied else "no-op"
        return f"UpdateResult({state}, {self.old!r} -> {self.new!r})"


def generic_update(table: Table, row: Tuple, dialog: UpdateDialog) -> UpdateResult:
    """The default update procedure of Section 8.

    Walks the stored fields of ``row``, asks the dialog for each, parses the
    answers with the per-type update functions, and installs the new tuple in
    ``table`` with an SQL-style update (replace the matching stored row).
    """
    if row.schema != table.schema:
        raise UpdateError(
            f"clicked tuple does not belong to table {table.name!r}: schema mismatch"
        )
    changes: dict[str, Any] = {}
    for field in row.schema:
        raw = dialog.ask(field.name, field.type, row[field.name])
        if raw is None:
            continue
        update_fn = T.get_update_function(field.type)
        try:
            changes[field.name] = update_fn(row[field.name], raw)
        except TypeCheckError as exc:
            raise UpdateError(f"field {field.name!r}: {exc}") from exc
    if not changes:
        return UpdateResult(False, row, row)
    new_row = row.replace(**changes)
    if not table.replace_row(row, new_row):
        raise UpdateError(
            f"tuple no longer present in table {table.name!r}; it may have "
            "been modified concurrently"
        )
    return UpdateResult(True, row, new_row)


UpdateCommand = Callable[[Table, Tuple, UpdateDialog], UpdateResult]
"""Signature for custom update commands replacing :func:`generic_update` (§8:
"he can replace the default update command with one of his own choosing")."""
