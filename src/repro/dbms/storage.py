"""JSON persistence for databases: tables, rows, and saved programs.

POSTGRES persisted everything; our in-memory substrate persists to a single
JSON document so example databases and saved visualization programs survive
across sessions.  Drawable-valued columns are not persisted (display
attributes are computed, never stored — §2), and no table should contain
them; attempting to persist one is an error rather than silent loss.
"""

from __future__ import annotations

import datetime as _dt
import json
from pathlib import Path
from typing import Any

from repro.dbms import types as T
from repro.dbms.catalog import Database
from repro.dbms.relation import Table
from repro.dbms.tuples import Field, Schema
from repro.errors import CatalogError, TypeCheckError

__all__ = ["dump_database", "load_database", "save_database_file", "load_database_file"]

_FORMAT = "tioga2-db-v1"


def _encode_value(atomic: T.AtomicType, value: Any) -> Any:
    if atomic is T.DATE:
        return value.isoformat()
    if atomic is T.DRAWABLES:
        raise TypeCheckError(
            "drawable-valued columns cannot be persisted; display attributes "
            "are computed, not stored"
        )
    return value


def _decode_value(atomic: T.AtomicType, value: Any) -> Any:
    if atomic is T.DATE:
        return _dt.date.fromisoformat(value)
    return value


def dump_database(db: Database) -> dict[str, Any]:
    """Serialize a database to a JSON-compatible dict."""
    tables: dict[str, Any] = {}
    for table in db.tables():
        schema_spec = [[field.name, field.type.name] for field in table.schema]
        rows = [
            [
                _encode_value(field.type, value)
                for field, value in zip(table.schema.fields, row.values)
            ]
            for row in table
        ]
        tables[table.name] = {"schema": schema_spec, "rows": rows}
    return {
        "format": _FORMAT,
        "name": db.name,
        "tables": tables,
        "programs": {name: db.load_program(name) for name in db.program_names()},
    }


def load_database(payload: dict[str, Any]) -> Database:
    """Reconstruct a database from :func:`dump_database` output."""
    if payload.get("format") != _FORMAT:
        raise CatalogError(
            f"unrecognized database format {payload.get('format')!r}; "
            f"expected {_FORMAT!r}"
        )
    db = Database(payload.get("name", "tioga"))
    for table_name, spec in payload.get("tables", {}).items():
        schema = Schema([Field(name, T.type_by_name(tn)) for name, tn in spec["schema"]])
        table = Table(table_name, schema)
        decoded = [
            [
                _decode_value(field.type, value)
                for field, value in zip(schema.fields, raw)
            ]
            for raw in spec["rows"]
        ]
        table.insert_many(decoded)
        db.add_table(table)
    for program_name, program in payload.get("programs", {}).items():
        db.save_program(program_name, program)
    return db


def save_database_file(db: Database, path: str | Path) -> Path:
    """Write a database to a JSON file; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(dump_database(db), indent=1, sort_keys=True))
    return path


def load_database_file(path: str | Path) -> Database:
    """Load a database from a JSON file."""
    path = Path(path)
    return load_database(json.loads(path.read_text()))
