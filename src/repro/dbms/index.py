"""Secondary indexes: hash (point lookup) and sorted (range scan).

The paper defers implementation/performance questions to [Che95], but a
credible substrate needs indexes: `Restrict` over large relations and the
Stations ⋈ Observations step behind wormhole canvases (Figure 8) dominate
interactive latency.  Both index kinds attach to a :class:`Table` and refresh
themselves lazily when the table's version stamp advances, or wrap an
immutable :class:`RowSet` once.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

from repro.dbms.relation import RowSet, Table
from repro.dbms.tuples import Tuple
from repro.errors import SchemaError

__all__ = ["HashIndex", "SortedIndex", "indexed_equi_join"]


class _IndexBase:
    """Shared machinery: source binding and lazy rebuild on version change."""

    def __init__(self, source: Table | RowSet, field: str):
        source.schema.field(field)  # validate
        self._source = source
        self.field = field
        self._built_version: int | None = None
        self._build()

    def _rows(self) -> Iterable[Tuple]:
        return self._source

    def _build(self) -> None:
        raise NotImplementedError

    def _refresh(self) -> None:
        if isinstance(self._source, Table):
            if self._built_version != self._source.version:
                self._build()
                self._built_version = self._source.version

    @property
    def source(self) -> Table | RowSet:
        return self._source


class HashIndex(_IndexBase):
    """Exact-match index: field value → list of rows."""

    def _build(self) -> None:
        buckets: dict[Any, list[Tuple]] = {}
        for row in self._rows():
            buckets.setdefault(row[self.field], []).append(row)
        self._buckets = buckets

    def lookup(self, value: Any) -> list[Tuple]:
        """All rows whose indexed field equals ``value``."""
        self._refresh()
        return list(self._buckets.get(value, ()))

    def keys(self) -> Iterator[Any]:
        self._refresh()
        return iter(self._buckets)

    def __len__(self) -> int:
        self._refresh()
        return sum(len(bucket) for bucket in self._buckets.values())


class SortedIndex(_IndexBase):
    """Order-based index supporting range queries over a comparable field."""

    def _build(self) -> None:
        pairs = sorted(
            ((row[self.field], pos) for pos, row in enumerate(self._rows())),
            key=lambda pair: pair[0],
        )
        self._keys = [key for key, __ in pairs]
        self._order = [pos for __, pos in pairs]
        self._snapshot = list(self._rows())

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[Tuple]:
        """Rows with indexed value in [low, high] (bounds optional)."""
        self._refresh()
        lo = 0
        hi = len(self._keys)
        if low is not None:
            lo = (
                bisect.bisect_left(self._keys, low)
                if include_low
                else bisect.bisect_right(self._keys, low)
            )
        if high is not None:
            hi = (
                bisect.bisect_right(self._keys, high)
                if include_high
                else bisect.bisect_left(self._keys, high)
            )
        return [self._snapshot[self._order[i]] for i in range(lo, hi)]

    def min_key(self) -> Any:
        self._refresh()
        if not self._keys:
            raise SchemaError(f"index on empty relation has no min for {self.field!r}")
        return self._keys[0]

    def max_key(self) -> Any:
        self._refresh()
        if not self._keys:
            raise SchemaError(f"index on empty relation has no max for {self.field!r}")
        return self._keys[-1]

    def __len__(self) -> int:
        self._refresh()
        return len(self._keys)


def indexed_equi_join(
    left: RowSet, index: HashIndex, left_key: str
) -> list[tuple[Tuple, Tuple]]:
    """Join ``left`` against an existing hash index; returns row pairs.

    This is the probe side of an index-nested-loop join; callers assemble
    output tuples as needed.  Used by the join-strategy benchmark.
    """
    left.schema.field(left_key)
    pairs: list[tuple[Tuple, Tuple]] = []
    for lrow in left:
        for rrow in index.lookup(lrow[left_key]):
            pairs.append((lrow, rrow))
    return pairs
