"""Recursive-descent parser for the query expression language.

Grammar (lowest to highest precedence)::

    expr        := 'if' expr 'then' expr 'else' expr ['end'] | or_expr
    or_expr     := and_expr ('or' and_expr)*
    and_expr    := not_expr ('and' not_expr)*
    not_expr    := 'not' not_expr | comparison
    comparison  := additive (cmp_op additive)?
    cmp_op      := '=' | '==' | '!=' | '<>' | '<' | '<=' | '>' | '>='
    additive    := multiplicative (('+' | '-' | '||') multiplicative)*
    multiplicative := unary (('*' | '/' | '%') unary)*
    unary       := '-' unary | primary
    primary     := NUMBER | STRING | 'true' | 'false'
                 | IDENT '(' [expr (',' expr)*] ')' | IDENT | '(' expr ')'

``==`` and ``<>`` are accepted as spellings of ``=`` and ``!=``.  Strings use
single quotes with ``''`` as the escape for a quote.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from repro.dbms.expr import Binary, Call, Conditional, Expr, FieldRef, Literal, Unary
from repro.dbms.tuples import Schema
from repro.errors import ExpressionError

__all__ = ["parse_expression", "parse_predicate", "tokenize"]

_KEYWORDS = {"and", "or", "not", "if", "then", "else", "end", "true", "false"}
_TWO_CHAR = {"==", "!=", "<>", "<=", ">=", "||"}
_ONE_CHAR = set("=<>+-*/%(),")


class Token(NamedTuple):
    kind: str  # 'num' | 'str' | 'ident' | 'kw' | 'op' | 'eof'
    text: str
    pos: int


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into tokens, raising on any illegal character."""
    return list(_token_stream(source))


def _token_stream(source: str) -> Iterator[Token]:
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = source[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i > start:
                    seen_exp = True
                    i += 1
                    if i < n and source[i] in "+-":
                        i += 1
                else:
                    break
            yield Token("num", source[start:i], start)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            lowered = word.lower()
            if lowered in _KEYWORDS:
                yield Token("kw", lowered, start)
            else:
                yield Token("ident", word, start)
            continue
        if ch == "'":
            start = i
            i += 1
            chunks: list[str] = []
            while True:
                if i >= n:
                    raise ExpressionError(
                        f"unterminated string starting at position {start}",
                        source=source,
                        pos=start,
                        token="'",
                    )
                if source[i] == "'":
                    if i + 1 < n and source[i + 1] == "'":
                        chunks.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                chunks.append(source[i])
                i += 1
            yield Token("str", "".join(chunks), start)
            continue
        two = source[i : i + 2]
        if two in _TWO_CHAR:
            yield Token("op", two, i)
            i += 2
            continue
        if ch in _ONE_CHAR:
            yield Token("op", ch, i)
            i += 1
            continue
        raise ExpressionError(
            f"illegal character {ch!r} at position {i} in {source!r}",
            source=source,
            pos=i,
            token=ch,
        )
    yield Token("eof", "", n)


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.pos = 0

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            got = self.peek()
            want = text if text is not None else kind
            raise ExpressionError(
                f"expected {want!r} at position {got.pos} in {self.source!r}, "
                f"got {got.text!r}",
                source=self.source,
                pos=got.pos,
                token=got.text,
            )
        return token

    def parse(self) -> Expr:
        expr = self.expression()
        trailing = self.peek()
        if trailing.kind != "eof":
            raise ExpressionError(
                f"unexpected trailing {trailing.text!r} at position "
                f"{trailing.pos} in {self.source!r}",
                source=self.source,
                pos=trailing.pos,
                token=trailing.text,
            )
        return expr

    def expression(self) -> Expr:
        if_token = self.accept("kw", "if")
        if if_token is not None:
            condition = self.expression()
            self.expect("kw", "then")
            then_branch = self.expression()
            self.expect("kw", "else")
            else_branch = self.expression()
            self.accept("kw", "end")
            return Conditional(
                condition, then_branch, else_branch, pos=if_token.pos
            )
        return self.or_expr()

    def or_expr(self) -> Expr:
        left = self.and_expr()
        while (token := self.accept("kw", "or")) is not None:
            left = Binary("or", left, self.and_expr(), pos=token.pos)
        return left

    def and_expr(self) -> Expr:
        left = self.not_expr()
        while (token := self.accept("kw", "and")) is not None:
            left = Binary("and", left, self.not_expr(), pos=token.pos)
        return left

    def not_expr(self) -> Expr:
        token = self.accept("kw", "not")
        if token is not None:
            return Unary("not", self.not_expr(), pos=token.pos)
        return self.comparison()

    _CMP_CANON = {"==": "=", "<>": "!="}

    def comparison(self) -> Expr:
        left = self.additive()
        token = self.peek()
        if token.kind == "op" and token.text in ("=", "==", "!=", "<>", "<", "<=", ">", ">="):
            self.advance()
            op = self._CMP_CANON.get(token.text, token.text)
            return Binary(op, left, self.additive(), pos=token.pos)
        return left

    def additive(self) -> Expr:
        left = self.multiplicative()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("+", "-", "||"):
                self.advance()
                left = Binary(
                    token.text, left, self.multiplicative(), pos=token.pos
                )
            else:
                return left

    def multiplicative(self) -> Expr:
        left = self.unary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("*", "/", "%"):
                self.advance()
                left = Binary(token.text, left, self.unary(), pos=token.pos)
            else:
                return left

    def unary(self) -> Expr:
        token = self.accept("op", "-")
        if token is not None:
            return Unary("-", self.unary(), pos=token.pos)
        return self.primary()

    def primary(self) -> Expr:
        token = self.peek()
        if token.kind == "num":
            self.advance()
            text = token.text
            if any(c in text for c in ".eE"):
                return Literal(float(text), pos=token.pos)
            return Literal(int(text), pos=token.pos)
        if token.kind == "str":
            self.advance()
            return Literal(token.text, pos=token.pos)
        if token.kind == "kw" and token.text in ("true", "false"):
            self.advance()
            return Literal(token.text == "true", pos=token.pos)
        if token.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args: list[Expr] = []
                if not self.accept("op", ")"):
                    args.append(self.expression())
                    while self.accept("op", ","):
                        args.append(self.expression())
                    self.expect("op", ")")
                return Call(token.text, args, pos=token.pos)
            return FieldRef(token.text, pos=token.pos)
        if token.kind == "op" and token.text == "(":
            self.advance()
            inner = self.expression()
            self.expect("op", ")")
            return inner
        raise ExpressionError(
            f"unexpected {token.text or 'end of input'!r} at position "
            f"{token.pos} in {self.source!r}",
            source=self.source,
            pos=token.pos,
            token=token.text,
        )


def parse_expression(source: str, schema: Schema | None = None) -> Expr:
    """Parse ``source``; if ``schema`` is given, also type-check against it."""
    expr = _Parser(source).parse()
    if schema is not None:
        expr.infer(schema)
    return expr


def parse_predicate(source: str, schema: Schema) -> Expr:
    """Parse and type-check a boolean predicate against ``schema``."""
    from repro.dbms import types as T

    expr = _Parser(source).parse()
    result = expr.infer(schema)
    if result is not T.BOOL:
        raise ExpressionError(
            f"predicate {source!r} has type {result}, expected bool",
            source=source,
        )
    return expr
