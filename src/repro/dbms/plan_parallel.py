"""Partition-parallel plan execution and a process-wide result cache.

Two mechanisms make repeated viewer renders cheap (§6's pan/zoom/slider
loop re-runs queries on every gesture):

* **Morsel parallelism.**  :func:`parallelize_plan` rewrites a plan so that
  chains of streaming unary operators (Restrict / Project / Rename, plus a
  seeded Sample directly above the leaf) over a partitionable leaf run
  per-morsel on a shared :class:`~concurrent.futures.ThreadPoolExecutor`
  (:class:`ParallelMapNode`), and hash joins build and probe their table in
  morsels (:class:`ParallelHashJoinNode`).  Results are merged in morsel
  order, so output order is **identical to serial execution**, tuple for
  tuple.  Order-sensitive operators (OrderBy, GroupBy, Distinct, Limit) and
  non-partitionable sources fall back to serial execution of that node;
  their inputs may still be parallel below.

* **Result caching.**  :class:`ResultCache` memoizes materialized plan
  results process-wide, keyed by a structural plan fingerprint plus a
  storage-epoch stamp (:mod:`repro.dbms.relation`, bumped by every
  stored-table mutation including the Section-8 update dialogs).  Slaved
  viewers and repeated renders of overlapping extents reuse fragments
  instead of re-running subplans.  When the plan's read set is known
  (:func:`plan_read_set`) the stamp is a per-table epoch snapshot, so
  mutating one table only invalidates the entries that actually read it;
  otherwise the global epoch invalidates on any update.

Fingerprints identify leaves by source-object identity.  That is sound
because cache entries *pin* strong references to their sources (no id
reuse while the entry lives), and productive because ``Table.snapshot()``
memoizes per version, so independent plans over the same stored table
share one leaf object.

Both mechanisms are off unless a :class:`ParallelConfig` is active — via
``Engine(workers=N)``, the ``REPRO_PARALLEL`` environment variable, or
:func:`set_default_config`.
"""

from __future__ import annotations

import os
import random
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterator, Sequence

from repro.dbms.columnar import ColumnBatch, ColumnarConfig, cached_batch
from repro.dbms.expr_compile import VectorFallback, compile_predicate
from repro.dbms.plan import (
    EFFECT_PARALLEL,
    EFFECT_PURE,
    EFFECT_SOURCE,
    CacheNode,
    ColumnarDistinctNode,
    ColumnarGroupByNode,
    ColumnarHashJoinNode,
    ColumnarLimitNode,
    ColumnarOrderByNode,
    ColumnarProjectNode,
    ColumnarRenameNode,
    ColumnarRestrictNode,
    CrossProductNode,
    DistinctNode,
    GroupByNode,
    HashJoinNode,
    LazyRowSet,
    LimitNode,
    NestedLoopJoinNode,
    OrderByNode,
    PlanNode,
    ProjectNode,
    RenameNode,
    RestrictNode,
    SampleNode,
    ScanNode,
    ThetaJoinNode,
    ToColumnsNode,
    ToRowsNode,
    UnionNode,
    concat_rows,
    declare_effect,
    declared_effect,
    plan_annotator,
    _lineage_store,
)
from repro.dbms.relation import RowSet, storage_epoch, table_epoch, table_epochs
from repro.dbms.tuples import Tuple
from repro.obs.lineage import active_lineage
from repro.obs.metrics import global_registry
from repro.obs.trace import current_tracer

__all__ = [
    "ParallelConfig",
    "config_from_env",
    "default_config",
    "set_default_config",
    "install_from_env",
    "resolve_config",
    "ParallelMapNode",
    "ParallelHashJoinNode",
    "parallelize_plan",
    "plan_fingerprint",
    "plan_read_set",
    "ResultCache",
    "result_cache",
    "storage_epoch",
]


DEFAULT_WORKERS = 4
DEFAULT_MORSEL_SIZE = 2048
"""Rows per morsel.  Large enough that per-morsel dispatch overhead is
amortized; small enough that a handful of morsels exist for typical
interactive relations."""


class ParallelConfig:
    """How parallel a plan execution should be, and whether results cache.

    ``workers <= 1`` disables morsel parallelism but (with ``cache=True``)
    keeps result reuse — useful for measuring the two mechanisms apart.
    """

    __slots__ = ("workers", "cache", "morsel_size", "min_partition_rows")

    def __init__(
        self,
        workers: int = DEFAULT_WORKERS,
        cache: bool = True,
        morsel_size: int = DEFAULT_MORSEL_SIZE,
        min_partition_rows: int | None = None,
    ):
        self.workers = max(1, int(workers))
        self.cache = bool(cache)
        self.morsel_size = max(1, int(morsel_size))
        if min_partition_rows is None:
            min_partition_rows = 2 * self.morsel_size
        self.min_partition_rows = max(2, int(min_partition_rows))

    @property
    def parallel(self) -> bool:
        """True when morsel parallelism (not just caching) is on."""
        return self.workers >= 2

    def __repr__(self) -> str:
        return (
            f"ParallelConfig(workers={self.workers}, cache={self.cache}, "
            f"morsel_size={self.morsel_size})"
        )


def config_from_env(environ: dict[str, str] | None = None) -> ParallelConfig | None:
    """Build a config from ``REPRO_PARALLEL`` (unset/empty/"0" → None).

    ``REPRO_PARALLEL=1`` means the default worker count; any other integer
    is the worker count itself.  ``REPRO_PARALLEL_CACHE=0`` disables the
    result cache; ``REPRO_PARALLEL_MORSEL`` overrides the morsel size.
    """
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_PARALLEL", "")
    if raw in ("", "0"):
        return None
    try:
        workers = int(raw)
    except ValueError:
        workers = DEFAULT_WORKERS
    if workers == 1:
        workers = DEFAULT_WORKERS
    cache = env.get("REPRO_PARALLEL_CACHE", "1") != "0"
    try:
        morsel = int(env.get("REPRO_PARALLEL_MORSEL", str(DEFAULT_MORSEL_SIZE)))
    except ValueError:
        morsel = DEFAULT_MORSEL_SIZE
    return ParallelConfig(workers=workers, cache=cache, morsel_size=morsel)


_DEFAULT_CONFIG: ParallelConfig | None = None


def default_config() -> ParallelConfig | None:
    """The process-wide default config (None → fully serial, no caching)."""
    return _DEFAULT_CONFIG


def set_default_config(config: ParallelConfig | None) -> ParallelConfig | None:
    """Install the process-wide default; returns the previous value."""
    global _DEFAULT_CONFIG
    previous = _DEFAULT_CONFIG
    _DEFAULT_CONFIG = config
    return previous


def install_from_env() -> None:
    """Adopt ``REPRO_PARALLEL`` as the process default (import-time hook)."""
    config = config_from_env()
    if config is not None:
        set_default_config(config)


def resolve_config(
    workers: int | None = None, cache: bool | None = None
) -> ParallelConfig | None:
    """Resolve explicit ``Engine(workers=, cache=)`` knobs over the default.

    With both None, the process default (env-driven) applies unchanged.
    Explicit ``workers=0``/``workers=1`` with caching off resolves to fully
    serial (None).
    """
    base = default_config()
    if workers is None and cache is None:
        return base
    resolved_workers = (
        workers if workers is not None else (base.workers if base else 1)
    )
    if cache is not None:
        resolved_cache = cache
    elif base is not None:
        resolved_cache = base.cache
    else:
        resolved_cache = resolved_workers >= 2
    if resolved_workers <= 1 and not resolved_cache:
        return None
    morsel = base.morsel_size if base else DEFAULT_MORSEL_SIZE
    return ParallelConfig(
        workers=resolved_workers, cache=resolved_cache, morsel_size=morsel
    )


# ---------------------------------------------------------------------------
# Shared executors
# ---------------------------------------------------------------------------

_EXECUTORS: dict[int, ThreadPoolExecutor] = {}
_EXECUTOR_LOCK = threading.Lock()


def executor_for(workers: int) -> ThreadPoolExecutor:
    """One shared pool per worker count; threads persist across plans."""
    with _EXECUTOR_LOCK:
        pool = _EXECUTORS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"repro-morsel-{workers}"
            )
            _EXECUTORS[workers] = pool
        return pool


def shutdown_executors() -> None:
    """Tear down all shared pools (test isolation)."""
    with _EXECUTOR_LOCK:
        for pool in _EXECUTORS.values():
            pool.shutdown(wait=True, cancel_futures=True)
        _EXECUTORS.clear()


# ---------------------------------------------------------------------------
# Plan fingerprints
# ---------------------------------------------------------------------------


class _Unfingerprintable(Exception):
    """The plan's result is not a pure function of cacheable state."""


def plan_fingerprint(node: PlanNode) -> tuple[tuple, tuple] | None:
    """A structural key identifying this plan's result, or None.

    Returns ``(key, pins)`` where ``pins`` are the leaf source objects the
    key refers to by identity — a cache entry must hold them strongly so the
    ids cannot be reused while the entry lives.  Returns None for plans
    whose output is not reproducible (an unseeded Sample) or that contain
    operators this module does not know to be pure.
    """
    pins: list[Any] = []
    try:
        key = _fingerprint(node, pins)
    except _Unfingerprintable:
        return None
    return key, tuple(pins)


def _fingerprint(node: PlanNode, pins: list[Any]) -> tuple:
    if isinstance(node, ParallelMapNode):
        # Same result as its serial chain, by construction.
        return _fingerprint(node.children[0], pins)
    if isinstance(node, (ToColumnsNode, ToRowsNode)):
        # Adapters change representation, never content.
        return _fingerprint(node.children[0], pins)
    # Columnar kernels produce the same rows as their serial siblings, so
    # they share the serial tags — cache keys are backend-independent and
    # a result computed on either backend serves both.
    if isinstance(node, ColumnarRestrictNode):
        return ("restrict", str(node.predicate),
                _fingerprint(node.children[0], pins))
    if isinstance(node, ColumnarProjectNode):
        return ("project", tuple(node._names),
                _fingerprint(node.children[0], pins))
    if isinstance(node, ColumnarRenameNode):
        return ("rename", node.mapping, _fingerprint(node.children[0], pins))
    if isinstance(node, ColumnarLimitNode):
        return ("limit", node._count, _fingerprint(node.children[0], pins))
    if isinstance(node, ColumnarOrderByNode):
        return ("orderby", tuple(node._names), node._descending,
                _fingerprint(node.children[0], pins))
    if isinstance(node, ColumnarDistinctNode):
        return ("distinct", _fingerprint(node.children[0], pins))
    if isinstance(node, ColumnarGroupByNode):
        return ("groupby", tuple(node._keys), tuple(node._aggregations),
                _fingerprint(node.children[0], pins))
    if isinstance(node, ColumnarHashJoinNode):
        return ("equijoin", node._left_key, node._right_key,
                _fingerprint(node.children[0], pins),
                _fingerprint(node.children[1], pins))
    if isinstance(node, ScanNode):
        pins.append(node._source)
        return ("scan", id(node._source))
    if isinstance(node, CacheNode):
        # A LazyRowSet's value is a pure function of its plan, which bottoms
        # out at immutable snapshot RowSets — so fingerprint *through* the
        # memoization boundary.  Two engines layering identical box pipelines
        # over the same table snapshot then produce the same key, which is
        # what lets slaved viewers share one materialization.
        return ("lazy", _fingerprint(node._source.plan, pins))
    if isinstance(node, RestrictNode):
        return ("restrict", str(node.predicate),
                _fingerprint(node.children[0], pins))
    if isinstance(node, ProjectNode):
        return ("project", tuple(node._names),
                _fingerprint(node.children[0], pins))
    if isinstance(node, RenameNode):
        return ("rename", node.mapping, _fingerprint(node.children[0], pins))
    if isinstance(node, SampleNode):
        if node._seed is None:
            raise _Unfingerprintable("unseeded sample")
        return ("sample", node._probability, node._seed,
                _fingerprint(node.children[0], pins))
    if isinstance(node, LimitNode):
        return ("limit", node._count, _fingerprint(node.children[0], pins))
    if isinstance(node, OrderByNode):
        return ("orderby", tuple(node._names), node._descending,
                _fingerprint(node.children[0], pins))
    if isinstance(node, DistinctNode):
        return ("distinct", _fingerprint(node.children[0], pins))
    if isinstance(node, GroupByNode):
        return ("groupby", tuple(node._keys), tuple(node._aggregations),
                _fingerprint(node.children[0], pins))
    if isinstance(node, UnionNode):
        return ("union", _fingerprint(node.children[0], pins),
                _fingerprint(node.children[1], pins))
    if isinstance(node, CrossProductNode):
        return ("cross", _fingerprint(node.children[0], pins),
                _fingerprint(node.children[1], pins))
    if isinstance(node, (HashJoinNode, NestedLoopJoinNode)):
        # Both equi-join strategies emit the same rows in the same order.
        return ("equijoin", node._left_key, node._right_key,
                _fingerprint(node.children[0], pins),
                _fingerprint(node.children[1], pins))
    if isinstance(node, ThetaJoinNode):
        return ("thetajoin", node._source,
                _fingerprint(node.children[0], pins),
                _fingerprint(node.children[1], pins))
    raise _Unfingerprintable(type(node).__name__)


def plan_read_set(node: PlanNode) -> frozenset[str] | None:
    """The named stored tables this plan reads, or None if unknowable.

    Walks the plan the same way :func:`plan_fingerprint` does: through
    :class:`ParallelMapNode` templates and :class:`CacheNode` memoization
    boundaries down to the scan leaves.  Every leaf must be a *named*
    scan for the read set to be known — an anonymous leaf (or a custom
    node with no children) returns None, and callers fall back to the
    global storage epoch.
    """
    names: set[str] = set()
    if _read_set(node, names):
        return frozenset(names)
    return None


def _read_set(node: PlanNode, names: set[str]) -> bool:
    if isinstance(node, ScanNode):
        if node._name is None:
            return False
        names.add(node._name)
        return True
    if isinstance(node, CacheNode):
        return _read_set(node._source.plan, names)
    if not node.children:
        return False
    return all(_read_set(child, names) for child in node.children)


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------


def _epoch_fresh(epoch: int | dict[str, int]) -> bool:
    """Is a cache entry computed at ``epoch`` still current?

    An int is a global-epoch stamp (legacy / unknown read set); a dict maps
    table name -> per-table epoch at computation time and stays fresh as
    long as none of *those* tables mutated.
    """
    if isinstance(epoch, dict):
        return all(table_epoch(name) == value
                   for name, value in epoch.items())
    return epoch == storage_epoch()


class ResultCache:
    """Process-wide LRU of materialized plan results.

    Keys are ``(plan fingerprint, storage epoch)``-equivalent: the epoch
    stamp a result was computed at is stored with the entry, and a lookup
    only hits while that stamp is fresh (:func:`_epoch_fresh`).  A stamp is
    either the global storage epoch — any mutation anywhere invalidates —
    or, when the caller derived the plan's read set
    (:func:`plan_read_set`), a per-table epoch snapshot, so only mutations
    of the tables the plan actually read invalidate the entry.  Stale
    entries can never be served; they are evicted on the next touch.
    Entries pin their leaf source objects (see :func:`plan_fingerprint`)
    and may carry opaque ``meta`` for the caller (e.g. per-node counters to
    restore on a hit).
    """

    def __init__(self, max_entries: int = 256, max_rows: int = 500_000):
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self.max_entries = max_entries
        self.max_rows = max_rows
        registry = global_registry()
        self._hits = registry.counter(
            "cache.hit", "result-cache lookups served from memory")
        self._misses = registry.counter(
            "cache.miss", "result-cache lookups that ran the plan")
        self._evictions = registry.counter(
            "cache.evict", "result-cache entries dropped (LRU or stale)")

    def lookup(self, key: tuple) -> tuple[tuple[Tuple, ...], Any] | None:
        """Return ``(rows, meta)`` on a fresh hit, else None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                rows, meta, _pins, epoch = entry
                if _epoch_fresh(epoch):
                    self._entries.move_to_end(key)
                    self._hits.inc()
                    return rows, meta
                del self._entries[key]
                self._evictions.inc()
            self._misses.inc()
            return None

    def store(
        self,
        key: tuple,
        rows: Sequence[Tuple],
        pins: tuple,
        epoch: int | dict[str, int],
        meta: Any = None,
    ) -> bool:
        """Insert a result computed at ``epoch``; refuses stale results.

        ``epoch`` must be the epoch stamp read *before* the plan ran — the
        global epoch, or a :func:`repro.dbms.relation.table_epochs`
        snapshot of the plan's read set.  If a relevant mutation landed
        mid-execution the rows reflect a snapshot no longer current and
        must not be cached.
        """
        if not _epoch_fresh(epoch):
            return False
        if len(rows) > self.max_rows:
            return False
        with self._lock:
            self._entries[key] = (tuple(rows), meta, pins, epoch)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions.inc()
        return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int | float]:
        return {
            "entries": len(self._entries),
            "hits": self._hits.total(),
            "misses": self._misses.total(),
            "evictions": self._evictions.total(),
        }


_RESULT_CACHE: ResultCache | None = None
_RESULT_CACHE_LOCK = threading.Lock()


def result_cache() -> ResultCache:
    """The process-wide result cache (created on first use)."""
    global _RESULT_CACHE
    if _RESULT_CACHE is None:
        with _RESULT_CACHE_LOCK:
            if _RESULT_CACHE is None:
                _RESULT_CACHE = ResultCache()
    return _RESULT_CACHE


# ---------------------------------------------------------------------------
# Parallel operators
# ---------------------------------------------------------------------------


def _morsels(rows: Sequence[Tuple], size: int) -> list[Sequence[Tuple]]:
    return [rows[start:start + size] for start in range(0, len(rows), size)]


def _rebuilder(template: PlanNode) -> Callable[[PlanNode], PlanNode]:
    """A factory cloning one streaming unary operator over a new child."""
    if isinstance(template, RestrictNode):
        return lambda child: RestrictNode(
            child, template.predicate, template.alias)
    if isinstance(template, ProjectNode):
        return lambda child: ProjectNode(child, template._names)
    if isinstance(template, RenameNode):
        old, new = template.mapping
        return lambda child: RenameNode(child, old, new)
    raise TypeError(f"operator {template.label} is not morsel-parallel")


def _leaf_rows(leaf: PlanNode) -> Sequence[Tuple]:
    if isinstance(leaf, ScanNode):
        source = leaf._source
        return source.rows if isinstance(source, RowSet) else tuple(source)
    if isinstance(leaf, CacheNode):
        return leaf._source.force()
    raise TypeError(f"leaf {leaf.label} is not partitionable")


class ParallelMapNode(PlanNode):
    """Run a chain of streaming unary operators per-morsel, in parallel.

    The serial chain stays attached as this node's only child: it is the
    EXPLAIN-visible template, it is what fingerprints describe, and after
    every execution the per-morsel counters are folded back into its nodes
    so rows_in/rows_out totals match a serial run exactly.  Morsel outputs
    are concatenated in morsel (= input) order, so the output sequence is
    identical to the serial chain's.

    A seeded Sample directly above the leaf participates via a precomputed
    keep-mask drawn in one serial pass over the leaf rows — the same stream
    of draws the serial operator makes — then morsels partition the
    surviving rows.

    When a :class:`~repro.dbms.columnar.ColumnarConfig` is supplied and
    every Restrict predicate in the chain vectorizes, each morsel executes
    as a column-batch slice instead of a row loop: the leaf's cached
    columnar conversion is sliced per morsel, compiled mask programs apply
    the restricts, and Project/Rename relabel column references.  A morsel
    that trips a data hazard re-runs on the serial row path
    (``columnar.fallback``).  Output rows, order, and per-template
    counters are identical either way.
    """

    label = "ParallelMap"

    def __init__(
        self,
        chain_root: PlanNode,
        leaf: PlanNode,
        chain: Sequence[PlanNode],
        sample: SampleNode | None,
        config: ParallelConfig,
        columnar: ColumnarConfig | None = None,
    ):
        super().__init__((chain_root,), chain_root.schema)
        self._leaf = leaf
        # Bottom-up templates (nearest the leaf first), excluding the sample.
        self._chain = list(reversed(list(chain)))
        self._builders = [_rebuilder(template) for template in self._chain]
        self._sample = sample
        self._config = config
        #: Hazard proofs that elided guards in the vector chain (EXPLAIN).
        self.proof: str | None = None
        self._vector_chain = (
            self._compile_vector_chain() if columnar is not None else None
        )

    def _compile_vector_chain(self):
        """Per-stage columnar programs, or None if the chain won't pay off.

        Stages mirror ``self._chain`` bottom-up; schemas are threaded
        through Project/Rename so each compiled predicate sees the schema
        its template validated against.  Vectorizing is only worthwhile
        when at least one Restrict compiled — bare Project/Rename chains
        are pure plumbing.
        """
        schema = self._leaf.schema
        stages: list[tuple] = []
        compiled_any = False
        annotator = plan_annotator()
        proofs: list[str] = []
        for template in self._chain:
            if isinstance(template, RestrictNode):
                hazards = None
                if annotator is not None:
                    hazards = annotator(
                        template.predicate, template.children[0]
                    )
                    if hazards is not None and len(hazards):
                        proofs.append(hazards.proof_text())
                compiled = compile_predicate(
                    template.predicate, schema, hazards=hazards
                )
                if compiled is None:
                    return None
                stages.append(("restrict", compiled))
                compiled_any = True
            elif isinstance(template, ProjectNode):
                schema = schema.project(template._names)
                stages.append(("project", list(template._names), schema))
            else:
                old, new = template.mapping
                schema = schema.rename(old, new)
                stages.append(("rename", (old, new), schema))
        if not compiled_any:
            return None
        if proofs:
            self.proof = "; ".join(proofs)
        return stages

    @property
    def parallel_info(self) -> dict[str, Any]:
        """EXPLAIN annotation payload."""
        return {
            "workers": self._config.workers,
            "morsel_size": self._config.morsel_size,
            "ops": [template.label for template in self._chain],
            "columnar": self._vector_chain is not None,
        }

    def _run_morsel(self, index: int, chunk: Sequence[Tuple]):
        tracer = current_tracer()
        with tracer.span("parallel.morsel", op=self.label, morsel=index,
                         rows=len(chunk)):
            node: PlanNode = ScanNode(chunk, schema=self._leaf.schema)
            built: list[PlanNode] = []
            for build in self._builders:
                node = build(node)
                built.append(node)
            out = list(node.rows_iter())
            counters = [
                (item.stats.rows_in, item.stats.rows_out) for item in built
            ]
            # Each rebuilt node recorded lineage (if capture is on) into a
            # private store; hand those back so the main thread can merge
            # them into the template chain in morsel order.
            stores = [getattr(item, "lineage", None) for item in built]
        global_registry().counter(
            "parallel.morsels", "morsel tasks executed").inc(label=self.label)
        return out, counters, stores

    def _run_morsel_vector(self, index, chunk, base_batch, start):
        """One morsel as a column-batch slice; row-path retry on hazards."""
        stages = self._vector_chain
        tracer = current_tracer()
        with tracer.span("parallel.morsel", op=self.label, morsel=index,
                         rows=len(chunk)):
            if base_batch is not None:
                batch = base_batch.slice(start, start + len(chunk))
            else:
                batch = ColumnBatch.from_rows(self._leaf.schema, chunk)
            counters: list[tuple[int, int]] = []
            for stage in stages:
                rows_in = len(batch)
                if stage[0] == "restrict":
                    try:
                        keep = stage[1](batch)
                    except VectorFallback:
                        global_registry().counter(
                            "columnar.fallback",
                            "column batches re-evaluated on the row path "
                            "after a data hazard",
                        ).inc(label=self.label)
                        return self._run_morsel(index, chunk)
                    batch = batch.take_mask(keep)
                elif stage[0] == "project":
                    __, names, schema = stage
                    batch = ColumnBatch(
                        schema,
                        {name: batch.column(name) for name in names},
                        mask=batch.mask,
                    )
                else:
                    __, (old, new), schema = stage
                    batch = ColumnBatch(
                        schema,
                        {
                            (new if name == old else name): batch.column(name)
                            for name in batch.schema.names
                        },
                        mask=batch.mask,
                    )
                counters.append((rows_in, len(batch)))
            out = list(batch.to_rows())
        global_registry().counter(
            "columnar.batches", "column batches produced by columnar kernels"
        ).inc(label=self.label)
        global_registry().counter(
            "parallel.morsels", "morsel tasks executed").inc(label=self.label)
        return out, counters, None

    def _produce(self) -> Iterator[Tuple]:
        config = self._config
        rows = _leaf_rows(self._leaf)
        total = len(rows)
        self.stats.rows_in += total
        leaf_stats = self._leaf.stats
        leaf_stats.rows_in += total
        leaf_stats.rows_out += total

        if self._sample is not None:
            # One serial pass of draws, exactly as SampleNode makes them.
            rng = random.Random(self._sample._seed)
            probability = self._sample._probability
            kept = [row for row in rows if rng.random() < probability]
            sample_stats = self._sample.stats
            sample_stats.rows_in += total
            sample_stats.rows_out += len(kept)
            rows = kept

        morsels = _morsels(rows, config.morsel_size)
        # Under lineage capture the row path must run so rebuilt operators
        # record mappings; morsel order keeps the merged stores stable.
        vector = self._vector_chain is not None and active_lineage() is None
        base_batch = None
        if vector and isinstance(rows, tuple):
            # One cached whole-source conversion; morsels become slices.
            base_batch = cached_batch(rows, self._leaf.schema)

        def submit_args(index: int, chunk):
            if vector:
                return (self._run_morsel_vector, index, chunk, base_batch,
                        index * config.morsel_size)
            return (self._run_morsel, index, chunk)

        run_parallel = (
            config.parallel
            and len(rows) >= config.min_partition_rows
            and len(morsels) > 1
        )
        if run_parallel:
            pool = executor_for(config.workers)
            futures = [
                pool.submit(*submit_args(index, chunk))
                for index, chunk in enumerate(morsels)
            ]
            results = [future.result() for future in futures]
        else:
            results = []
            for index, chunk in enumerate(morsels):
                fn, *call_args = submit_args(index, chunk)
                results.append(fn(*call_args))

        for out, counters, stores in results:
            for template, (rows_in, rows_out) in zip(self._chain, counters):
                template.stats.rows_in += rows_in
                template.stats.rows_out += rows_out
            if stores is not None:
                for template, store in zip(self._chain, stores):
                    if store is None or not len(store):
                        continue
                    target = _lineage_store(template)
                    if target is not None:
                        target.merge(store)
            yield from out

    def describe(self) -> str:
        ops = ", ".join(template.label for template in self._chain)
        if self._sample is not None:
            ops = f"Sample, {ops}" if ops else "Sample"
        return (
            f"ParallelMap[{ops}] "
            f"(workers={self._config.workers}, "
            f"morsel={self._config.morsel_size})"
        )


class ParallelHashJoinNode(HashJoinNode):
    """Hash join with morsel-parallel build and probe, serial output order.

    Build: the right input is materialized (as in the serial operator),
    split into morsels, and each morsel hashed independently; the bucket
    dicts are merged **in morsel order**, so every bucket lists rows in
    right-input order — exactly the serial build.  Probe: left morsels run
    concurrently against the shared read-only bucket table and outputs are
    concatenated in morsel order — exactly the serial probe order.  The
    non-hashable-key degradation behaves as in the serial operator.
    """

    label = "ParallelHashJoin"

    def __init__(self, left: PlanNode, right: PlanNode,
                 left_key: str, right_key: str, config: ParallelConfig):
        super().__init__(left, right, left_key, right_key)
        self._config = config

    @property
    def parallel_info(self) -> dict[str, Any]:
        return {
            "workers": self._config.workers,
            "morsel_size": self._config.morsel_size,
            "ops": ["HashJoin"],
        }

    def _build_morsel(self, index: int, chunk: Sequence[Tuple]):
        tracer = current_tracer()
        with tracer.span("parallel.morsel", op="HashJoinBuild", morsel=index,
                         rows=len(chunk)):
            right_key = self._right_key
            buckets: dict[Any, list[Tuple]] = {}
            try:
                for rrow in chunk:
                    buckets.setdefault(rrow[right_key], []).append(rrow)
            except TypeError:
                return None
        global_registry().counter(
            "parallel.morsels", "morsel tasks executed").inc(label=self.label)
        return buckets

    def _probe_morsel(self, index, chunk, buckets, right_rows):
        tracer = current_tracer()
        schema = self._schema
        left_key, right_key = self._left_key, self._right_key
        degraded = False
        out: list[Tuple] = []
        with tracer.span("parallel.morsel", op="HashJoinProbe", morsel=index,
                         rows=len(chunk)):
            for lrow in chunk:
                key = lrow[left_key]
                try:
                    matches = buckets.get(key, ())
                except TypeError:
                    degraded = True
                    matches = [r for r in right_rows if r[right_key] == key]
                for rrow in matches:
                    out.append(concat_rows(schema, lrow, rrow))
        global_registry().counter(
            "parallel.morsels", "morsel tasks executed").inc(label=self.label)
        return out, degraded

    def _produce(self) -> Iterator[Tuple]:
        config = self._config
        if not config.parallel or active_lineage() is not None:
            # Serial operator records lineage on this node directly.
            yield from super()._produce()
            return

        right_rows = list(self._pull(self._children[1]))
        self._buffered(right_rows)
        pool = executor_for(config.workers)

        build_morsels = _morsels(right_rows, config.morsel_size)
        if len(right_rows) >= config.min_partition_rows and len(build_morsels) > 1:
            parts = [
                future.result()
                for future in [
                    pool.submit(self._build_morsel, index, chunk)
                    for index, chunk in enumerate(build_morsels)
                ]
            ]
        else:
            parts = [
                self._build_morsel(index, chunk)
                for index, chunk in enumerate(build_morsels)
            ]

        buckets: dict[Any, list[Tuple]] | None = {}
        for part in parts:
            if part is None:
                buckets = None
                self.stats.note(self._DEGRADED_BUILD)
                break
            for key, matched in part.items():
                buckets.setdefault(key, []).extend(matched)

        left_rows = list(self._pull(self._children[0]))

        if buckets is None:
            schema = self._schema
            left_key, right_key = self._left_key, self._right_key
            for lrow in left_rows:
                key = lrow[left_key]
                for rrow in right_rows:
                    if rrow[right_key] == key:
                        yield concat_rows(schema, lrow, rrow)
            return

        probe_morsels = _morsels(left_rows, config.morsel_size)
        if len(left_rows) >= config.min_partition_rows and len(probe_morsels) > 1:
            results = [
                future.result()
                for future in [
                    pool.submit(self._probe_morsel, index, chunk, buckets,
                                right_rows)
                    for index, chunk in enumerate(probe_morsels)
                ]
            ]
        else:
            results = [
                self._probe_morsel(index, chunk, buckets, right_rows)
                for index, chunk in enumerate(probe_morsels)
            ]
        for out, degraded in results:
            if degraded:
                self.stats.note(self._DEGRADED_PROBE)
            yield from out


# ---------------------------------------------------------------------------
# The parallelize rewrite
# ---------------------------------------------------------------------------
#
# Eligibility is decided by each operator's *declared effect*
# (:data:`repro.dbms.plan.NODE_EFFECTS`), not a hardcoded class allowlist:
# only pure row-backend streaming unary operators may run per-morsel, and
# only declared sources may be partitioned.  Exact-class lookup means a
# subclass that overrides behavior without declaring an effect is never
# parallelized — and the static race lint (``T2-E112`` in
# ``repro.analyze.planverify``) rejects it if it shows up inside a
# parallel region anyway.


def _chain_op(node: PlanNode) -> bool:
    """May ``node`` run per-morsel inside a :class:`ParallelMapNode`?"""
    return (
        declared_effect(node) == EFFECT_PURE
        and node.backend == "row"
        and len(node.children) == 1
    )


def _leaf_op(node: PlanNode) -> bool:
    """May ``node`` be partitioned into morsels?"""
    return declared_effect(node) == EFFECT_SOURCE


def parallelize_plan(
    root: PlanNode,
    config: ParallelConfig,
    log: list[str] | None = None,
    *,
    columnar: ColumnarConfig | None = None,
) -> tuple[PlanNode, list[str]]:
    """Rewrite a plan for morsel-parallel execution; serial-identical output.

    Chains of Restrict/Project/Rename (optionally with a seeded Sample at
    the bottom) over a Scan or Cache leaf become a :class:`ParallelMapNode`;
    plain hash joins become :class:`ParallelHashJoinNode`.  Everything else
    — order-sensitive operators, unseeded samples, non-partitionable
    sources — keeps its serial operator, with its inputs rewritten
    recursively.  The rewrite preserves schemas and never touches the
    interior of a CacheNode (its child belongs to another LazyRowSet).

    When ``columnar`` is given, each :class:`ParallelMapNode` additionally
    compiles its chain for column-batch morsels (see the class docstring);
    subtrees already on the columnar backend are left untouched.
    """
    if log is None:
        log = []

    def walk(node: PlanNode) -> PlanNode:
        if isinstance(node, (ParallelMapNode, ParallelHashJoinNode)):
            return node
        if hasattr(node, "columnar_info") or isinstance(node, ToRowsNode):
            return node
        if _leaf_op(node) or not node.children:
            return node
        if _chain_op(node):
            chain: list[PlanNode] = []
            cursor: PlanNode = node
            while _chain_op(cursor):
                chain.append(cursor)
                cursor = cursor.children[0]
            sample: SampleNode | None = None
            leaf: PlanNode | None = None
            if (
                type(cursor) is SampleNode
                and cursor._seed is not None
                and _leaf_op(cursor.children[0])
            ):
                sample, leaf = cursor, cursor.children[0]
            elif _leaf_op(cursor):
                leaf = cursor
            if leaf is not None:
                wrapped = ParallelMapNode(
                    node, leaf, chain, sample, config, columnar=columnar
                )
                log.append(
                    f"parallelize: {len(chain)}-op chain over "
                    f"{leaf.describe()} → morsels "
                    f"(workers={config.workers})"
                )
                return wrapped
            # The chain bottoms out on something non-partitionable;
            # rewrite below it and keep the chain serial.
            rebuilt = walk(cursor)
            if rebuilt is not cursor:
                chain[-1]._children = (rebuilt,)
            return node
        if type(node) is HashJoinNode:
            left = walk(node.children[0])
            right = walk(node.children[1])
            wrapped = ParallelHashJoinNode(
                left, right, node._left_key, node._right_key, config)
            log.append(
                f"parallelize: {node.describe()} → parallel build/probe "
                f"(workers={config.workers})"
            )
            return wrapped
        node._children = tuple(walk(child) for child in node.children)
        return node

    return walk(root), log


# The parallel region operators own their worker coordination; the race
# lint checks their *interiors* instead of treating them as plain nodes.
declare_effect(ParallelMapNode, EFFECT_PARALLEL)
declare_effect(ParallelHashJoinNode, EFFECT_PARALLEL)
