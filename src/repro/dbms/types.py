"""Atomic type system for the object-relational substrate.

The paper assumes "an object-relational DBMS in which a relation has stored
attributes as well as methods defining additional attributes" (Section 2) and
requires, for each primitive type, a *default display function* used to render
values and an *update function* used to edit them from the screen
(Sections 5.2 and 8).

This module defines the atomic column types, a registry mapping type names to
singleton instances, value validation/coercion, and the per-type default
display and update hooks.  The drawable-list type used by display attributes
lives here too, so that display attributes are ordinary typed attributes.
"""

from __future__ import annotations

import datetime as _dt
import math
from typing import Any, Callable

from repro.errors import TypeCheckError

__all__ = [
    "AtomicType",
    "IntType",
    "FloatType",
    "TextType",
    "BoolType",
    "DateType",
    "DrawableListType",
    "INT",
    "FLOAT",
    "TEXT",
    "BOOL",
    "DATE",
    "DRAWABLES",
    "type_by_name",
    "register_type",
    "registered_type_names",
    "infer_type",
    "numeric",
    "set_update_function",
    "get_update_function",
]


class AtomicType:
    """A column type: name, validation, coercion, display and update hooks.

    Instances are singletons registered by name; equality is identity-based,
    which keeps type checks cheap and unambiguous.
    """

    name: str = "abstract"

    def validates(self, value: Any) -> bool:
        """Return True when ``value`` is a legal instance of this type."""
        raise NotImplementedError

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this type or raise :class:`TypeCheckError`."""
        if self.validates(value):
            return value
        raise TypeCheckError(
            f"value {value!r} is not a legal {self.name} and cannot be coerced"
        )

    def default_value(self) -> Any:
        """A neutral value of this type, used when constructing blank tuples."""
        raise NotImplementedError

    def default_display(self, value: Any) -> str:
        """Default textual rendering — the 'terminal monitor' form (§5.2)."""
        return str(value)

    def default_update(self, old_value: Any, raw_input: str) -> Any:
        """Parse user-entered text into a new value for an update dialog (§8).

        The ``old_value`` is available so types can support relative edits;
        the default implementation ignores it and parses ``raw_input``.
        """
        del old_value
        return self.parse(raw_input)

    def parse(self, text: str) -> Any:
        """Parse a textual representation into a value of this type."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<type {self.name}>"

    def __str__(self) -> str:
        return self.name


class IntType(AtomicType):
    name = "int"

    def validates(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    def coerce(self, value: Any) -> Any:
        if self.validates(value):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeCheckError(f"value {value!r} is not a legal int")

    def default_value(self) -> int:
        return 0

    def parse(self, text: str) -> int:
        try:
            return int(text.strip())
        except ValueError as exc:
            raise TypeCheckError(f"cannot parse {text!r} as int") from exc


class FloatType(AtomicType):
    name = "float"

    def validates(self, value: Any) -> bool:
        return isinstance(value, float) and not math.isnan(value)

    def coerce(self, value: Any) -> Any:
        if self.validates(value):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        raise TypeCheckError(f"value {value!r} is not a legal float")

    def default_value(self) -> float:
        return 0.0

    def default_display(self, value: Any) -> str:
        return f"{value:g}"

    def parse(self, text: str) -> float:
        try:
            return float(text.strip())
        except ValueError as exc:
            raise TypeCheckError(f"cannot parse {text!r} as float") from exc


class TextType(AtomicType):
    name = "text"

    def validates(self, value: Any) -> bool:
        return isinstance(value, str)

    def default_value(self) -> str:
        return ""

    def parse(self, text: str) -> str:
        return text


class BoolType(AtomicType):
    name = "bool"

    _TRUE = {"true", "t", "yes", "1"}
    _FALSE = {"false", "f", "no", "0"}

    def validates(self, value: Any) -> bool:
        return isinstance(value, bool)

    def default_value(self) -> bool:
        return False

    def parse(self, text: str) -> bool:
        lowered = text.strip().lower()
        if lowered in self._TRUE:
            return True
        if lowered in self._FALSE:
            return False
        raise TypeCheckError(f"cannot parse {text!r} as bool")


class DateType(AtomicType):
    """Calendar dates, stored as :class:`datetime.date`.

    Comparisons and the ``year()``/``month()``/``day()`` builtins in the
    expression language operate on these.
    """

    name = "date"

    def validates(self, value: Any) -> bool:
        return isinstance(value, _dt.date) and not isinstance(value, _dt.datetime)

    def coerce(self, value: Any) -> Any:
        if self.validates(value):
            return value
        if isinstance(value, str):
            return self.parse(value)
        raise TypeCheckError(f"value {value!r} is not a legal date")

    def default_value(self) -> _dt.date:
        return _dt.date(1970, 1, 1)

    def default_display(self, value: Any) -> str:
        return value.isoformat()

    def parse(self, text: str) -> _dt.date:
        try:
            return _dt.date.fromisoformat(text.strip())
        except ValueError as exc:
            raise TypeCheckError(f"cannot parse {text!r} as date (want YYYY-MM-DD)") from exc


class DrawableListType(AtomicType):
    """The type of display attributes: an ordered list of primitive drawables.

    "A display attribute is a list of primitive drawable objects" (§5.1).
    Validation is structural (duck-typed on the Drawable protocol) to avoid a
    circular import with :mod:`repro.display.drawables`; the drawables module
    is the authority on what a drawable is.
    """

    name = "drawables"

    def validates(self, value: Any) -> bool:
        if not isinstance(value, (list, tuple)):
            return False
        return all(hasattr(item, "paint") and hasattr(item, "offset") for item in value)

    def coerce(self, value: Any) -> Any:
        if hasattr(value, "paint") and hasattr(value, "offset"):
            return [value]
        if isinstance(value, tuple):
            value = list(value)
        if self.validates(value):
            return list(value)
        raise TypeCheckError(f"value {value!r} is not a legal drawable list")

    def default_value(self) -> list:
        return []

    def default_display(self, value: Any) -> str:
        return "[" + ", ".join(type(item).__name__ for item in value) + "]"

    def parse(self, text: str) -> Any:
        raise TypeCheckError("drawable lists cannot be parsed from text")


INT = IntType()
FLOAT = FloatType()
TEXT = TextType()
BOOL = BoolType()
DATE = DateType()
DRAWABLES = DrawableListType()

_REGISTRY: dict[str, AtomicType] = {}
_UPDATE_FUNCTIONS: dict[str, Callable[[Any, str], Any]] = {}


def register_type(atomic: AtomicType) -> AtomicType:
    """Register a type singleton under its name; idempotent for same instance."""
    existing = _REGISTRY.get(atomic.name)
    if existing is not None and existing is not atomic:
        raise TypeCheckError(f"type name {atomic.name!r} is already registered")
    _REGISTRY[atomic.name] = atomic
    return atomic


for _atomic in (INT, FLOAT, TEXT, BOOL, DATE, DRAWABLES):
    register_type(_atomic)


def type_by_name(name: str) -> AtomicType:
    """Look up a registered type by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise TypeCheckError(f"unknown type {name!r} (known: {known})") from exc


def registered_type_names() -> list[str]:
    """All registered type names, sorted."""
    return sorted(_REGISTRY)


def infer_type(value: Any) -> AtomicType:
    """Infer the atomic type of a Python value."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        if math.isnan(value):
            raise TypeCheckError("NaN is not a legal float value")
        return FLOAT
    if isinstance(value, str):
        return TEXT
    if isinstance(value, _dt.date) and not isinstance(value, _dt.datetime):
        return DATE
    if DRAWABLES.validates(value):
        return DRAWABLES
    raise TypeCheckError(f"cannot infer an atomic type for {value!r}")


def numeric(atomic: AtomicType) -> bool:
    """True for types that support arithmetic (int and float)."""
    return atomic is INT or atomic is FLOAT


def set_update_function(atomic: AtomicType, fn: Callable[[Any, str], Any]) -> None:
    """Override the update function for a type (Section 8).

    "the type definer is required to write a second update function that
    enables Tioga-2 to provide updates for instances of the type."
    """
    _UPDATE_FUNCTIONS[atomic.name] = fn


def get_update_function(atomic: AtomicType) -> Callable[[Any, str], Any]:
    """The update function for a type: custom if set, else the type default."""
    return _UPDATE_FUNCTIONS.get(atomic.name, atomic.default_update)
