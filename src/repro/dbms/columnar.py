"""Columnar batch representation for the vectorized execution backend.

A :class:`ColumnBatch` holds one numpy array per schema field plus a
validity mask.  Primitive types map to fixed-width dtypes (INT ``int64``,
FLOAT ``float64``, BOOL ``bool_``); TEXT, DATE, and DRAWABLES columns — and
any numeric column whose values overflow the fixed-width dtype — fall back
to ``object`` dtype, where numpy applies the Python operators elementwise,
so semantics never change, only speed.

The type system has no NULL: every :class:`~repro.dbms.tuples.Tuple` value
is coerced and validated at construction, so the validity mask is all-true
in practice.  It is kept (and propagated through every kernel) so the batch
format already carries the slot a nullable type extension would need.

Row identity: a batch built from existing tuples keeps references to the
original :class:`Tuple` objects; selection-only kernels (Restrict, Limit,
Distinct, OrderBy) carry them through, so converting back to rows returns
the *same* objects the serial backend would have produced — not equal
copies.  The scene-graph culling path depends on this (it recovers source
indices by identity).  Schema-changing kernels (Project, Rename, GroupBy,
Join) drop the originals and rebuild rows via :meth:`Tuple.trusted` —
except under lineage capture (``repro.obs.lineage``), where those kernels
materialize their output rows once, re-attach them to the outgoing batch,
and record output-row → input-row mappings, so backward walks compose by
identity across the whole columnar pipeline.

:class:`ColumnarConfig` mirrors the :class:`ParallelConfig` pattern from
``plan_parallel``: a process default installable from ``REPRO_COLUMNAR``,
overridable per engine with ``Engine(columnar=...)``.  See
``docs/COLUMNAR.md``.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Iterable, Sequence

import numpy as np

from repro.dbms import types as T
from repro.dbms.tuples import Schema, Tuple

__all__ = [
    "ColumnBatch",
    "ColumnarConfig",
    "DEFAULT_BATCH_ROWS",
    "NUMPY_DTYPES",
    "batch_cache_clear",
    "cached_batch",
    "columnar_config_from_env",
    "default_columnar_config",
    "install_from_env",
    "resolve_columnar_config",
    "set_default_columnar_config",
]

#: Fixed-width dtypes for the primitive atomic types; anything absent here
#: (TEXT, DATE, DRAWABLES) is stored at ``object`` dtype.
NUMPY_DTYPES = {T.INT: np.int64, T.FLOAT: np.float64, T.BOOL: np.bool_}


def _object_array(values: Sequence) -> np.ndarray:
    """An object-dtype array holding ``values`` as-is.

    Built by explicit assignment: numpy's sequence sniffing must never get
    a chance to flatten list-valued cells (DRAWABLES) into subarrays.
    """
    arr = np.empty(len(values), dtype=object)
    for index, value in enumerate(values):
        arr[index] = value
    return arr


def _column_array(values: Sequence, atomic) -> np.ndarray:
    dtype = NUMPY_DTYPES.get(atomic)
    if dtype is not None:
        try:
            return np.array(values, dtype=dtype)
        except (OverflowError, ValueError, TypeError):
            pass    # e.g. an int beyond int64 — keep exact Python objects
    return _object_array(values)


class ColumnBatch:
    """One batch of rows in columnar form: an array per field plus a mask."""

    __slots__ = ("schema", "_columns", "mask", "rows", "_length")

    def __init__(self, schema: Schema, columns: dict[str, np.ndarray],
                 mask: np.ndarray | None = None,
                 rows: np.ndarray | None = None):
        self.schema = schema
        self._columns = columns
        first = next(iter(columns.values())) if columns else None
        self._length = len(first) if first is not None else 0
        self.mask = (mask if mask is not None
                     else np.ones(self._length, dtype=bool))
        self.rows = rows    # object array of the original Tuples, or None

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:
        return (f"ColumnBatch({self._length} rows x "
                f"{len(self.schema)} columns)")

    # -- construction -------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema, rows: Sequence[Tuple],
                  keep_rows: bool = True) -> "ColumnBatch":
        """Convert materialized tuples to columns.

        ``keep_rows`` pins the original Tuple objects so a later
        :meth:`to_rows` returns them by identity.
        """
        if not isinstance(rows, (list, tuple)):
            rows = list(rows)
        columns: dict[str, np.ndarray] = {}
        for pos, field in enumerate(schema.fields):
            values = [row.values[pos] for row in rows]
            columns[field.name] = _column_array(values, field.type)
        row_arr = _object_array(rows) if keep_rows else None
        return cls(schema, columns, rows=row_arr)

    @classmethod
    def concat(cls, batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """Concatenate same-schema batches into one (a pipeline breaker)."""
        if len(batches) == 1:
            return batches[0]
        schema = batches[0].schema
        columns = {
            name: np.concatenate([b._columns[name] for b in batches])
            for name in schema.names
        }
        mask = np.concatenate([b.mask for b in batches])
        rows = None
        if all(b.rows is not None for b in batches):
            rows = np.concatenate([b.rows for b in batches])
        return cls(schema, columns, mask=mask, rows=rows)

    # -- access -------------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        return self._columns[name]

    def arrays(self) -> list[np.ndarray]:
        """The column arrays in schema order."""
        return [self._columns[name] for name in self.schema.names]

    def to_rows(self) -> Sequence[Tuple]:
        """Back to row form.

        Returns the original Tuple objects when the batch still carries
        them; otherwise rebuilds tuples via the trusted constructor —
        every value came out of a validated tuple (``.tolist()`` converts
        numpy scalars back to the native Python types the serial backend
        holds), so re-coercion would only burn time.
        """
        if self.rows is not None:
            return self.rows
        schema = self.schema
        lists = [self._columns[name].tolist() for name in schema.names]
        if len(lists) == 1:
            return [Tuple.trusted(schema, (value,)) for value in lists[0]]
        trusted = Tuple.trusted
        return [trusted(schema, values) for values in zip(*lists)]

    # -- selection (keeps row identity) -------------------------------------

    def take(self, indices: np.ndarray) -> "ColumnBatch":
        """Rows at ``indices``, in that order."""
        columns = {name: arr[indices] for name, arr in self._columns.items()}
        rows = self.rows[indices] if self.rows is not None else None
        return ColumnBatch(self.schema, columns, mask=self.mask[indices],
                           rows=rows)

    def take_mask(self, keep: np.ndarray) -> "ColumnBatch":
        """Rows where ``keep`` is true, in input order."""
        columns = {name: arr[keep] for name, arr in self._columns.items()}
        rows = self.rows[keep] if self.rows is not None else None
        return ColumnBatch(self.schema, columns, mask=self.mask[keep],
                           rows=rows)

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        columns = {name: arr[start:stop]
                   for name, arr in self._columns.items()}
        rows = self.rows[start:stop] if self.rows is not None else None
        return ColumnBatch(self.schema, columns, mask=self.mask[start:stop],
                           rows=rows)

    # -- schema changes (drop row identity) ----------------------------------

    def project(self, names: Sequence[str]) -> "ColumnBatch":
        schema = self.schema.project(names)
        columns = {name: self._columns[name] for name in names}
        return ColumnBatch(schema, columns, mask=self.mask)

    def rename(self, old: str, new: str) -> "ColumnBatch":
        schema = self.schema.rename(old, new)
        columns = {(new if name == old else name): arr
                   for name, arr in self._columns.items()}
        return ColumnBatch(schema, columns, mask=self.mask)


# ---------------------------------------------------------------------------
# Conversion cache: RowSet -> ColumnBatch, keyed by tuple identity
# ---------------------------------------------------------------------------

#: Small LRU of whole-source conversions.  ``RowSet`` is slotted (no
#: ``__weakref__``), so the key is ``id(rows)`` with the rows object pinned
#: strongly in the entry — the same soundness argument the result cache
#: makes for its fingerprint pins.  Re-renders of an unchanged table then
#: reuse one conversion instead of re-walking every tuple.
_CACHE_MAX = 16
_cache: "OrderedDict[tuple[int, int], tuple[object, ColumnBatch]]" = (
    OrderedDict()
)
_cache_lock = threading.Lock()


def cached_batch(rows: Sequence[Tuple], schema: Schema) -> ColumnBatch:
    """The (possibly cached) columnar conversion of a materialized source."""
    key = (id(rows), id(schema))
    with _cache_lock:
        hit = _cache.get(key)
        if hit is not None:
            _cache.move_to_end(key)
            return hit[1]
    batch = ColumnBatch.from_rows(schema, rows, keep_rows=True)
    with _cache_lock:
        _cache[key] = (rows, batch)
        _cache.move_to_end(key)
        while len(_cache) > _CACHE_MAX:
            _cache.popitem(last=False)
    return batch


def batch_cache_clear() -> None:
    """Drop all cached conversions (tests; memory pressure)."""
    with _cache_lock:
        _cache.clear()


# ---------------------------------------------------------------------------
# Configuration: the Engine(columnar=...) / REPRO_COLUMNAR knobs
# ---------------------------------------------------------------------------

DEFAULT_BATCH_ROWS = 65_536
"""Rows per column batch when a ToColumns adapter re-batches a row stream."""


class ColumnarConfig:
    """Knobs for the columnar backend (mirrors ``ParallelConfig``)."""

    __slots__ = ("batch_rows",)

    def __init__(self, batch_rows: int = DEFAULT_BATCH_ROWS):
        self.batch_rows = max(1, int(batch_rows))

    def __repr__(self) -> str:
        return f"ColumnarConfig(batch_rows={self.batch_rows})"


def columnar_config_from_env(environ=None) -> ColumnarConfig | None:
    """Read ``REPRO_COLUMNAR`` / ``REPRO_COLUMNAR_BATCH``.

    Unset, empty, or ``0`` means off (``None``); anything else enables the
    columnar backend with the (optionally overridden) batch size.
    """
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_COLUMNAR", "")
    if raw in ("", "0"):
        return None
    try:
        batch_rows = int(env.get("REPRO_COLUMNAR_BATCH",
                                 str(DEFAULT_BATCH_ROWS)))
    except ValueError:
        batch_rows = DEFAULT_BATCH_ROWS
    return ColumnarConfig(batch_rows=batch_rows)


_DEFAULT_CONFIG: ColumnarConfig | None = None


def default_columnar_config() -> ColumnarConfig | None:
    """The process-wide columnar config (``None`` = row backend only)."""
    return _DEFAULT_CONFIG


def set_default_columnar_config(
        config: ColumnarConfig | None) -> ColumnarConfig | None:
    """Install a process default; returns the previous one (for restore)."""
    global _DEFAULT_CONFIG
    previous = _DEFAULT_CONFIG
    _DEFAULT_CONFIG = config
    return previous


def install_from_env() -> None:
    """Adopt ``REPRO_COLUMNAR`` as the process default when set."""
    config = columnar_config_from_env()
    if config is not None:
        set_default_columnar_config(config)


def resolve_columnar_config(columnar=None) -> ColumnarConfig | None:
    """Resolve the ``Engine(columnar=...)`` knob against the process default.

    ``None`` inherits the default; ``False`` forces the row backend;
    ``True`` enables the backend (reusing the default's batch size when one
    is installed); a :class:`ColumnarConfig` passes through.
    """
    if columnar is None:
        return default_columnar_config()
    if isinstance(columnar, ColumnarConfig):
        return columnar
    if columnar:
        return default_columnar_config() or ColumnarConfig()
    return None
