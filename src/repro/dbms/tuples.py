"""Schemas and tuples.

A :class:`Schema` is an ordered mapping of field names to atomic types; a
:class:`Tuple` is an immutable row conforming to a schema.  The paper's
notation ``t.l`` ("attribute l of tuple t", Section 2) is supported via
attribute-style access in the expression evaluator and via ``tuple[name]``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.dbms.types import AtomicType, type_by_name
from repro.errors import SchemaError, TypeCheckError

__all__ = ["Field", "Schema", "Tuple"]

_IDENT_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_")


def _valid_field_name(name: str) -> bool:
    return (
        bool(name)
        and name[0].isalpha()
        and all(ch in _IDENT_OK for ch in name)
    )


class Field:
    """A named, typed column of a schema."""

    __slots__ = ("name", "type")

    def __init__(self, name: str, atomic: AtomicType | str):
        if not _valid_field_name(name):
            raise SchemaError(
                f"illegal field name {name!r}: must start with a letter and "
                "contain only letters, digits, and underscores"
            )
        self.name = name
        self.type = type_by_name(atomic) if isinstance(atomic, str) else atomic

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Field)
            and self.name == other.name
            and self.type is other.type
        )

    def __hash__(self) -> int:
        return hash((self.name, self.type.name))

    def __repr__(self) -> str:
        return f"Field({self.name!r}, {self.type.name})"


class Schema:
    """An ordered collection of uniquely named fields."""

    __slots__ = ("_fields", "_index")

    def __init__(self, fields: Iterable[Field | tuple[str, AtomicType | str]]):
        normalized: list[Field] = []
        for field in fields:
            if isinstance(field, Field):
                normalized.append(field)
            else:
                name, atomic = field
                normalized.append(Field(name, atomic))
        self._fields = tuple(normalized)
        self._index = {field.name: pos for pos, field in enumerate(self._fields)}
        if len(self._index) != len(self._fields):
            seen: set[str] = set()
            for field in self._fields:
                if field.name in seen:
                    raise SchemaError(f"duplicate field name {field.name!r} in schema")
                seen.add(field.name)

    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(field.name for field in self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def field(self, name: str) -> Field:
        """Field by name, raising :class:`SchemaError` if absent."""
        try:
            return self._fields[self._index[name]]
        except KeyError as exc:
            raise SchemaError(
                f"no field {name!r} in schema ({', '.join(self.names)})"
            ) from exc

    def type_of(self, name: str) -> AtomicType:
        return self.field(name).type

    def position(self, name: str) -> int:
        """Ordinal position of a field."""
        try:
            return self._index[name]
        except KeyError as exc:
            raise SchemaError(
                f"no field {name!r} in schema ({', '.join(self.names)})"
            ) from exc

    def project(self, names: Iterable[str]) -> "Schema":
        """A new schema with only ``names``, in the order given."""
        return Schema([self.field(name) for name in names])

    def without(self, name: str) -> "Schema":
        """A new schema with ``name`` removed."""
        self.field(name)  # validate presence
        return Schema([field for field in self._fields if field.name != name])

    def extend(self, field: Field) -> "Schema":
        """A new schema with ``field`` appended."""
        if field.name in self._index:
            raise SchemaError(f"field {field.name!r} already exists in schema")
        return Schema([*self._fields, field])

    def rename(self, old: str, new: str) -> "Schema":
        """A new schema with one field renamed."""
        if new in self._index and new != old:
            raise SchemaError(f"cannot rename {old!r} to existing field {new!r}")
        return Schema(
            [
                Field(new, field.type) if field.name == old else field
                for field in self._fields
            ]
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._fields == other._fields

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:
        inner = ", ".join(f"{field.name}: {field.type.name}" for field in self._fields)
        return f"Schema({inner})"


class Tuple:
    """An immutable row conforming to a schema.

    Values are validated (with coercion) against the schema's field types at
    construction, so a Tuple in hand is always well typed.
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: Mapping[str, Any] | Iterable[Any]):
        self._schema = schema
        if isinstance(values, Mapping):
            missing = [name for name in schema.names if name not in values]
            if missing:
                raise SchemaError(f"tuple is missing fields: {', '.join(missing)}")
            extra = [name for name in values if name not in schema]
            if extra:
                raise SchemaError(f"tuple has unknown fields: {', '.join(extra)}")
            ordered = [values[name] for name in schema.names]
        else:
            ordered = list(values)
            if len(ordered) != len(schema):
                raise SchemaError(
                    f"tuple has {len(ordered)} values for a {len(schema)}-field schema"
                )
        coerced = []
        for field, value in zip(schema.fields, ordered):
            try:
                coerced.append(field.type.coerce(value))
            except TypeCheckError as exc:
                raise TypeCheckError(f"field {field.name!r}: {exc}") from exc
        self._values = tuple(coerced)

    @classmethod
    def trusted(cls, schema: Schema, values: Iterable[Any]) -> "Tuple":
        """Construct without validation or coercion.

        Only for values that provably already conform to ``schema`` — the
        columnar backend uses this when rebuilding rows from column arrays
        whose every element came out of a previously validated tuple.
        Anywhere the values' provenance is less airtight, use the normal
        constructor.
        """
        row = object.__new__(cls)
        row._schema = schema
        row._values = tuple(values)
        return row

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def values(self) -> tuple[Any, ...]:
        return self._values

    def __getitem__(self, name: str) -> Any:
        return self._values[self._schema.position(name)]

    def get(self, name: str, default: Any = None) -> Any:
        if name in self._schema:
            return self[name]
        return default

    def as_dict(self) -> dict[str, Any]:
        return dict(zip(self._schema.names, self._values))

    def replace(self, **changes: Any) -> "Tuple":
        """A new tuple with some fields changed."""
        data = self.as_dict()
        for name, value in changes.items():
            if name not in self._schema:
                raise SchemaError(f"no field {name!r} to replace")
            data[name] = value
        return Tuple(self._schema, data)

    def project(self, names: Iterable[str]) -> "Tuple":
        """A new tuple over the projected schema."""
        names = list(names)
        return Tuple(self._schema.project(names), [self[name] for name in names])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Tuple)
            and self._schema == other._schema
            and self._values == other._values
        )

    def __hash__(self) -> int:
        hashable = tuple(
            tuple(map(id, value)) if isinstance(value, list) else value
            for value in self._values
        )
        return hash((self._schema, hashable))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value!r}" for name, value in zip(self._schema.names, self._values)
        )
        return f"Tuple({inner})"
