"""Expression-to-numpy compilation for the columnar backend.

:func:`compile_expression` turns a typechecked query-language expression
into a closure over a :class:`~repro.dbms.columnar.ColumnBatch` that
returns one numpy array — a chain of ufunc applications instead of a
per-row ``evaluate`` walk.  Vectorizability is decided by the *same* type
judgment the static checker makes: the expression is re-checked through
:func:`repro.analyze.exprcheck.analyze_expression`, so the compiler can
never disagree with the checker about what typechecks, and anything the
checker rejects stays on the row backend.

Exactness contract — the columnar backend must produce bit-identical rows:

* Only operations whose numpy implementation provably matches the serial
  Python semantics are compiled.  ``sqrt`` is IEEE correctly-rounded in
  both; ``np.round`` is banker's rounding like Python ``round``; integer
  ``%``/``floor``/``ceil`` are exact.  The transcendentals (``exp``,
  ``ln``, ``log10``, ``sin``, ``cos``) may differ from ``math.*`` by an
  ulp, so they are *not* vectorizable — expressions using them run on the
  row backend.
* Mixed int/float comparisons are exact in Python but round the int side
  to float64 in numpy; the compiled comparison guards the magnitude and
  falls back past 2**53.  Same for int/int division.
* Data-dependent hazards (a zero divisor, a negative ``sqrt`` argument)
  raise :class:`VectorFallback` instead of erroring eagerly: the serial
  backend's ``and``/``or`` short-circuit may skip the error entirely, so
  the kernel re-evaluates that batch row-at-a-time with exact serial
  semantics (and counts it in ``columnar.fallback``).
* When the abstract interpreter (:mod:`repro.analyze.absint`) has *proved*
  a hazard impossible — the divisor's value range excludes 0, the int
  operands are bounded within 2**53, the ``sqrt`` argument is provably
  non-negative — the corresponding runtime guard is elided at compile
  time (``hazards=`` parameter, counted in ``absint.guards_elided``).
  Elision never changes results: the guard being elided is exactly the
  branch the proof shows can never be taken.

TEXT and DATE columns live at ``object`` dtype where numpy applies the
Python comparison operators elementwise — correct by construction, just
not SIMD-fast.  DRAWABLES never vectorize.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.dbms import types as T
from repro.dbms.columnar import ColumnBatch, NUMPY_DTYPES
from repro.dbms.expr import (
    Binary,
    Call,
    Conditional,
    Expr,
    FieldRef,
    Literal,
    Unary,
)
from repro.dbms.tuples import Schema

__all__ = [
    "ELIDED_COUNTER",
    "VectorFallback",
    "compile_expression",
    "compile_predicate",
    "vectorizable",
]

CompiledExpr = Callable[[ColumnBatch], np.ndarray]

#: Largest integer magnitude that float64 represents exactly; int values
#: beyond it would compare/divide differently after numpy's promotion.
_EXACT_INT = 2 ** 53

#: Canonical declaration for the guard-elision counter, incremented once
#: per guard site removed at compile time.  ``stats --check`` verifies
#: every declaration site uses the identical description.
ELIDED_COUNTER = (
    "absint.guards_elided",
    "runtime hazard guards elided from compiled kernels after a static "
    "proof",
)


def _elided_counter():
    from repro.obs.metrics import global_registry

    return global_registry().counter(*ELIDED_COUNTER)


class _NoProofs:
    """Null object for the ``hazards`` parameter: proves nothing."""

    __slots__ = ()

    def proves(self, node: Expr, kind: str) -> bool:
        return False


_NO_PROOFS = _NoProofs()


class VectorFallback(Exception):
    """A compiled kernel hit a data-dependent hazard in this batch.

    The caller must re-evaluate the batch row-at-a-time with the serial
    ``Expr.evaluate`` — that reproduces short-circuiting and the exact
    ``EvaluationError`` messages the row backend raises.
    """


class _NotVectorizable(Exception):
    """Compile-time verdict: this expression stays on the row backend."""


def _as_bool(arr: np.ndarray) -> np.ndarray:
    return np.asarray(arr, dtype=bool)


def _require_fixed(arr: np.ndarray) -> np.ndarray:
    """Reject object-dtype operands at runtime (overflowed int columns)."""
    if arr.dtype == object:
        raise VectorFallback("object-dtype column in a numeric kernel")
    return arr


def _guard_exact_int(arr: np.ndarray) -> None:
    """Fall back when int values would lose precision as float64."""
    if arr.dtype.kind in "iu" and arr.size and \
            int(np.abs(arr).max()) > _EXACT_INT:
        raise VectorFallback("int magnitude beyond exact float64 range")


# ---------------------------------------------------------------------------
# Node compilers
# ---------------------------------------------------------------------------


def _compile_literal(expr: Literal) -> CompiledExpr:
    atomic, value = expr.type, expr.value
    if atomic is T.DRAWABLES:
        raise _NotVectorizable("drawables literal")
    dtype = NUMPY_DTYPES.get(atomic)

    def constant(batch: ColumnBatch) -> np.ndarray:
        n = len(batch)
        if dtype is None:
            arr = np.empty(n, dtype=object)
            arr[:] = value
            return arr
        return np.full(n, value, dtype=dtype)

    return constant


def _compile_fieldref(expr: FieldRef, schema: Schema) -> CompiledExpr:
    if schema.type_of(expr.name) is T.DRAWABLES:
        raise _NotVectorizable("drawables column")
    name = expr.name
    return lambda batch: batch.column(name)


def _compile_unary(expr: Unary, schema: Schema, hazards: Any) -> CompiledExpr:
    inner = _compile(expr.operand, schema, hazards)
    if expr.op == "-":
        return lambda batch: np.negative(inner(batch))
    return lambda batch: np.logical_not(_as_bool(inner(batch)))


_COMPARE_UFUNCS = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}
_ARITH_UFUNCS = {"+": np.add, "-": np.subtract, "*": np.multiply}


def _compile_binary(expr: Binary, schema: Schema, hazards: Any) -> CompiledExpr:
    left = _compile(expr.left, schema, hazards)
    right = _compile(expr.right, schema, hazards)
    op = expr.op

    if op == "and":
        return lambda b: np.logical_and(_as_bool(left(b)), _as_bool(right(b)))
    if op == "or":
        return lambda b: np.logical_or(_as_bool(left(b)), _as_bool(right(b)))

    if op == "/":
        no_zero = hazards.proves(expr, "div_zero")
        exact = hazards.proves(expr, "exact_int")
        if no_zero:
            _elided_counter().inc()
        if exact:
            _elided_counter().inc()
        if no_zero and exact:
            return lambda b: np.true_divide(left(b), right(b))

        def divide(batch: ColumnBatch) -> np.ndarray:
            l, r = left(batch), right(batch)
            if not no_zero and np.any(r == 0):
                raise VectorFallback("division by zero in batch")
            if not exact and getattr(l, "dtype", None) is not None and \
                    l.dtype.kind in "iu" and r.dtype.kind in "iu":
                # Python divides the exact integers; numpy rounds each side
                # to float64 first — identical only inside the exact range.
                _guard_exact_int(l)
                _guard_exact_int(r)
            return np.true_divide(l, r)
        return divide

    if op == "%":
        if hazards.proves(expr, "div_zero"):
            _elided_counter().inc()
            return lambda b: np.mod(left(b), right(b))

        def modulo(batch: ColumnBatch) -> np.ndarray:
            l, r = left(batch), right(batch)
            if np.any(r == 0):
                raise VectorFallback("modulo by zero in batch")
            return np.mod(l, r)    # sign-of-divisor, like Python %
        return modulo

    if op in _ARITH_UFUNCS:
        ufunc = _ARITH_UFUNCS[op]
        return lambda b: ufunc(left(b), right(b))

    if op in _COMPARE_UFUNCS:
        lt, rt = expr.left.infer(schema), expr.right.infer(schema)
        mixed = {lt, rt} == {T.INT, T.FLOAT}
        if mixed and hazards.proves(expr, "exact_int"):
            _elided_counter().inc()
            mixed = False
        ufunc = _COMPARE_UFUNCS[op]

        def compare(batch: ColumnBatch) -> np.ndarray:
            l, r = left(batch), right(batch)
            if mixed:
                _guard_exact_int(l)
                _guard_exact_int(r)
            return _as_bool(ufunc(l, r))
        return compare

    # "||" — object arrays of str: np.add applies + elementwise
    return lambda b: np.add(left(b), right(b))


def _compile_conditional(
    expr: Conditional, schema: Schema, hazards: Any
) -> CompiledExpr:
    condition = _compile(expr.condition, schema, hazards)
    then_branch = _compile(expr.then_branch, schema, hazards)
    else_branch = _compile(expr.else_branch, schema, hazards)

    def choose(batch: ColumnBatch) -> np.ndarray:
        keep = _as_bool(condition(batch))
        return np.where(keep, then_branch(batch), else_branch(batch))

    return choose


def _compile_call(expr: Call, schema: Schema, hazards: Any) -> CompiledExpr:
    name = expr.fn.name
    args = [_compile(arg, schema, hazards) for arg in expr.args]

    if name == "abs":
        return lambda b: np.abs(args[0](b))
    if name == "sqrt":
        nonneg = hazards.proves(expr, "sqrt_nonneg")
        if nonneg:
            _elided_counter().inc()

        def sqrt(batch: ColumnBatch) -> np.ndarray:
            x = _require_fixed(np.asarray(args[0](batch)))
            if not nonneg and np.any(x < 0):
                raise VectorFallback("sqrt of negative value in batch")
            return np.sqrt(x.astype(np.float64, copy=False))
        return sqrt
    if name in ("floor", "ceil"):
        ufunc = np.floor if name == "floor" else np.ceil
        def to_int(batch: ColumnBatch) -> np.ndarray:
            x = _require_fixed(np.asarray(args[0](batch)))
            return ufunc(x).astype(np.int64)
        return to_int
    if name == "round":
        def round_half_even(batch: ColumnBatch) -> np.ndarray:
            x = _require_fixed(np.asarray(args[0](batch)))
            return np.round(x).astype(np.int64)    # banker's, like round()
        return round_half_even
    if name in ("min", "max"):
        arg_types = [arg.infer(schema) for arg in expr.args]
        if not all(T.numeric(at) for at in arg_types):
            raise _NotVectorizable(f"{name} over non-numeric arguments")
        ufunc = np.minimum if name == "min" else np.maximum
        def fold(batch: ColumnBatch) -> np.ndarray:
            out = args[0](batch)
            for compiled in args[1:]:
                out = ufunc(out, compiled(batch))
            return out
        return fold
    # Everything else — transcendentals (ulp-level divergence from math.*),
    # text/date functions, display constructors — stays on the row backend.
    raise _NotVectorizable(f"function {name}() is not vectorizable")


def _compile(expr: Expr, schema: Schema, hazards: Any) -> CompiledExpr:
    if isinstance(expr, Literal):
        return _compile_literal(expr)
    if isinstance(expr, FieldRef):
        return _compile_fieldref(expr, schema)
    if isinstance(expr, Unary):
        return _compile_unary(expr, schema, hazards)
    if isinstance(expr, Binary):
        return _compile_binary(expr, schema, hazards)
    if isinstance(expr, Conditional):
        return _compile_conditional(expr, schema, hazards)
    if isinstance(expr, Call):
        return _compile_call(expr, schema, hazards)
    raise _NotVectorizable(f"unknown expression node {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def _checker_accepts(expr: Expr, schema: Schema) -> bool:
    """The static checker's verdict, reused verbatim.

    The expression is rendered back to source and pushed through
    :func:`repro.analyze.exprcheck.analyze_expression` — one judgment,
    shared by the lint surface and this compiler.  (Imported lazily:
    ``repro.analyze`` sits above ``repro.dbms`` in the layer order.)
    """
    from repro.analyze.exprcheck import analyze_expression

    try:
        checked, inferred, diagnostics = analyze_expression(str(expr), schema)
    except Exception:
        return False
    return checked is not None and inferred is not None and not diagnostics


def compile_expression(
    expr: Expr, schema: Schema, *, hazards: Any = None
) -> CompiledExpr | None:
    """Compile ``expr`` to an array program, or ``None`` if not vectorizable.

    The returned callable maps a :class:`ColumnBatch` (whose schema must
    match ``schema``) to one numpy array.  It may raise
    :class:`VectorFallback` on hazardous data; see the module docstring.
    ``hazards`` is an optional proof object (duck-typed
    ``proves(node, kind) -> bool``, see
    :class:`repro.analyze.absint.HazardProofs`) whose proofs elide the
    matching runtime guards.
    """
    if not _checker_accepts(expr, schema):
        return None
    try:
        return _compile(expr, schema, hazards if hazards is not None
                        else _NO_PROOFS)
    except _NotVectorizable:
        return None


def compile_predicate(
    expr: Expr, schema: Schema, *, hazards: Any = None
) -> CompiledExpr | None:
    """Compile a boolean predicate to a mask program (or ``None``)."""
    try:
        if expr.infer(schema) is not T.BOOL:
            return None
    except Exception:
        return None
    compiled = compile_expression(expr, schema, hazards=hazards)
    if compiled is None:
        return None
    return lambda batch: _as_bool(compiled(batch))


def vectorizable(expr: Expr, schema: Schema) -> bool:
    """Would :func:`compile_expression` accept this expression?"""
    return compile_expression(expr, schema) is not None
