"""Object-relational DBMS substrate (the POSTGRES stand-in).

Typed schemas and tuples, an expression language with a parser, stored tables
with computed-attribute methods, relational algebra, indexes, a catalog of
tables/boxes/programs, JSON persistence, and the Section-8 update machinery.
"""

from repro.dbms.algebra import (
    distinct,
    group_by,
    join,
    join_hash,
    join_nested_loop,
    join_theta,
    limit,
    order_by,
    project,
    rename,
    restrict,
    restrict_predicate,
    sample,
    union,
)
from repro.dbms.catalog import Database
from repro.dbms.expr import (
    Binary,
    Call,
    Conditional,
    Expr,
    FieldRef,
    FunctionDef,
    Literal,
    Unary,
    register_function,
)
from repro.dbms.index import HashIndex, SortedIndex
from repro.dbms.parser import parse_expression, parse_predicate
from repro.dbms.relation import Method, MethodSet, RowSet, Table, VirtualRow
from repro.dbms.storage import (
    dump_database,
    load_database,
    load_database_file,
    save_database_file,
)
from repro.dbms.tuples import Field, Schema, Tuple
from repro.dbms.types import (
    BOOL,
    DATE,
    DRAWABLES,
    FLOAT,
    INT,
    TEXT,
    AtomicType,
    infer_type,
    type_by_name,
)
from repro.dbms.update import ScriptedDialog, UpdateDialog, UpdateResult, generic_update

__all__ = [
    "AtomicType",
    "BOOL",
    "Binary",
    "Call",
    "Conditional",
    "DATE",
    "DRAWABLES",
    "Database",
    "Expr",
    "Field",
    "FieldRef",
    "FLOAT",
    "FunctionDef",
    "HashIndex",
    "INT",
    "Literal",
    "Method",
    "MethodSet",
    "RowSet",
    "Schema",
    "ScriptedDialog",
    "SortedIndex",
    "TEXT",
    "Table",
    "Tuple",
    "Unary",
    "UpdateDialog",
    "UpdateResult",
    "VirtualRow",
    "distinct",
    "dump_database",
    "generic_update",
    "group_by",
    "infer_type",
    "join",
    "join_hash",
    "join_nested_loop",
    "join_theta",
    "limit",
    "load_database",
    "load_database_file",
    "order_by",
    "parse_expression",
    "parse_predicate",
    "project",
    "register_function",
    "rename",
    "restrict",
    "restrict_predicate",
    "sample",
    "save_database_file",
    "type_by_name",
    "union",
]
