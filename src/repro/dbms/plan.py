"""Streaming physical-plan IR: instrumented Volcano-style operator nodes.

The paper defers the performance story of browsing queries to a companion
work (§9); its essence is that evaluation must be lazy so only the demanded
path fires.  This module is the compile target that makes that real: every
relational operation is a :class:`PlanNode` following the classic iterator
protocol — ``open()`` begins one execution and yields *batches* of tuples,
``close()`` releases per-execution state — and tuples stream through a tree
of such nodes one at a time.  Pipeline-breaking operators (sort, hash build,
group-by, distinct) materialize only their own working state; everything
else holds O(1) rows.

Three things distinguish this IR from a plain generator pipeline:

* **Instrumentation.**  Every node carries a :class:`NodeStats` with rows
  in/out, batch and open counts, wall time, peak buffered rows, and free-form
  notes (e.g. the hash-join degradation warning).  :meth:`PlanNode.explain`
  renders the operator tree with those counters — the EXPLAIN story.
* **Re-execution.**  Nodes hold declarative configuration, not iterator
  state; each ``open()`` starts a fresh execution, so one plan can be run,
  inspected, and run again.
* **Memo boundaries.**  :class:`LazyRowSet` is a drop-in
  :class:`~repro.dbms.relation.RowSet` whose rows are produced by a plan on
  first demand and buffered incrementally — the dataflow engine's memoized
  box outputs are exactly these, so a chain of boxes streams end to end and
  each boundary buffers only its own output (O(output), not O(input)).
  :class:`CacheNode` re-enters a LazyRowSet as a plan leaf, sharing its
  buffer among any number of downstream consumers.

The list-in/list-out functions in :mod:`repro.dbms.algebra` are thin
wrappers over these nodes, so the public algebra API is unchanged.
"""

from __future__ import annotations

import random
from itertools import chain, islice
from time import perf_counter
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.dbms import types as T
from repro.dbms.columnar import (
    ColumnBatch,
    DEFAULT_BATCH_ROWS,
    NUMPY_DTYPES,
    _object_array,
    cached_batch,
)
from repro.dbms.expr import Expr
from repro.dbms.expr_compile import VectorFallback, compile_predicate
from repro.dbms.parser import parse_predicate
from repro.dbms.relation import RowSet
from repro.dbms.tuples import Field, Schema, Tuple
from repro.errors import EvaluationError, SchemaError, TypeCheckError
from repro.obs.lineage import LineageStore, active_lineage
from repro.obs.metrics import global_registry
from repro.obs.trace import current_tracer

__all__ = [
    "BATCH_SIZE",
    "NodeStats",
    "PlanNode",
    "ScanNode",
    "CacheNode",
    "ProjectNode",
    "RestrictNode",
    "SampleNode",
    "NestedLoopJoinNode",
    "HashJoinNode",
    "ThetaJoinNode",
    "CrossProductNode",
    "OrderByNode",
    "DistinctNode",
    "LimitNode",
    "UnionNode",
    "RenameNode",
    "GroupByNode",
    "LazyRowSet",
    "source_plan",
    "explain_plan",
    "joined_schema",
    "concat_rows",
    "AGGREGATES",
    "set_plan_verifier",
    "plan_verifier",
    "set_plan_annotator",
    "plan_annotator",
    "EFFECT_PURE",
    "EFFECT_SOURCE",
    "EFFECT_RNG",
    "EFFECT_STATEFUL",
    "EFFECT_BLOCKING",
    "EFFECT_ADAPTER",
    "EFFECT_PARALLEL",
    "NODE_EFFECTS",
    "declare_effect",
    "declared_effect",
    "ColumnarNode",
    "ToColumnsNode",
    "ToRowsNode",
    "ColumnarRestrictNode",
    "ColumnarProjectNode",
    "ColumnarRenameNode",
    "ColumnarLimitNode",
    "ColumnarDistinctNode",
    "ColumnarOrderByNode",
    "ColumnarGroupByNode",
    "ColumnarHashJoinNode",
]

BATCH_SIZE = 256
"""Rows per batch yielded by ``open()``.  Small enough that early-exit
consumers (Limit, a zoomed-in viewer) pull little more than they need,
large enough to amortize per-batch accounting."""

#: Optional verification hook run on every ``PlanNode.open()`` and after
#: plan rewrites.  ``repro.analyze.planverify.install_from_env`` installs
#: the invariant verifier here when ``REPRO_PLAN_VERIFY=1``.
_VERIFY_HOOK: Callable[["PlanNode"], None] | None = None


def set_plan_verifier(hook: Callable[["PlanNode"], None] | None) -> None:
    """Install (or clear, with ``None``) the plan verification hook."""
    global _VERIFY_HOOK
    _VERIFY_HOOK = hook


def plan_verifier() -> Callable[["PlanNode"], None] | None:
    """The installed verification hook, if any."""
    return _VERIFY_HOOK


#: Optional abstract-interpretation hook consulted when predicate-bearing
#: nodes compile their kernels.  ``repro.analyze.absint`` installs
#: ``prove_plan_predicate`` here (``REPRO_ABSINT=1`` or
#: ``set_absint_enabled``); the hook maps ``(predicate, child_node)`` to a
#: proof object consumed by ``expr_compile.compile_predicate(hazards=...)``.
_ABSINT_HOOK: Callable[[Expr, "PlanNode"], Any] | None = None


def set_plan_annotator(hook: Callable[[Expr, "PlanNode"], Any] | None) -> None:
    """Install (or clear, with ``None``) the plan annotation hook."""
    global _ABSINT_HOOK
    _ABSINT_HOOK = hook


def plan_annotator() -> Callable[[Expr, "PlanNode"], Any] | None:
    """The installed annotation hook, if any."""
    return _ABSINT_HOOK


# ---------------------------------------------------------------------------
# Declared effects: what each operator may do besides mapping rows to rows.
# The parallelizer and the plan verifier key off this table — a node class
# with no declared effect is never parallelized and fails the static race
# lint (T2-E112) if found inside a parallel region.
# ---------------------------------------------------------------------------

#: Pure per-row function of its input: safe to run on any morsel in any
#: worker, results merged by concatenation.
EFFECT_PURE = "pure"
#: Produces rows from storage/buffers without consuming plan input.
EFFECT_SOURCE = "source"
#: Draws from a random number generator (reproducible only when seeded).
EFFECT_RNG = "rng"
#: Carries cross-row mutable state (e.g. a countdown) — order-sensitive.
EFFECT_STATEFUL = "stateful"
#: Pipeline breaker: must see its whole input before emitting.
EFFECT_BLOCKING = "blocking"
#: Backend adapter: changes representation, not contents.
EFFECT_ADAPTER = "adapter"
#: A parallel region operator itself (owns its own worker coordination).
EFFECT_PARALLEL = "parallel"

#: Exact-class effect declarations (subclasses deliberately do NOT inherit:
#: an undeclared subclass may override ``_produce`` with arbitrary
#: behavior, so it gets no effect — and therefore no parallelization).
NODE_EFFECTS: dict[type, str] = {}


def declare_effect(cls: type, effect: str) -> type:
    """Register ``cls``'s declared effect (last declaration wins)."""
    NODE_EFFECTS[cls] = effect
    return cls


def declared_effect(node_or_cls: Any) -> str | None:
    """The declared effect for a node (or node class), exact-class lookup."""
    cls = node_or_cls if isinstance(node_or_cls, type) else type(node_or_cls)
    return NODE_EFFECTS.get(cls)


def _lineage_store(node: "PlanNode") -> LineageStore | None:
    """The node's lineage store for the active capture, or None.

    One module-global read when capture is off — the whole disabled cost.
    A node keeps its store across executions *within* one capture (counters
    and the EXPLAIN annotation accumulate); a new capture replaces it, so
    stores never grow across unrelated captures.
    """
    state = active_lineage()
    if state is None:
        return None
    store = node.lineage
    if store is None or store.state is not state:
        store = node.lineage = LineageStore(state)
    return store


class NodeStats:
    """Per-operator execution counters, cumulative across opens."""

    __slots__ = (
        "rows_in", "rows_out", "batches", "wall_s", "opens",
        "rows_buffered", "notes",
    )

    def __init__(self) -> None:
        self.rows_in = 0
        self.rows_out = 0
        self.batches = 0
        self.wall_s = 0.0
        self.opens = 0
        self.rows_buffered = 0
        self.notes: list[str] = []

    def note(self, message: str) -> None:
        """Record a warning once (repeat notes are collapsed)."""
        if message not in self.notes:
            self.notes.append(message)

    def summary(self) -> str:
        parts = [f"in={self.rows_in}", f"out={self.rows_out}",
                 f"batches={self.batches}"]
        if self.rows_buffered:
            parts.append(f"buffered={self.rows_buffered}")
        if self.opens != 1:
            parts.append(f"opens={self.opens}")
        parts.append(f"{self.wall_s * 1000.0:.1f}ms")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"NodeStats({self.summary()})"


class PlanNode:
    """A physical operator: children, an output schema, and counters.

    Subclasses implement :meth:`_produce`, a generator over output rows;
    the base class wraps it into the batch protocol and maintains stats.
    Wall time is *inclusive* of children (it measures time spent producing
    this node's rows, wherever it went).
    """

    label = "Plan"

    #: Which execution backend the node runs on; the columnar kernels
    #: override this.  Surfaced per node through ``explain``/``explain_data``.
    backend = "row"

    #: Backward-lineage mappings recorded by the most recent capture, or
    #: None.  Identity-breaking operators populate this via
    #: :func:`_lineage_store` while a capture is active; the why-provenance
    #: walk (``repro.obs.lineage``) reads it.
    lineage: LineageStore | None = None

    def __init__(self, children: Sequence["PlanNode"], schema: Schema):
        self._children = tuple(children)
        self._schema = schema
        self.stats = NodeStats()

    # -- protocol ---------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> tuple["PlanNode", ...]:
        return self._children

    def open(self) -> Iterator[list[Tuple]]:
        """Begin one execution, yielding batches of rows.

        Every call starts a fresh execution; counters accumulate across
        executions (``stats.opens`` tells them apart).

        When a plan verifier is installed (``REPRO_PLAN_VERIFY=1``), the
        subtree's invariants are re-checked before any row is produced.
        """
        if _VERIFY_HOOK is not None:
            _VERIFY_HOOK(self)
        self.stats.opens += 1
        return self._batches()

    def close(self) -> None:
        """Release per-execution state (the base class holds none; buffered
        generators are finalized when their iterator is dropped)."""

    def _batches(self) -> Iterator[list[Tuple]]:
        tracer = current_tracer()
        if tracer.enabled:
            return self._batches_traced(tracer)
        return self._batches_plain()

    def _batches_plain(self) -> Iterator[list[Tuple]]:
        produced = self._produce()
        try:
            while True:
                start = perf_counter()
                batch = list(islice(produced, BATCH_SIZE))
                self.stats.wall_s += perf_counter() - start
                if not batch:
                    break
                self.stats.batches += 1
                self.stats.rows_out += len(batch)
                yield batch
        finally:
            produced.close()
            self.close()

    def _batches_traced(self, tracer) -> Iterator[list[Tuple]]:
        """One ``plan.node`` span per execution, open from first pull to
        exhaustion (inclusive of consumer interleave); children's spans nest
        because their rows are pulled while this span is open.  Row counts
        for *this* execution are attached at close."""
        stats = self.stats
        rows_in_before = stats.rows_in
        rows_out_before = stats.rows_out
        span = tracer.span("plan.node", op=self.label, desc=self.describe())
        span.__enter__()
        try:
            yield from self._batches_plain()
        finally:
            span.set(
                rows_in=stats.rows_in - rows_in_before,
                rows_out=stats.rows_out - rows_out_before,
                opens=stats.opens,
            )
            span.__exit__(None, None, None)

    def rows_iter(self) -> Iterator[Tuple]:
        """Row-at-a-time view of one execution."""
        for batch in self.open():
            yield from batch

    def execute(self) -> RowSet:
        """Run the plan to completion and materialize a RowSet."""
        return RowSet(self._schema, self.rows_iter())

    # -- helpers for subclasses -------------------------------------------

    def _produce(self) -> Iterator[Tuple]:
        raise NotImplementedError

    def _pull(self, child: "PlanNode") -> Iterator[Tuple]:
        """Stream a child's rows, counting them as this node's input."""
        stats = self.stats
        for row in child.rows_iter():
            stats.rows_in += 1
            yield row

    def _buffered(self, rows: Sequence[Any] | int) -> None:
        """Record pipeline-breaker state size (peak across executions)."""
        count = rows if isinstance(rows, int) else len(rows)
        if count > self.stats.rows_buffered:
            self.stats.rows_buffered = count

    # -- description ------------------------------------------------------

    def describe(self) -> str:
        """One-line operator description (without stats)."""
        return self.label

    def explain(self, with_stats: bool = True) -> str:
        """Render this subtree as an indented operator tree."""
        return explain_plan(self, with_stats=with_stats)

    def __repr__(self) -> str:
        return f"<{self.describe()} {self.stats.summary()}>"


def _clip(text: str, limit: int = 72) -> str:
    return text if len(text) <= limit else text[: limit - 1] + "…"


def explain_plan(node: PlanNode, with_stats: bool = True) -> str:
    """Format a plan tree, one operator per line, with per-node counters."""
    lines: list[str] = []

    def walk(current: PlanNode, prefix: str, tail: str) -> None:
        line = tail + _clip(current.describe())
        if getattr(current, "backend", "row") != "row":
            line += " <columnar>"
        proof = getattr(current, "proof", None)
        if proof:
            line += f" proof={_clip(proof, 64)}"
        store = current.lineage
        if store is not None and len(store):
            line += f" lineage={len(store)}"
        if with_stats:
            line += f"  [{current.stats.summary()}]"
        lines.append(line)
        for warning in current.stats.notes:
            lines.append(prefix + "  ! " + warning)
        kids = current.children
        for pos, child in enumerate(kids):
            last = pos == len(kids) - 1
            walk(child,
                 prefix + ("   " if last else "│  "),
                 prefix + ("└─ " if last else "├─ "))

    walk(node, "", "")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Shared relational helpers (also re-exported through repro.dbms.algebra)
# ---------------------------------------------------------------------------


def joined_schema(left: Schema, right: Schema) -> tuple[Schema, dict[str, str]]:
    """Concatenate schemas, renaming right-side collisions to ``right_<name>``."""
    renames: dict[str, str] = {}
    fields: list[Field] = list(left.fields)
    taken = set(left.names)
    for field in right.fields:
        name = field.name
        if name in taken:
            candidate = f"right_{name}"
            suffix = 2
            while candidate in taken:
                candidate = f"right_{name}_{suffix}"
                suffix += 1
            renames[name] = candidate
            name = candidate
        taken.add(name)
        fields.append(Field(name, field.type))
    return Schema(fields), renames


def concat_rows(schema: Schema, left_row: Tuple, right_row: Tuple) -> Tuple:
    return Tuple(schema, [*left_row.values, *right_row.values])


# Aggregate semantics — the single contract BOTH backends implement
# (locked by tests/test_aggregate_semantics.py):
#
#   * ``count`` of an empty group is 0; ``sum`` of an empty group is the
#     additive identity ``0`` (an int — coerced to 0.0 for a FLOAT output
#     field by Tuple construction).
#   * ``avg``/``min``/``max`` over an empty group raise
#     ``EvaluationError("<agg> over an empty group")`` — the type system
#     has no NULL to return, and silently inventing a value would be worse.
#     (There are likewise no all-None groups: every Tuple value is
#     validated non-None at construction.)
#   * ``sum``/``avg`` fold left-to-right in input order.  IEEE float
#     addition is not associative, so this order is part of the contract;
#     the columnar GroupBy kernel reproduces the same sequential fold
#     (``np.bincount`` weight accumulation), never a pairwise reduction.
#
# GroupBy can never *produce* an empty group (a group exists only because a
# row created it), so the empty-group errors surface only through direct
# ``AGGREGATES[...]`` use — they are pinned here so both backends would
# still agree if an outer-join-style extension ever yielded empty groups.


def _agg_count(values: list[Any]) -> int:
    return len(values)


def _agg_sum(values: list[Any]) -> Any:
    """Left-to-right fold; 0 (the additive identity) for an empty group."""
    return sum(values) if values else 0


def _agg_avg(values: list[Any]) -> float:
    """Left-to-right sum divided by count; errors on an empty group."""
    if not values:
        raise EvaluationError("avg over an empty group")
    return sum(values) / len(values)


def _agg_min(values: list[Any]) -> Any:
    if not values:
        raise EvaluationError("min over an empty group")
    return min(values)


def _agg_max(values: list[Any]) -> Any:
    if not values:
        raise EvaluationError("max over an empty group")
    return max(values)


AGGREGATES: dict[str, Callable[[list[Any]], Any]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
}

_AGG_RESULT_TYPE = {"count": T.INT, "avg": T.FLOAT}


def _groupby_output_schema(
    schema: Schema,
    keys: Sequence[str],
    aggregations: Sequence[tuple[str, str, str]],
) -> Schema:
    """Validate a GroupBy spec and derive its output schema.

    Shared by the row and columnar GroupBy operators so the two backends
    can never diverge on typing rules or output field order."""
    for key in keys:
        schema.field(key)
    out_fields: list[Field] = [schema.field(key) for key in keys]
    for agg_name, field, output_name in aggregations:
        if agg_name not in AGGREGATES:
            raise EvaluationError(
                f"unknown aggregate {agg_name!r}; "
                f"known: {', '.join(sorted(AGGREGATES))}"
            )
        source_type = schema.type_of(field)
        if agg_name in ("sum", "avg") and not T.numeric(source_type):
            raise TypeCheckError(
                f"{agg_name} requires a numeric field, {field!r} is {source_type}"
            )
        result_type = _AGG_RESULT_TYPE.get(agg_name, source_type)
        if agg_name == "sum" and source_type is T.FLOAT:
            result_type = T.FLOAT
        out_fields.append(Field(output_name, result_type))
    return Schema(out_fields)


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class ScanNode(PlanNode):
    """Leaf over an in-memory row source (a RowSet or a tuple sequence)."""

    label = "Scan"

    def __init__(
        self,
        source: RowSet | Sequence[Tuple],
        schema: Schema | None = None,
        name: str | None = None,
    ):
        if schema is None:
            if not isinstance(source, RowSet):
                raise SchemaError("ScanNode over a plain sequence needs a schema")
            schema = source.schema
        super().__init__((), schema)
        self._source = source
        self._name = name

    def _produce(self) -> Iterator[Tuple]:
        stats = self.stats
        for row in self._source:
            stats.rows_in += 1
            yield row

    def describe(self) -> str:
        return f"Scan[{self._name}]" if self._name else "Scan"


class CacheNode(PlanNode):
    """Leaf re-entering a :class:`LazyRowSet` — a memoization boundary.

    Streams through the lazy set's shared buffer, so the upstream plan runs
    at most once no matter how many consumers pull through this node.  The
    upstream plan appears as a child purely for EXPLAIN continuity; rows are
    never pulled from it directly.
    """

    label = "Cache"

    def __init__(self, source: "LazyRowSet"):
        super().__init__((source.plan,), source.schema)
        self._source = source

    def _produce(self) -> Iterator[Tuple]:
        stats = self.stats
        source = self._source
        try:
            for row in source.stream():
                stats.rows_in += 1
                yield row
        finally:
            self._buffered(source.buffered_rows())

    def describe(self) -> str:
        label = self._source.label
        state = "hot" if self._source.is_materialized else "cold"
        return f"Cache[{label}, {state}]" if label else f"Cache[{state}]"


# ---------------------------------------------------------------------------
# Streaming unary operators
# ---------------------------------------------------------------------------


class ProjectNode(PlanNode):
    """Keep named fields; preserves duplicates (bag semantics)."""

    label = "Project"

    def __init__(self, child: PlanNode, names: Sequence[str]):
        if not names:
            raise SchemaError("projection requires at least one field")
        self._names = list(names)
        super().__init__((child,), child.schema.project(self._names))

    def _produce(self) -> Iterator[Tuple]:
        names = self._names
        store = _lineage_store(self)
        if store is None:
            for row in self._pull(self._children[0]):
                yield row.project(names)
            return
        for row in self._pull(self._children[0]):
            out = row.project(names)
            store.record(out, (row,))
            yield out

    def describe(self) -> str:
        return f"Project[{', '.join(self._names)}]"


class RestrictNode(PlanNode):
    """Keep rows satisfying a type-checked boolean predicate."""

    label = "Restrict"

    def __init__(self, child: PlanNode, predicate: Expr, alias: str | None = None):
        result_type = predicate.infer(child.schema)
        if result_type is not T.BOOL:
            raise TypeCheckError(
                f"restrict predicate has type {result_type}, want bool"
            )
        super().__init__((child,), child.schema)
        self.predicate = predicate
        self.alias = alias

    def _produce(self) -> Iterator[Tuple]:
        predicate = self.predicate
        for row in self._pull(self._children[0]):
            if predicate.evaluate(row):
                yield row

    def describe(self) -> str:
        text = _clip(str(self.predicate), 56)
        if self.alias:
            return f"Restrict[{self.alias}: {text}]"
        return f"Restrict[{text}]"


class SampleNode(PlanNode):
    """Bernoulli sample (§4.2); a seed makes each execution reproducible."""

    label = "Sample"

    def __init__(self, child: PlanNode, probability: float, seed: int | None = None):
        if not 0.0 <= probability <= 1.0:
            raise EvaluationError(
                f"sample probability must be in [0, 1], got {probability}"
            )
        super().__init__((child,), child.schema)
        self._probability = probability
        self._seed = seed

    def _produce(self) -> Iterator[Tuple]:
        rng = random.Random(self._seed)
        probability = self._probability
        for row in self._pull(self._children[0]):
            if rng.random() < probability:
                yield row

    def describe(self) -> str:
        if self._seed is None:
            return f"Sample[p={self._probability}]"
        return f"Sample[p={self._probability}, seed={self._seed}]"


class RenameNode(PlanNode):
    """Rename a single field."""

    label = "Rename"

    def __init__(self, child: PlanNode, old: str, new: str):
        super().__init__((child,), child.schema.rename(old, new))
        self._old = old
        self._new = new

    def _produce(self) -> Iterator[Tuple]:
        schema = self._schema
        store = _lineage_store(self)
        if store is None:
            for row in self._pull(self._children[0]):
                yield Tuple(schema, row.values)
            return
        for row in self._pull(self._children[0]):
            out = Tuple(schema, row.values)
            store.record(out, (row,))
            yield out

    @property
    def mapping(self) -> tuple[str, str]:
        return (self._old, self._new)

    def describe(self) -> str:
        return f"Rename[{self._old} -> {self._new}]"


class LimitNode(PlanNode):
    """Keep the first ``count`` rows; stops pulling upstream once satisfied."""

    label = "Limit"

    def __init__(self, child: PlanNode, count: int):
        if count < 0:
            raise EvaluationError(f"limit must be non-negative, got {count}")
        super().__init__((child,), child.schema)
        self._count = count

    def _produce(self) -> Iterator[Tuple]:
        remaining = self._count
        if remaining == 0:
            return
        for row in self._pull(self._children[0]):
            yield row
            remaining -= 1
            if remaining == 0:
                return

    def describe(self) -> str:
        return f"Limit[{self._count}]"


# ---------------------------------------------------------------------------
# Pipeline breakers
# ---------------------------------------------------------------------------


class OrderByNode(PlanNode):
    """Stable sort by one or more fields; buffers its input."""

    label = "OrderBy"

    def __init__(self, child: PlanNode, names: Sequence[str],
                 descending: bool = False):
        for name in names:
            child.schema.field(name)
        super().__init__((child,), child.schema)
        self._names = list(names)
        self._descending = descending

    def _produce(self) -> Iterator[Tuple]:
        names = self._names
        rows = list(self._pull(self._children[0]))
        self._buffered(rows)
        rows.sort(key=lambda row: tuple(row[name] for name in names),
                  reverse=self._descending)
        yield from rows

    def describe(self) -> str:
        direction = " desc" if self._descending else ""
        return f"OrderBy[{', '.join(self._names)}{direction}]"


class DistinctNode(PlanNode):
    """Drop duplicate rows, first occurrence wins; buffers the seen set."""

    label = "Distinct"

    def __init__(self, child: PlanNode):
        super().__init__((child,), child.schema)

    def _produce(self) -> Iterator[Tuple]:
        seen: set[Tuple] = set()
        try:
            for row in self._pull(self._children[0]):
                if row not in seen:
                    seen.add(row)
                    yield row
        finally:
            self._buffered(seen)

    def describe(self) -> str:
        return "Distinct"


class GroupByNode(PlanNode):
    """Group by key fields and aggregate; buffers the groups.

    ``aggregations`` is a sequence of ``(agg_name, field, output_name)``
    with ``agg_name`` one of count/sum/avg/min/max.
    """

    label = "GroupBy"

    def __init__(
        self,
        child: PlanNode,
        keys: Sequence[str],
        aggregations: Sequence[tuple[str, str, str]],
    ):
        out_schema = _groupby_output_schema(child.schema, keys, aggregations)
        super().__init__((child,), out_schema)
        self._keys = list(keys)
        self._aggregations = [tuple(spec) for spec in aggregations]

    def _produce(self) -> Iterator[Tuple]:
        keys = self._keys
        groups: dict[tuple[Any, ...], list[Tuple]] = {}
        total = 0
        for row in self._pull(self._children[0]):
            groups.setdefault(tuple(row[key] for key in keys), []).append(row)
            total += 1
        if total > self.stats.rows_buffered:
            self.stats.rows_buffered = total
        out_schema = self._schema
        store = _lineage_store(self)
        for key_values, members in groups.items():
            values: list[Any] = list(key_values)
            for agg_name, field, __ in self._aggregations:
                column = [member[field] for member in members]
                values.append(AGGREGATES[agg_name](column))
            out = Tuple(out_schema, values)
            if store is not None:
                store.record(out, tuple(members))
            yield out

    def describe(self) -> str:
        aggs = ", ".join(
            f"{agg}({field})->{out}" for agg, field, out in self._aggregations
        )
        return f"GroupBy[{', '.join(self._keys)}; {aggs}]"


# ---------------------------------------------------------------------------
# Binary operators
# ---------------------------------------------------------------------------


class UnionNode(PlanNode):
    """Bag union of two schema-identical inputs; fully streaming."""

    label = "Union"

    def __init__(self, left: PlanNode, right: PlanNode):
        if left.schema != right.schema:
            raise SchemaError(
                f"union requires identical schemas, got {left.schema!r} "
                f"and {right.schema!r}"
            )
        super().__init__((left, right), left.schema)

    def _produce(self) -> Iterator[Tuple]:
        store = _lineage_store(self)
        if store is None:
            yield from self._pull(self._children[0])
            yield from self._pull(self._children[1])
            return
        # Rows pass through unchanged, but the walk needs to know which
        # child a row streamed from — the tag records the child index.
        for side in (0, 1):
            for row in self._pull(self._children[side]):
                store.record(row, (row,), tag=side)
                yield row

    def describe(self) -> str:
        return "Union"


def _check_join_keys(
    left: Schema, right: Schema, left_key: str, right_key: str
) -> None:
    left_type = left.type_of(left_key)
    right_type = right.type_of(right_key)
    compatible = left_type is right_type or (
        T.numeric(left_type) and T.numeric(right_type)
    )
    if not compatible:
        raise TypeCheckError(
            f"join keys {left_key!r} ({left_type}) and {right_key!r} "
            f"({right_type}) have incompatible types"
        )


class CrossProductNode(PlanNode):
    """Cartesian product; buffers the right input, streams the left."""

    label = "CrossProduct"

    def __init__(self, left: PlanNode, right: PlanNode):
        schema, __ = joined_schema(left.schema, right.schema)
        super().__init__((left, right), schema)

    def _produce(self) -> Iterator[Tuple]:
        schema = self._schema
        store = _lineage_store(self)
        right_rows = list(self._pull(self._children[1]))
        self._buffered(right_rows)
        for lrow in self._pull(self._children[0]):
            for rrow in right_rows:
                out = concat_rows(schema, lrow, rrow)
                if store is not None:
                    store.record(out, (lrow, rrow))
                yield out

    def describe(self) -> str:
        return "CrossProduct"


class NestedLoopJoinNode(PlanNode):
    """Equi-join by nested loops — the O(n*m) baseline strategy."""

    label = "NestedLoopJoin"

    def __init__(self, left: PlanNode, right: PlanNode,
                 left_key: str, right_key: str):
        _check_join_keys(left.schema, right.schema, left_key, right_key)
        schema, __ = joined_schema(left.schema, right.schema)
        super().__init__((left, right), schema)
        self._left_key = left_key
        self._right_key = right_key

    def _produce(self) -> Iterator[Tuple]:
        schema = self._schema
        store = _lineage_store(self)
        left_key, right_key = self._left_key, self._right_key
        right_rows = list(self._pull(self._children[1]))
        self._buffered(right_rows)
        for lrow in self._pull(self._children[0]):
            key = lrow[left_key]
            for rrow in right_rows:
                if rrow[right_key] == key:
                    out = concat_rows(schema, lrow, rrow)
                    if store is not None:
                        store.record(out, (lrow, rrow))
                    yield out

    def describe(self) -> str:
        return f"NestedLoopJoin[{self._left_key} = {self._right_key}]"


class HashJoinNode(PlanNode):
    """Equi-join hashing the right input — the production strategy.

    Non-hashable key values (e.g. drawable lists) cannot poison the stream:
    the build side degrades to a plain scan list and probing falls back to
    nested loops, with the degradation recorded in ``stats.notes`` instead
    of a ``TypeError`` escaping mid-iteration.
    """

    label = "HashJoin"

    _DEGRADED_BUILD = (
        "hash join degraded to nested-loop: non-hashable key value in "
        "the build (right) input"
    )
    _DEGRADED_PROBE = (
        "hash join probed with a non-hashable key value; scanned the "
        "build side for those rows"
    )

    def __init__(self, left: PlanNode, right: PlanNode,
                 left_key: str, right_key: str):
        _check_join_keys(left.schema, right.schema, left_key, right_key)
        schema, __ = joined_schema(left.schema, right.schema)
        super().__init__((left, right), schema)
        self._left_key = left_key
        self._right_key = right_key

    def _produce(self) -> Iterator[Tuple]:
        schema = self._schema
        store = _lineage_store(self)
        left_key, right_key = self._left_key, self._right_key

        right_rows: list[Tuple] = []
        buckets: dict[Any, list[Tuple]] | None = {}
        for rrow in self._pull(self._children[1]):
            right_rows.append(rrow)
            if buckets is not None:
                try:
                    buckets.setdefault(rrow[right_key], []).append(rrow)
                except TypeError:
                    buckets = None
                    self.stats.note(self._DEGRADED_BUILD)
        self._buffered(right_rows)

        if buckets is None:
            for lrow in self._pull(self._children[0]):
                key = lrow[left_key]
                for rrow in right_rows:
                    if rrow[right_key] == key:
                        out = concat_rows(schema, lrow, rrow)
                        if store is not None:
                            store.record(out, (lrow, rrow))
                        yield out
            return

        for lrow in self._pull(self._children[0]):
            key = lrow[left_key]
            try:
                matches: Iterable[Tuple] = buckets.get(key, ())
            except TypeError:
                self.stats.note(self._DEGRADED_PROBE)
                matches = [r for r in right_rows if r[right_key] == key]
            for rrow in matches:
                out = concat_rows(schema, lrow, rrow)
                if store is not None:
                    store.record(out, (lrow, rrow))
                yield out

    def describe(self) -> str:
        return f"HashJoin[{self._left_key} = {self._right_key}]"


class ThetaJoinNode(PlanNode):
    """General join filtered by a predicate over the concatenated schema.

    Right-side fields whose names collide are addressed as ``right_<name>``.
    """

    label = "ThetaJoin"

    def __init__(self, left: PlanNode, right: PlanNode, predicate_source: str):
        schema, __ = joined_schema(left.schema, right.schema)
        predicate = parse_predicate(predicate_source, schema)
        super().__init__((left, right), schema)
        self.predicate = predicate
        self._source = predicate_source

    def _produce(self) -> Iterator[Tuple]:
        schema = self._schema
        predicate = self.predicate
        store = _lineage_store(self)
        right_rows = list(self._pull(self._children[1]))
        self._buffered(right_rows)
        for lrow in self._pull(self._children[0]):
            for rrow in right_rows:
                joined = concat_rows(schema, lrow, rrow)
                if predicate.evaluate(joined):
                    if store is not None:
                        store.record(joined, (lrow, rrow))
                    yield joined

    def describe(self) -> str:
        return f"ThetaJoin[{_clip(self._source, 56)}]"


# ---------------------------------------------------------------------------
# Lazy row sets: the engine's memoization boundary
# ---------------------------------------------------------------------------


class LazyRowSet(RowSet):
    """A RowSet whose rows are produced by a plan on first demand.

    Fully API-compatible with :class:`RowSet` — iteration, ``len``,
    indexing, equality all work — but the underlying plan executes at most
    once, incrementally: :meth:`stream` serves rows from a shared buffer and
    advances the plan only past the buffered frontier, so N concurrent
    consumers (fan-out edges, re-demanded outputs, a downstream
    :class:`CacheNode`) cost one execution and one buffer.

    An error raised mid-stream is remembered and re-raised on every later
    demand; a half-buffered result can never silently pose as complete.
    """

    __slots__ = ("_plan", "_buffer", "_iter", "_done", "_error", "_forced",
                 "label", "cache_status")

    def __init__(self, plan: PlanNode, label: str | None = None):
        # Deliberately no super().__init__: the parent would materialize.
        self._schema = plan.schema
        self._plan = plan
        self._buffer: list[Tuple] = []
        self._iter: Iterator[Tuple] | None = None
        self._done = False
        self._error: BaseException | None = None
        self._forced: tuple[Tuple, ...] | None = None
        self.label = label
        # "hit" / "miss" when the result cache was consulted; None otherwise.
        self.cache_status: str | None = None

    # -- laziness ---------------------------------------------------------

    @property
    def plan(self) -> PlanNode:
        return self._plan

    @property
    def is_materialized(self) -> bool:
        return self._forced is not None

    def buffered_rows(self) -> int:
        return len(self._buffer)

    def stream(self) -> Iterator[Tuple]:
        """Yield rows, sharing one plan execution among all consumers."""
        pos = 0
        while True:
            buffer = self._buffer
            while pos < len(buffer):
                yield buffer[pos]
                pos += 1
            if self._done:
                return
            self._advance()

    def _advance(self) -> None:
        if self._error is not None:
            raise self._error
        if self._iter is None:
            self._iter = self._plan.rows_iter()
        try:
            self._buffer.append(next(self._iter))
        except StopIteration:
            self._done = True
            self._iter = None
        except Exception as exc:
            self._error = exc
            self._iter = None
            raise

    def force(self) -> tuple[Tuple, ...]:
        """Run the plan to completion; further demands are free."""
        if self._forced is None:
            for __ in self.stream():
                pass
            self._forced = tuple(self._buffer)
        return self._forced

    @property
    def has_started(self) -> bool:
        """True once any plan execution has begun (or finished)."""
        return (
            self._iter is not None
            or self._done
            or self._error is not None
            or bool(self._buffer)
        )

    def adopt(self, rows: Sequence[Tuple]) -> None:
        """Install an externally computed result (e.g. a result-cache hit).

        Only legal before any execution has started; the plan never runs.
        """
        if self.has_started:
            raise RuntimeError("cannot adopt rows: plan execution has started")
        self._buffer = list(rows)
        self._forced = tuple(self._buffer)
        self._done = True

    def replace_plan(self, plan: PlanNode) -> None:
        """Swap in an equivalent plan (e.g. a parallelized rewrite).

        Only legal before any execution has started, and the replacement must
        preserve the schema — downstream consumers already saw it.
        """
        if self.has_started:
            raise RuntimeError(
                "cannot replace plan: plan execution has started"
            )
        if plan.schema != self._schema:
            raise SchemaError("replacement plan changes the output schema")
        self._plan = plan

    # _rows shadows the parent's slot with a forcing property, so every
    # RowSet method (len, indexing, equality, .rows) works transparently.
    @property
    def _rows(self) -> tuple[Tuple, ...]:  # type: ignore[override]
        return self.force()

    def __iter__(self) -> Iterator[Tuple]:
        return self.stream()

    def __repr__(self) -> str:
        if self._forced is not None:
            return f"LazyRowSet({self._schema!r}, {len(self._forced)} rows)"
        return (
            f"LazyRowSet({self._schema!r}, unforced, "
            f"{len(self._buffer)} rows buffered)"
        )


def source_plan(rows: RowSet, name: str | None = None) -> PlanNode:
    """The plan leaf for an input relation: re-enter a lazy set through its
    shared buffer, or scan a materialized one."""
    if isinstance(rows, LazyRowSet):
        return CacheNode(rows)
    return ScanNode(rows, name=name)


# ---------------------------------------------------------------------------
# Columnar backend: vectorized kernels exchanging ColumnBatch
# ---------------------------------------------------------------------------

#: Largest integer magnitude float64 represents exactly.  Vectorized paths
#: that would route int values through float64 (bincount sums, mixed-type
#: join keys) guard against values or partial sums beyond this and fall
#: back to the exact row algorithm instead.
_EXACT_INT = 2 ** 53


def _batches_counter():
    return global_registry().counter(
        "columnar.batches", "column batches produced by columnar kernels"
    )


def _fallback_counter():
    return global_registry().counter(
        "columnar.fallback",
        "column batches re-evaluated on the row path after a data hazard",
    )


class ColumnarNode(PlanNode):
    """Base class for vectorized operators exchanging :class:`ColumnBatch`.

    Mirrors the row protocol one level up: :meth:`column_batches` is to
    ``open()`` what ``_produce_columns`` is to ``_produce``.  The row
    protocol still works — ``open()`` converts each column batch back to
    rows — so a bare kernel can be executed anywhere a row node can, but
    the intended consumers are other ColumnarNodes and the
    :class:`ToRowsNode` adapter (``planverify`` enforces that shape for
    plans built by ``columnarize_plan``).

    Kernels are constructed from (and behave identically to) their serial
    siblings; ``describe()`` strings match so EXPLAIN output reads the
    same modulo the backend annotation.
    """

    backend = "columnar"

    #: The serial node this kernel replaced, when the rewrite kept one.
    #: Per-execution row counters are folded back into it so call sites
    #: holding the original plan (the scene-graph cull cache reads
    #: ``rows_in``/``rows_out`` off its Restrict nodes) observe exactly the
    #: stats the row backend would have produced.
    template: PlanNode | None = None

    @property
    def columnar_info(self) -> dict[str, Any]:
        """Marker + summary for rewrite passes and ``explain_data``."""
        return {"backend": "columnar", "op": self.label}

    def column_batches(self) -> Iterator[ColumnBatch]:
        """Begin one execution, yielding column batches."""
        if _VERIFY_HOOK is not None:
            _VERIFY_HOOK(self)
        self.stats.opens += 1
        return self._column_stream()

    def _column_stream(self) -> Iterator[ColumnBatch]:
        stats = self.stats
        rows_in_before = stats.rows_in
        rows_out_before = stats.rows_out
        tracer = current_tracer()
        span = None
        if tracer.enabled:
            span = tracer.span(
                "columnar.kernel", op=self.label, desc=self.describe()
            )
            span.__enter__()
        counter = _batches_counter()
        produced = self._produce_columns()
        try:
            while True:
                start = perf_counter()
                try:
                    batch = next(produced)
                except StopIteration:
                    stats.wall_s += perf_counter() - start
                    break
                stats.wall_s += perf_counter() - start
                stats.batches += 1
                stats.rows_out += len(batch)
                counter.inc()
                yield batch
        finally:
            produced.close()
            self.close()
            template = self.template
            if template is not None:
                template.stats.opens += 1
                template.stats.rows_in += stats.rows_in - rows_in_before
                template.stats.rows_out += stats.rows_out - rows_out_before
            if span is not None:
                span.set(
                    rows_in=stats.rows_in - rows_in_before,
                    rows_out=stats.rows_out - rows_out_before,
                    opens=stats.opens,
                )
                span.__exit__(None, None, None)

    def _produce_columns(self) -> Iterator[ColumnBatch]:
        raise NotImplementedError

    def _pull_columns(self, child: PlanNode) -> Iterator[ColumnBatch]:
        """Stream a child's column batches, counting rows as our input."""
        stats = self.stats
        for batch in child.column_batches():
            stats.rows_in += len(batch)
            yield batch

    def _produce(self) -> Iterator[Tuple]:
        # Row-protocol view (a bare kernel executed without adapters).
        for batch in self._produce_columns():
            yield from batch.to_rows()


class ToColumnsNode(ColumnarNode):
    """Row-to-column adapter at the bottom edge of a columnar region.

    For materialized leaves — a Scan over a RowSet, a Cache over an
    already-forced lazy set — the conversion is served whole from the
    process-wide batch cache, so repeated renders of an unchanged table
    skip the per-tuple walk entirely; the leaf's counters are advanced as
    if it had streamed (EXPLAIN must read backend-independently).  Any
    other child is executed through the row protocol and re-batched at
    ``batch_rows`` granularity.
    """

    label = "ToColumns"

    def __init__(self, child: PlanNode, batch_rows: int = DEFAULT_BATCH_ROWS):
        super().__init__((child,), child.schema)
        self._batch_rows = max(1, int(batch_rows))

    @property
    def batch_rows(self) -> int:
        return self._batch_rows

    def _leaf_rows(self) -> tuple[PlanNode, Sequence[Tuple]] | None:
        child = self._children[0]
        if type(child) is ScanNode:
            source = child._source
            if isinstance(source, RowSet) and not isinstance(source, LazyRowSet):
                return child, source.rows
            if isinstance(source, tuple):
                return child, source
            return None
        if type(child) is CacheNode and child._source.is_materialized:
            return child, child._source.force()
        return None

    def _produce_columns(self) -> Iterator[ColumnBatch]:
        stats = self.stats
        size = self._batch_rows
        leaf = self._leaf_rows()
        if leaf is not None:
            node, rows = leaf
            n = len(rows)
            batch = cached_batch(rows, self._schema)
            # The leaf never actually streamed; mimic the counters one
            # serial execution would have left behind.
            leaf_stats = node.stats
            leaf_stats.opens += 1
            leaf_stats.rows_in += n
            leaf_stats.rows_out += n
            leaf_stats.batches += (n + BATCH_SIZE - 1) // BATCH_SIZE
            if type(node) is CacheNode:
                node._buffered(n)
            stats.rows_in += n
            if n <= size:
                if n:
                    yield batch
                return
            for start in range(0, n, size):
                yield batch.slice(start, min(start + size, n))
            return
        buffer: list[Tuple] = []
        for row in self._pull(self._children[0]):
            buffer.append(row)
            if len(buffer) >= size:
                yield ColumnBatch.from_rows(self._schema, buffer)
                buffer = []
        if buffer:
            yield ColumnBatch.from_rows(self._schema, buffer)

    def describe(self) -> str:
        return f"ToColumns[batch={self._batch_rows}]"


class ToRowsNode(PlanNode):
    """Column-to-row adapter at the top edge of a columnar region.

    Speaks the plain row protocol to its parent; batches that still carry
    their original Tuple objects hand them back by identity.
    """

    label = "ToRows"

    def __init__(self, child: ColumnarNode):
        super().__init__((child,), child.schema)

    def _produce(self) -> Iterator[Tuple]:
        stats = self.stats
        for batch in self._children[0].column_batches():
            stats.rows_in += len(batch)
            yield from batch.to_rows()

    def describe(self) -> str:
        return "ToRows"


class ColumnarRestrictNode(ColumnarNode):
    """Vectorized Restrict: one compiled mask program per batch.

    When the predicate did not compile — or a batch trips a data hazard
    (:class:`VectorFallback`: a zero divisor the serial short-circuit might
    have skipped, an overflowed int column) — that batch is evaluated
    row-at-a-time with the serial ``Expr.evaluate``: identical rows,
    identical errors, counted in ``columnar.fallback``.
    """

    label = "Restrict"

    def __init__(
        self,
        child: PlanNode,
        predicate: Expr,
        alias: str | None = None,
        template: PlanNode | None = None,
    ):
        result_type = predicate.infer(child.schema)
        if result_type is not T.BOOL:
            raise TypeCheckError(
                f"restrict predicate has type {result_type}, want bool"
            )
        super().__init__((child,), child.schema)
        self.predicate = predicate
        self.alias = alias
        self.template = template
        #: Human-readable summary of the hazard proofs that elided guards
        #: in the compiled kernel (shown as ``proof=`` in EXPLAIN).
        self.proof: str | None = None
        hazards = None
        if _ABSINT_HOOK is not None:
            hazards = _ABSINT_HOOK(predicate, child)
            if hazards is not None and len(hazards):
                self.proof = hazards.proof_text()
        self._compiled = compile_predicate(
            predicate, child.schema, hazards=hazards
        )

    @property
    def compiled(self) -> bool:
        """Did the predicate vectorize? (False = always row-path.)"""
        return self._compiled is not None

    def _produce_columns(self) -> Iterator[ColumnBatch]:
        compiled = self._compiled
        predicate = self.predicate
        for batch in self._pull_columns(self._children[0]):
            if not len(batch):
                continue
            keep: np.ndarray | None = None
            if compiled is not None:
                try:
                    keep = compiled(batch)
                except VectorFallback:
                    keep = None
            if keep is None:
                _fallback_counter().inc()
                keep = np.fromiter(
                    (bool(predicate.evaluate(row)) for row in batch.to_rows()),
                    dtype=bool,
                    count=len(batch),
                )
            out = batch.take_mask(keep)
            if len(out):
                yield out

    def describe(self) -> str:
        text = _clip(str(self.predicate), 56)
        if self.alias:
            return f"Restrict[{self.alias}: {text}]"
        return f"Restrict[{text}]"


class ColumnarProjectNode(ColumnarNode):
    """Vectorized Project: reorders column references, copies nothing."""

    label = "Project"

    def __init__(
        self,
        child: PlanNode,
        names: Sequence[str],
        template: PlanNode | None = None,
    ):
        if not names:
            raise SchemaError("projection requires at least one field")
        self._names = list(names)
        super().__init__((child,), child.schema.project(self._names))
        self.template = template

    def _produce_columns(self) -> Iterator[ColumnBatch]:
        names = self._names
        schema = self._schema
        store = _lineage_store(self)
        for batch in self._pull_columns(self._children[0]):
            columns = {name: batch.column(name) for name in names}
            out = ColumnBatch(schema, columns, mask=batch.mask)
            if store is not None:
                in_rows = batch.to_rows()
                out_rows = list(out.to_rows())
                out.rows = _object_array(out_rows)
                for irow, orow in zip(in_rows, out_rows):
                    store.record(orow, (irow,))
            yield out

    def describe(self) -> str:
        return f"Project[{', '.join(self._names)}]"


class ColumnarRenameNode(ColumnarNode):
    """Vectorized Rename: relabels one column reference."""

    label = "Rename"

    def __init__(
        self,
        child: PlanNode,
        old: str,
        new: str,
        template: PlanNode | None = None,
    ):
        super().__init__((child,), child.schema.rename(old, new))
        self._old = old
        self._new = new
        self.template = template

    @property
    def mapping(self) -> tuple[str, str]:
        return (self._old, self._new)

    def _produce_columns(self) -> Iterator[ColumnBatch]:
        old, new = self._old, self._new
        schema = self._schema
        store = _lineage_store(self)
        for batch in self._pull_columns(self._children[0]):
            columns = {
                (new if name == old else name): batch.column(name)
                for name in batch.schema.names
            }
            out = ColumnBatch(schema, columns, mask=batch.mask)
            if store is not None:
                in_rows = batch.to_rows()
                out_rows = list(out.to_rows())
                out.rows = _object_array(out_rows)
                for irow, orow in zip(in_rows, out_rows):
                    store.record(orow, (irow,))
            yield out

    def describe(self) -> str:
        return f"Rename[{self._old} -> {self._new}]"


class ColumnarLimitNode(ColumnarNode):
    """Vectorized Limit.

    Pulls whole batches, so upstream ``rows_in`` counters can overshoot
    the serial backend's row-exact early exit by up to one batch;
    ``columnarize_plan`` therefore leaves Limit on the row backend (where
    EXPLAIN counters stay serial-identical) and this kernel serves
    explicitly constructed columnar plans.
    """

    label = "Limit"

    def __init__(
        self,
        child: PlanNode,
        count: int,
        template: PlanNode | None = None,
    ):
        if count < 0:
            raise EvaluationError(f"limit must be non-negative, got {count}")
        super().__init__((child,), child.schema)
        self._count = count
        self.template = template

    def _produce_columns(self) -> Iterator[ColumnBatch]:
        remaining = self._count
        if remaining == 0:
            return
        for batch in self._pull_columns(self._children[0]):
            if not len(batch):
                continue
            if len(batch) >= remaining:
                yield batch.slice(0, remaining)
                return
            remaining -= len(batch)
            yield batch

    def describe(self) -> str:
        return f"Limit[{self._count}]"


def _structured_view(arrays: Sequence[np.ndarray], n: int) -> np.ndarray:
    """The columns fused into one structured array (for np.unique)."""
    if len(arrays) == 1:
        return arrays[0]
    rec = np.empty(
        n, dtype=[(f"f{pos}", arr.dtype) for pos, arr in enumerate(arrays)]
    )
    for pos, arr in enumerate(arrays):
        rec[f"f{pos}"] = arr
    return rec


def _first_occurrences(arrays: Sequence[np.ndarray], n: int) -> np.ndarray:
    """Indices of each distinct combination's first occurrence, ascending.

    All-fixed-dtype columns go through a structured ``np.unique`` (which
    sorts stably when ``return_index`` is requested, so the reported index
    is genuinely the first occurrence); any object column degrades this to
    a plain range.  Either way the result is only a *candidate* filter —
    the caller's hash set makes the final call with Python equality, so a
    pre-filter that keeps too much can never change the answer.
    """
    if any(arr.dtype == object for arr in arrays):
        return np.arange(n, dtype=np.int64)
    __, first = np.unique(_structured_view(arrays, n), return_index=True)
    first.sort()
    return first


class ColumnarDistinctNode(ColumnarNode):
    """Vectorized Distinct, first occurrence wins.

    Per batch, a structured ``np.unique`` narrows the rows to
    first-occurrence candidates; a Python set of value tuples — the same
    comparison relation the serial backend's Tuple set uses — deduplicates
    across batches.
    """

    label = "Distinct"

    def __init__(self, child: PlanNode, template: PlanNode | None = None):
        super().__init__((child,), child.schema)
        self.template = template

    def _produce_columns(self) -> Iterator[ColumnBatch]:
        seen: set[tuple[Any, ...]] = set()
        try:
            for batch in self._pull_columns(self._children[0]):
                n = len(batch)
                if not n:
                    continue
                arrays = batch.arrays()
                candidates = _first_occurrences(arrays, n)
                value_lists = [arr[candidates].tolist() for arr in arrays]
                keep: list[int] = []
                for pos, values in enumerate(zip(*value_lists)):
                    if values not in seen:
                        seen.add(values)
                        keep.append(pos)
                if not keep:
                    continue
                yield batch.take(candidates[np.asarray(keep, dtype=np.int64)])
        finally:
            self._buffered(len(seen))

    def describe(self) -> str:
        return "Distinct"


def _stable_sort_order(
    keys: Sequence[np.ndarray], n: int, descending: bool
) -> np.ndarray:
    """A sort permutation matching ``list.sort`` on key tuples exactly.

    All-numeric keys ride ``np.lexsort`` (stable, like Python's sort, so
    equal keys keep input order in both directions).  Descending order
    negates each key — exact for float64 (sign flip) and bool (via int8),
    guarded for int64 (its minimum has no negation).  Everything else
    falls back to a Python ``sorted`` over the exact values: the very
    comparisons the serial backend makes.
    """
    vectorized = all(arr.dtype != object for arr in keys)
    if vectorized and descending:
        negated: list[np.ndarray] = []
        for arr in keys:
            if arr.dtype.kind == "b":
                negated.append(-(arr.astype(np.int8)))
            elif arr.dtype.kind in "iu" and arr.size and bool(
                np.any(arr == np.iinfo(arr.dtype).min)
            ):
                vectorized = False
                break
            else:
                negated.append(-arr)
        if vectorized:
            keys = negated
    if vectorized:
        return np.lexsort(tuple(reversed(list(keys))))
    value_lists = [arr.tolist() for arr in keys]
    order = sorted(
        range(n),
        key=lambda pos: tuple(column[pos] for column in value_lists),
        reverse=descending,
    )
    return np.asarray(order, dtype=np.int64)


class ColumnarOrderByNode(ColumnarNode):
    """Vectorized stable sort; buffers its input (pipeline breaker)."""

    label = "OrderBy"

    def __init__(
        self,
        child: PlanNode,
        names: Sequence[str],
        descending: bool = False,
        template: PlanNode | None = None,
    ):
        for name in names:
            child.schema.field(name)
        super().__init__((child,), child.schema)
        self._names = list(names)
        self._descending = descending
        self.template = template

    def _produce_columns(self) -> Iterator[ColumnBatch]:
        batches = list(self._pull_columns(self._children[0]))
        if not batches:
            return
        batch = ColumnBatch.concat(batches)
        n = len(batch)
        self._buffered(n)
        if not n:
            return
        keys = [batch.column(name) for name in self._names]
        yield batch.take(_stable_sort_order(keys, n, self._descending))

    def describe(self) -> str:
        direction = " desc" if self._descending else ""
        return f"OrderBy[{', '.join(self._names)}{direction}]"


def _group_codes(
    key_arrays: Sequence[np.ndarray], n: int
) -> tuple[np.ndarray, np.ndarray, int] | None:
    """First-appearance group ids for every row.

    ``codes[i]`` is row *i*'s group, groups numbered in order of first
    appearance — the serial backend's dict-insertion order —
    ``first_rows[g]`` the row index of group *g*'s first member.  Returns
    None when a key column is object-dtype (the caller then groups in
    Python).
    """
    if any(arr.dtype == object for arr in key_arrays):
        return None
    __, first_idx, inverse = np.unique(
        _structured_view(key_arrays, n),
        return_index=True,
        return_inverse=True,
    )
    appearance = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(first_idx), dtype=np.int64)
    rank[appearance] = np.arange(len(first_idx))
    codes = rank[np.asarray(inverse).reshape(-1)]
    first_rows = first_idx[appearance]
    return codes, first_rows, len(first_idx)


def _vector_aggregate(
    agg_name: str, column: np.ndarray, codes: np.ndarray, group_count: int
) -> np.ndarray:
    """One aggregate output column, indexed by group code.

    Sums must reproduce the serial left-to-right fold bit-for-bit, so they
    ride ``np.bincount`` — its weight accumulation walks the input in
    order, exactly like Python's ``sum()`` — never ``np.add.reduce``,
    whose pairwise summation rounds differently.  min/max are
    order-independent, so a stable argsort plus ``reduceat`` is safe.
    Raises :class:`VectorFallback` when int values routed through the
    float64 weights could lose exactness.
    """
    if agg_name == "count":
        return np.bincount(codes, minlength=group_count).astype(np.int64)
    if column.dtype == object:
        raise VectorFallback("object-dtype aggregate input")
    if agg_name in ("sum", "avg"):
        if column.dtype.kind in "iu" and column.size and (
            int(np.abs(column).max()) * len(column) > _EXACT_INT
        ):
            raise VectorFallback("int sum may leave the exact float64 range")
        sums = np.bincount(codes, weights=column, minlength=group_count)
        if agg_name == "avg":
            return sums / np.bincount(codes, minlength=group_count)
        if column.dtype.kind in "iu":
            return sums.astype(np.int64)
        return sums
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    starts = np.flatnonzero(
        np.r_[True, sorted_codes[1:] != sorted_codes[:-1]]
    )
    ufunc = np.minimum if agg_name == "min" else np.maximum
    return ufunc.reduceat(column[order], starts)


class ColumnarGroupByNode(ColumnarNode):
    """Vectorized GroupBy with sum/count/avg/min/max.

    Structured ``np.unique`` assigns group codes, remapped to
    first-appearance order so output group order matches the serial
    backend's insertion-ordered dict.  Object-dtype keys or an exactness
    hazard drop the whole input to the serial grouping algorithm (same
    ``AGGREGATES`` table, same errors).
    """

    label = "GroupBy"

    def __init__(
        self,
        child: PlanNode,
        keys: Sequence[str],
        aggregations: Sequence[tuple[str, str, str]],
        template: PlanNode | None = None,
    ):
        out_schema = _groupby_output_schema(child.schema, keys, aggregations)
        super().__init__((child,), out_schema)
        self._keys = list(keys)
        self._aggregations = [tuple(spec) for spec in aggregations]
        self.template = template

    def _produce_columns(self) -> Iterator[ColumnBatch]:
        batches = list(self._pull_columns(self._children[0]))
        batch = ColumnBatch.concat(batches) if batches else None
        n = len(batch) if batch is not None else 0
        self._buffered(n)
        if not n:
            return
        key_arrays = [batch.column(key) for key in self._keys]
        grouped = _group_codes(key_arrays, n)
        if grouped is None:
            _fallback_counter().inc()
            yield from self._row_groups(batch)
            return
        codes, first_rows, group_count = grouped
        columns: dict[str, np.ndarray] = {}
        for key, arr in zip(self._keys, key_arrays):
            columns[key] = arr[first_rows]
        try:
            for agg_name, field, output_name in self._aggregations:
                columns[output_name] = _vector_aggregate(
                    agg_name, batch.column(field), codes, group_count
                )
        except VectorFallback:
            _fallback_counter().inc()
            yield from self._row_groups(batch)
            return
        out = ColumnBatch(self._schema, columns)
        store = _lineage_store(self)
        if store is not None:
            in_rows = batch.to_rows()
            out_rows = list(out.to_rows())
            out.rows = _object_array(out_rows)
            members: list[list[Tuple]] = [[] for __ in range(group_count)]
            for idx, code in enumerate(codes.tolist()):
                members[code].append(in_rows[idx])
            for code, orow in enumerate(out_rows):
                store.record(orow, tuple(members[code]))
        yield out

    def _row_groups(self, batch: ColumnBatch) -> Iterator[ColumnBatch]:
        """The serial grouping algorithm over the buffered input."""
        keys = self._keys
        out_schema = self._schema
        store = _lineage_store(self)
        groups: dict[tuple[Any, ...], list[Tuple]] = {}
        for row in batch.to_rows():
            groups.setdefault(tuple(row[key] for key in keys), []).append(row)
        out_rows: list[Tuple] = []
        for key_values, members in groups.items():
            values: list[Any] = list(key_values)
            for agg_name, field, __ in self._aggregations:
                values.append(
                    AGGREGATES[agg_name]([member[field] for member in members])
                )
            out = Tuple(out_schema, values)
            if store is not None:
                store.record(out, tuple(members))
            out_rows.append(out)
        if out_rows:
            yield ColumnBatch.from_rows(out_schema, out_rows)

    def describe(self) -> str:
        aggs = ", ".join(
            f"{agg}({field})->{out}" for agg, field, out in self._aggregations
        )
        return f"GroupBy[{', '.join(self._keys)}; {aggs}]"


class ColumnarHashJoinNode(ColumnarNode):
    """Vectorized equi-join: sort the buffered build side's keys once,
    binary-search each probe batch against it.

    For left row *i* the matches are the stable-sorted right positions in
    ``[lo[i], hi[i])`` — the stable sort keeps equal keys in right-input
    order, so expanding lefts in batch order reproduces the serial output
    order (probe stream order, then build order within a key) exactly.
    Key hazards — an overflowed int column, mixed int/float keys beyond
    the exact float64 range, values numpy cannot order — drop execution to
    the serial hash-join algorithm, degradation notes included.
    """

    label = "HashJoin"

    _DEGRADED_BUILD = HashJoinNode._DEGRADED_BUILD
    _DEGRADED_PROBE = HashJoinNode._DEGRADED_PROBE

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        left_key: str,
        right_key: str,
        template: PlanNode | None = None,
    ):
        _check_join_keys(left.schema, right.schema, left_key, right_key)
        schema, renames = joined_schema(left.schema, right.schema)
        super().__init__((left, right), schema)
        self._left_key = left_key
        self._right_key = right_key
        self._renames = renames
        self.template = template

    def _key_caster(self):
        """How probe/build key arrays become comparable, or hazards out.

        Mixed INT/FLOAT keys compare exactly as Python numbers on the
        serial backend; float64 only matches inside the exact int range,
        so both sides are cast with a magnitude guard.  A fixed-dtype key
        column that overflowed to object dtype can't be binary-searched
        against a fixed array at all.
        """
        left_type = self._children[0].schema.type_of(self._left_key)
        right_type = self._children[1].schema.type_of(self._right_key)
        mixed = {left_type, right_type} == {T.INT, T.FLOAT}
        fixed = left_type in NUMPY_DTYPES or right_type in NUMPY_DTYPES

        def cast(arr: np.ndarray) -> np.ndarray:
            if arr.dtype == object:
                if fixed:
                    raise VectorFallback("overflowed join key column")
                return arr
            if mixed:
                if arr.dtype.kind in "iu" and arr.size and (
                    int(np.abs(arr).max()) > _EXACT_INT
                ):
                    raise VectorFallback(
                        "join key beyond the exact float64 range"
                    )
                return arr.astype(np.float64, copy=False)
            return arr

        return cast

    def _produce_columns(self) -> Iterator[ColumnBatch]:
        left_child, right_child = self._children
        right_batches = list(self._pull_columns(right_child))
        rbatch = ColumnBatch.concat(right_batches) if right_batches else None
        build_rows = len(rbatch) if rbatch is not None else 0
        self._buffered(build_rows)
        left_stream = self._pull_columns(left_child)
        if not build_rows:
            for __ in left_stream:  # serial still scans the probe side
                pass
            return
        cast = self._key_caster()
        try:
            rkeys = cast(rbatch.column(self._right_key))
            r_order = np.argsort(rkeys, kind="stable")
            r_sorted = rkeys[r_order]
        except (TypeError, VectorFallback):
            _fallback_counter().inc()
            yield from self._row_join(rbatch, left_stream)
            return
        left_names = left_child.schema.names
        renames = self._renames
        right_names = [
            (name, renames.get(name, name))
            for name in right_child.schema.names
        ]
        out_schema = self._schema
        store = _lineage_store(self)
        r_rows = rbatch.to_rows() if store is not None else None
        for lbatch in left_stream:
            if not len(lbatch):
                continue
            try:
                lkeys = cast(lbatch.column(self._left_key))
                lo = np.searchsorted(r_sorted, lkeys, side="left")
                hi = np.searchsorted(r_sorted, lkeys, side="right")
            except (TypeError, VectorFallback):
                _fallback_counter().inc()
                yield from self._row_join(
                    rbatch, chain([lbatch], left_stream)
                )
                return
            counts = hi - lo
            total = int(counts.sum())
            if not total:
                continue
            li = np.repeat(np.arange(len(lbatch)), counts)
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            within = (
                np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
            )
            ri = r_order[np.repeat(lo, counts) + within]
            columns = {
                name: lbatch.column(name)[li] for name in left_names
            }
            for name, out_name in right_names:
                columns[out_name] = rbatch.column(name)[ri]
            out = ColumnBatch(out_schema, columns)
            if store is not None and r_rows is not None:
                l_rows = lbatch.to_rows()
                out_rows = list(out.to_rows())
                out.rows = _object_array(out_rows)
                li_list, ri_list = li.tolist(), ri.tolist()
                for j, orow in enumerate(out_rows):
                    store.record(orow, (l_rows[li_list[j]], r_rows[ri_list[j]]))
            yield out

    def _row_join(
        self, rbatch: ColumnBatch, left_stream: Iterator[ColumnBatch]
    ) -> Iterator[ColumnBatch]:
        """The serial hash-join algorithm (hazard path), batch-granular."""
        schema = self._schema
        store = _lineage_store(self)
        left_key, right_key = self._left_key, self._right_key
        right_rows = list(rbatch.to_rows())
        buckets: dict[Any, list[Tuple]] | None = {}
        for rrow in right_rows:
            try:
                buckets.setdefault(rrow[right_key], []).append(rrow)
            except TypeError:
                buckets = None
                self.stats.note(self._DEGRADED_BUILD)
                break
        for lbatch in left_stream:
            out: list[Tuple] = []
            for lrow in lbatch.to_rows():
                key = lrow[left_key]
                matches: Iterable[Tuple]
                if buckets is None:
                    matches = [r for r in right_rows if r[right_key] == key]
                else:
                    try:
                        matches = buckets.get(key, ())
                    except TypeError:
                        self.stats.note(self._DEGRADED_PROBE)
                        matches = [
                            r for r in right_rows if r[right_key] == key
                        ]
                for rrow in matches:
                    joined = concat_rows(schema, lrow, rrow)
                    if store is not None:
                        store.record(joined, (lrow, rrow))
                    out.append(joined)
            if out:
                yield ColumnBatch.from_rows(schema, out)

    def describe(self) -> str:
        return f"HashJoin[{self._left_key} = {self._right_key}]"


# ---------------------------------------------------------------------------
# Effect declarations for every operator in this module.  plan_parallel
# declares its own region operators; test-defined subclasses are
# intentionally undeclared (exact-class lookup) until they declare.
# ---------------------------------------------------------------------------

for _cls, _effect in (
    (ScanNode, EFFECT_SOURCE),
    (CacheNode, EFFECT_SOURCE),
    (ProjectNode, EFFECT_PURE),
    (RestrictNode, EFFECT_PURE),
    (RenameNode, EFFECT_PURE),
    (SampleNode, EFFECT_RNG),
    (LimitNode, EFFECT_STATEFUL),
    (OrderByNode, EFFECT_BLOCKING),
    (DistinctNode, EFFECT_BLOCKING),
    (GroupByNode, EFFECT_BLOCKING),
    (UnionNode, EFFECT_BLOCKING),
    (CrossProductNode, EFFECT_BLOCKING),
    (NestedLoopJoinNode, EFFECT_BLOCKING),
    (HashJoinNode, EFFECT_BLOCKING),
    (ThetaJoinNode, EFFECT_BLOCKING),
    (ToColumnsNode, EFFECT_ADAPTER),
    (ToRowsNode, EFFECT_ADAPTER),
    (ColumnarRestrictNode, EFFECT_PURE),
    (ColumnarProjectNode, EFFECT_PURE),
    (ColumnarRenameNode, EFFECT_PURE),
    (ColumnarLimitNode, EFFECT_STATEFUL),
    (ColumnarDistinctNode, EFFECT_BLOCKING),
    (ColumnarOrderByNode, EFFECT_BLOCKING),
    (ColumnarGroupByNode, EFFECT_BLOCKING),
    (ColumnarHashJoinNode, EFFECT_BLOCKING),
):
    declare_effect(_cls, _effect)
del _cls, _effect
