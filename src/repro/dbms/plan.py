"""Streaming physical-plan IR: instrumented Volcano-style operator nodes.

The paper defers the performance story of browsing queries to a companion
work (§9); its essence is that evaluation must be lazy so only the demanded
path fires.  This module is the compile target that makes that real: every
relational operation is a :class:`PlanNode` following the classic iterator
protocol — ``open()`` begins one execution and yields *batches* of tuples,
``close()`` releases per-execution state — and tuples stream through a tree
of such nodes one at a time.  Pipeline-breaking operators (sort, hash build,
group-by, distinct) materialize only their own working state; everything
else holds O(1) rows.

Three things distinguish this IR from a plain generator pipeline:

* **Instrumentation.**  Every node carries a :class:`NodeStats` with rows
  in/out, batch and open counts, wall time, peak buffered rows, and free-form
  notes (e.g. the hash-join degradation warning).  :meth:`PlanNode.explain`
  renders the operator tree with those counters — the EXPLAIN story.
* **Re-execution.**  Nodes hold declarative configuration, not iterator
  state; each ``open()`` starts a fresh execution, so one plan can be run,
  inspected, and run again.
* **Memo boundaries.**  :class:`LazyRowSet` is a drop-in
  :class:`~repro.dbms.relation.RowSet` whose rows are produced by a plan on
  first demand and buffered incrementally — the dataflow engine's memoized
  box outputs are exactly these, so a chain of boxes streams end to end and
  each boundary buffers only its own output (O(output), not O(input)).
  :class:`CacheNode` re-enters a LazyRowSet as a plan leaf, sharing its
  buffer among any number of downstream consumers.

The list-in/list-out functions in :mod:`repro.dbms.algebra` are thin
wrappers over these nodes, so the public algebra API is unchanged.
"""

from __future__ import annotations

import random
from itertools import islice
from time import perf_counter
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.dbms import types as T
from repro.dbms.expr import Expr
from repro.dbms.parser import parse_predicate
from repro.dbms.relation import RowSet
from repro.dbms.tuples import Field, Schema, Tuple
from repro.errors import EvaluationError, SchemaError, TypeCheckError
from repro.obs.trace import current_tracer

__all__ = [
    "BATCH_SIZE",
    "NodeStats",
    "PlanNode",
    "ScanNode",
    "CacheNode",
    "ProjectNode",
    "RestrictNode",
    "SampleNode",
    "NestedLoopJoinNode",
    "HashJoinNode",
    "ThetaJoinNode",
    "CrossProductNode",
    "OrderByNode",
    "DistinctNode",
    "LimitNode",
    "UnionNode",
    "RenameNode",
    "GroupByNode",
    "LazyRowSet",
    "source_plan",
    "explain_plan",
    "joined_schema",
    "concat_rows",
    "AGGREGATES",
    "set_plan_verifier",
    "plan_verifier",
]

BATCH_SIZE = 256
"""Rows per batch yielded by ``open()``.  Small enough that early-exit
consumers (Limit, a zoomed-in viewer) pull little more than they need,
large enough to amortize per-batch accounting."""

#: Optional verification hook run on every ``PlanNode.open()`` and after
#: plan rewrites.  ``repro.analyze.planverify.install_from_env`` installs
#: the invariant verifier here when ``REPRO_PLAN_VERIFY=1``.
_VERIFY_HOOK: Callable[["PlanNode"], None] | None = None


def set_plan_verifier(hook: Callable[["PlanNode"], None] | None) -> None:
    """Install (or clear, with ``None``) the plan verification hook."""
    global _VERIFY_HOOK
    _VERIFY_HOOK = hook


def plan_verifier() -> Callable[["PlanNode"], None] | None:
    """The installed verification hook, if any."""
    return _VERIFY_HOOK


class NodeStats:
    """Per-operator execution counters, cumulative across opens."""

    __slots__ = (
        "rows_in", "rows_out", "batches", "wall_s", "opens",
        "rows_buffered", "notes",
    )

    def __init__(self) -> None:
        self.rows_in = 0
        self.rows_out = 0
        self.batches = 0
        self.wall_s = 0.0
        self.opens = 0
        self.rows_buffered = 0
        self.notes: list[str] = []

    def note(self, message: str) -> None:
        """Record a warning once (repeat notes are collapsed)."""
        if message not in self.notes:
            self.notes.append(message)

    def summary(self) -> str:
        parts = [f"in={self.rows_in}", f"out={self.rows_out}",
                 f"batches={self.batches}"]
        if self.rows_buffered:
            parts.append(f"buffered={self.rows_buffered}")
        if self.opens != 1:
            parts.append(f"opens={self.opens}")
        parts.append(f"{self.wall_s * 1000.0:.1f}ms")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"NodeStats({self.summary()})"


class PlanNode:
    """A physical operator: children, an output schema, and counters.

    Subclasses implement :meth:`_produce`, a generator over output rows;
    the base class wraps it into the batch protocol and maintains stats.
    Wall time is *inclusive* of children (it measures time spent producing
    this node's rows, wherever it went).
    """

    label = "Plan"

    def __init__(self, children: Sequence["PlanNode"], schema: Schema):
        self._children = tuple(children)
        self._schema = schema
        self.stats = NodeStats()

    # -- protocol ---------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def children(self) -> tuple["PlanNode", ...]:
        return self._children

    def open(self) -> Iterator[list[Tuple]]:
        """Begin one execution, yielding batches of rows.

        Every call starts a fresh execution; counters accumulate across
        executions (``stats.opens`` tells them apart).

        When a plan verifier is installed (``REPRO_PLAN_VERIFY=1``), the
        subtree's invariants are re-checked before any row is produced.
        """
        if _VERIFY_HOOK is not None:
            _VERIFY_HOOK(self)
        self.stats.opens += 1
        return self._batches()

    def close(self) -> None:
        """Release per-execution state (the base class holds none; buffered
        generators are finalized when their iterator is dropped)."""

    def _batches(self) -> Iterator[list[Tuple]]:
        tracer = current_tracer()
        if tracer.enabled:
            return self._batches_traced(tracer)
        return self._batches_plain()

    def _batches_plain(self) -> Iterator[list[Tuple]]:
        produced = self._produce()
        try:
            while True:
                start = perf_counter()
                batch = list(islice(produced, BATCH_SIZE))
                self.stats.wall_s += perf_counter() - start
                if not batch:
                    break
                self.stats.batches += 1
                self.stats.rows_out += len(batch)
                yield batch
        finally:
            produced.close()
            self.close()

    def _batches_traced(self, tracer) -> Iterator[list[Tuple]]:
        """One ``plan.node`` span per execution, open from first pull to
        exhaustion (inclusive of consumer interleave); children's spans nest
        because their rows are pulled while this span is open.  Row counts
        for *this* execution are attached at close."""
        stats = self.stats
        rows_in_before = stats.rows_in
        rows_out_before = stats.rows_out
        span = tracer.span("plan.node", op=self.label, desc=self.describe())
        span.__enter__()
        try:
            yield from self._batches_plain()
        finally:
            span.set(
                rows_in=stats.rows_in - rows_in_before,
                rows_out=stats.rows_out - rows_out_before,
                opens=stats.opens,
            )
            span.__exit__(None, None, None)

    def rows_iter(self) -> Iterator[Tuple]:
        """Row-at-a-time view of one execution."""
        for batch in self.open():
            yield from batch

    def execute(self) -> RowSet:
        """Run the plan to completion and materialize a RowSet."""
        return RowSet(self._schema, self.rows_iter())

    # -- helpers for subclasses -------------------------------------------

    def _produce(self) -> Iterator[Tuple]:
        raise NotImplementedError

    def _pull(self, child: "PlanNode") -> Iterator[Tuple]:
        """Stream a child's rows, counting them as this node's input."""
        stats = self.stats
        for row in child.rows_iter():
            stats.rows_in += 1
            yield row

    def _buffered(self, rows: Sequence[Any] | int) -> None:
        """Record pipeline-breaker state size (peak across executions)."""
        count = rows if isinstance(rows, int) else len(rows)
        if count > self.stats.rows_buffered:
            self.stats.rows_buffered = count

    # -- description ------------------------------------------------------

    def describe(self) -> str:
        """One-line operator description (without stats)."""
        return self.label

    def explain(self, with_stats: bool = True) -> str:
        """Render this subtree as an indented operator tree."""
        return explain_plan(self, with_stats=with_stats)

    def __repr__(self) -> str:
        return f"<{self.describe()} {self.stats.summary()}>"


def _clip(text: str, limit: int = 72) -> str:
    return text if len(text) <= limit else text[: limit - 1] + "…"


def explain_plan(node: PlanNode, with_stats: bool = True) -> str:
    """Format a plan tree, one operator per line, with per-node counters."""
    lines: list[str] = []

    def walk(current: PlanNode, prefix: str, tail: str) -> None:
        line = tail + _clip(current.describe())
        if with_stats:
            line += f"  [{current.stats.summary()}]"
        lines.append(line)
        for warning in current.stats.notes:
            lines.append(prefix + "  ! " + warning)
        kids = current.children
        for pos, child in enumerate(kids):
            last = pos == len(kids) - 1
            walk(child,
                 prefix + ("   " if last else "│  "),
                 prefix + ("└─ " if last else "├─ "))

    walk(node, "", "")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Shared relational helpers (also re-exported through repro.dbms.algebra)
# ---------------------------------------------------------------------------


def joined_schema(left: Schema, right: Schema) -> tuple[Schema, dict[str, str]]:
    """Concatenate schemas, renaming right-side collisions to ``right_<name>``."""
    renames: dict[str, str] = {}
    fields: list[Field] = list(left.fields)
    taken = set(left.names)
    for field in right.fields:
        name = field.name
        if name in taken:
            candidate = f"right_{name}"
            suffix = 2
            while candidate in taken:
                candidate = f"right_{name}_{suffix}"
                suffix += 1
            renames[name] = candidate
            name = candidate
        taken.add(name)
        fields.append(Field(name, field.type))
    return Schema(fields), renames


def concat_rows(schema: Schema, left_row: Tuple, right_row: Tuple) -> Tuple:
    return Tuple(schema, [*left_row.values, *right_row.values])


def _agg_count(values: list[Any]) -> int:
    return len(values)


def _agg_sum(values: list[Any]) -> Any:
    return sum(values) if values else 0


def _agg_avg(values: list[Any]) -> float:
    if not values:
        raise EvaluationError("avg over an empty group")
    return sum(values) / len(values)


def _agg_min(values: list[Any]) -> Any:
    if not values:
        raise EvaluationError("min over an empty group")
    return min(values)


def _agg_max(values: list[Any]) -> Any:
    if not values:
        raise EvaluationError("max over an empty group")
    return max(values)


AGGREGATES: dict[str, Callable[[list[Any]], Any]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
}

_AGG_RESULT_TYPE = {"count": T.INT, "avg": T.FLOAT}


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class ScanNode(PlanNode):
    """Leaf over an in-memory row source (a RowSet or a tuple sequence)."""

    label = "Scan"

    def __init__(
        self,
        source: RowSet | Sequence[Tuple],
        schema: Schema | None = None,
        name: str | None = None,
    ):
        if schema is None:
            if not isinstance(source, RowSet):
                raise SchemaError("ScanNode over a plain sequence needs a schema")
            schema = source.schema
        super().__init__((), schema)
        self._source = source
        self._name = name

    def _produce(self) -> Iterator[Tuple]:
        stats = self.stats
        for row in self._source:
            stats.rows_in += 1
            yield row

    def describe(self) -> str:
        return f"Scan[{self._name}]" if self._name else "Scan"


class CacheNode(PlanNode):
    """Leaf re-entering a :class:`LazyRowSet` — a memoization boundary.

    Streams through the lazy set's shared buffer, so the upstream plan runs
    at most once no matter how many consumers pull through this node.  The
    upstream plan appears as a child purely for EXPLAIN continuity; rows are
    never pulled from it directly.
    """

    label = "Cache"

    def __init__(self, source: "LazyRowSet"):
        super().__init__((source.plan,), source.schema)
        self._source = source

    def _produce(self) -> Iterator[Tuple]:
        stats = self.stats
        source = self._source
        try:
            for row in source.stream():
                stats.rows_in += 1
                yield row
        finally:
            self._buffered(source.buffered_rows())

    def describe(self) -> str:
        label = self._source.label
        state = "hot" if self._source.is_materialized else "cold"
        return f"Cache[{label}, {state}]" if label else f"Cache[{state}]"


# ---------------------------------------------------------------------------
# Streaming unary operators
# ---------------------------------------------------------------------------


class ProjectNode(PlanNode):
    """Keep named fields; preserves duplicates (bag semantics)."""

    label = "Project"

    def __init__(self, child: PlanNode, names: Sequence[str]):
        if not names:
            raise SchemaError("projection requires at least one field")
        self._names = list(names)
        super().__init__((child,), child.schema.project(self._names))

    def _produce(self) -> Iterator[Tuple]:
        names = self._names
        for row in self._pull(self._children[0]):
            yield row.project(names)

    def describe(self) -> str:
        return f"Project[{', '.join(self._names)}]"


class RestrictNode(PlanNode):
    """Keep rows satisfying a type-checked boolean predicate."""

    label = "Restrict"

    def __init__(self, child: PlanNode, predicate: Expr, alias: str | None = None):
        result_type = predicate.infer(child.schema)
        if result_type is not T.BOOL:
            raise TypeCheckError(
                f"restrict predicate has type {result_type}, want bool"
            )
        super().__init__((child,), child.schema)
        self.predicate = predicate
        self.alias = alias

    def _produce(self) -> Iterator[Tuple]:
        predicate = self.predicate
        for row in self._pull(self._children[0]):
            if predicate.evaluate(row):
                yield row

    def describe(self) -> str:
        text = _clip(str(self.predicate), 56)
        if self.alias:
            return f"Restrict[{self.alias}: {text}]"
        return f"Restrict[{text}]"


class SampleNode(PlanNode):
    """Bernoulli sample (§4.2); a seed makes each execution reproducible."""

    label = "Sample"

    def __init__(self, child: PlanNode, probability: float, seed: int | None = None):
        if not 0.0 <= probability <= 1.0:
            raise EvaluationError(
                f"sample probability must be in [0, 1], got {probability}"
            )
        super().__init__((child,), child.schema)
        self._probability = probability
        self._seed = seed

    def _produce(self) -> Iterator[Tuple]:
        rng = random.Random(self._seed)
        probability = self._probability
        for row in self._pull(self._children[0]):
            if rng.random() < probability:
                yield row

    def describe(self) -> str:
        if self._seed is None:
            return f"Sample[p={self._probability}]"
        return f"Sample[p={self._probability}, seed={self._seed}]"


class RenameNode(PlanNode):
    """Rename a single field."""

    label = "Rename"

    def __init__(self, child: PlanNode, old: str, new: str):
        super().__init__((child,), child.schema.rename(old, new))
        self._old = old
        self._new = new

    def _produce(self) -> Iterator[Tuple]:
        schema = self._schema
        for row in self._pull(self._children[0]):
            yield Tuple(schema, row.values)

    @property
    def mapping(self) -> tuple[str, str]:
        return (self._old, self._new)

    def describe(self) -> str:
        return f"Rename[{self._old} -> {self._new}]"


class LimitNode(PlanNode):
    """Keep the first ``count`` rows; stops pulling upstream once satisfied."""

    label = "Limit"

    def __init__(self, child: PlanNode, count: int):
        if count < 0:
            raise EvaluationError(f"limit must be non-negative, got {count}")
        super().__init__((child,), child.schema)
        self._count = count

    def _produce(self) -> Iterator[Tuple]:
        remaining = self._count
        if remaining == 0:
            return
        for row in self._pull(self._children[0]):
            yield row
            remaining -= 1
            if remaining == 0:
                return

    def describe(self) -> str:
        return f"Limit[{self._count}]"


# ---------------------------------------------------------------------------
# Pipeline breakers
# ---------------------------------------------------------------------------


class OrderByNode(PlanNode):
    """Stable sort by one or more fields; buffers its input."""

    label = "OrderBy"

    def __init__(self, child: PlanNode, names: Sequence[str],
                 descending: bool = False):
        for name in names:
            child.schema.field(name)
        super().__init__((child,), child.schema)
        self._names = list(names)
        self._descending = descending

    def _produce(self) -> Iterator[Tuple]:
        names = self._names
        rows = list(self._pull(self._children[0]))
        self._buffered(rows)
        rows.sort(key=lambda row: tuple(row[name] for name in names),
                  reverse=self._descending)
        yield from rows

    def describe(self) -> str:
        direction = " desc" if self._descending else ""
        return f"OrderBy[{', '.join(self._names)}{direction}]"


class DistinctNode(PlanNode):
    """Drop duplicate rows, first occurrence wins; buffers the seen set."""

    label = "Distinct"

    def __init__(self, child: PlanNode):
        super().__init__((child,), child.schema)

    def _produce(self) -> Iterator[Tuple]:
        seen: set[Tuple] = set()
        try:
            for row in self._pull(self._children[0]):
                if row not in seen:
                    seen.add(row)
                    yield row
        finally:
            self._buffered(seen)

    def describe(self) -> str:
        return "Distinct"


class GroupByNode(PlanNode):
    """Group by key fields and aggregate; buffers the groups.

    ``aggregations`` is a sequence of ``(agg_name, field, output_name)``
    with ``agg_name`` one of count/sum/avg/min/max.
    """

    label = "GroupBy"

    def __init__(
        self,
        child: PlanNode,
        keys: Sequence[str],
        aggregations: Sequence[tuple[str, str, str]],
    ):
        schema = child.schema
        for key in keys:
            schema.field(key)
        out_fields: list[Field] = [schema.field(key) for key in keys]
        for agg_name, field, output_name in aggregations:
            if agg_name not in AGGREGATES:
                raise EvaluationError(
                    f"unknown aggregate {agg_name!r}; "
                    f"known: {', '.join(sorted(AGGREGATES))}"
                )
            source_type = schema.type_of(field)
            if agg_name in ("sum", "avg") and not T.numeric(source_type):
                raise TypeCheckError(
                    f"{agg_name} requires a numeric field, {field!r} is {source_type}"
                )
            result_type = _AGG_RESULT_TYPE.get(agg_name, source_type)
            if agg_name == "sum" and source_type is T.FLOAT:
                result_type = T.FLOAT
            out_fields.append(Field(output_name, result_type))
        super().__init__((child,), Schema(out_fields))
        self._keys = list(keys)
        self._aggregations = [tuple(spec) for spec in aggregations]

    def _produce(self) -> Iterator[Tuple]:
        keys = self._keys
        groups: dict[tuple[Any, ...], list[Tuple]] = {}
        total = 0
        for row in self._pull(self._children[0]):
            groups.setdefault(tuple(row[key] for key in keys), []).append(row)
            total += 1
        if total > self.stats.rows_buffered:
            self.stats.rows_buffered = total
        out_schema = self._schema
        for key_values, members in groups.items():
            values: list[Any] = list(key_values)
            for agg_name, field, __ in self._aggregations:
                column = [member[field] for member in members]
                values.append(AGGREGATES[agg_name](column))
            yield Tuple(out_schema, values)

    def describe(self) -> str:
        aggs = ", ".join(
            f"{agg}({field})->{out}" for agg, field, out in self._aggregations
        )
        return f"GroupBy[{', '.join(self._keys)}; {aggs}]"


# ---------------------------------------------------------------------------
# Binary operators
# ---------------------------------------------------------------------------


class UnionNode(PlanNode):
    """Bag union of two schema-identical inputs; fully streaming."""

    label = "Union"

    def __init__(self, left: PlanNode, right: PlanNode):
        if left.schema != right.schema:
            raise SchemaError(
                f"union requires identical schemas, got {left.schema!r} "
                f"and {right.schema!r}"
            )
        super().__init__((left, right), left.schema)

    def _produce(self) -> Iterator[Tuple]:
        yield from self._pull(self._children[0])
        yield from self._pull(self._children[1])

    def describe(self) -> str:
        return "Union"


def _check_join_keys(
    left: Schema, right: Schema, left_key: str, right_key: str
) -> None:
    left_type = left.type_of(left_key)
    right_type = right.type_of(right_key)
    compatible = left_type is right_type or (
        T.numeric(left_type) and T.numeric(right_type)
    )
    if not compatible:
        raise TypeCheckError(
            f"join keys {left_key!r} ({left_type}) and {right_key!r} "
            f"({right_type}) have incompatible types"
        )


class CrossProductNode(PlanNode):
    """Cartesian product; buffers the right input, streams the left."""

    label = "CrossProduct"

    def __init__(self, left: PlanNode, right: PlanNode):
        schema, __ = joined_schema(left.schema, right.schema)
        super().__init__((left, right), schema)

    def _produce(self) -> Iterator[Tuple]:
        schema = self._schema
        right_rows = list(self._pull(self._children[1]))
        self._buffered(right_rows)
        for lrow in self._pull(self._children[0]):
            for rrow in right_rows:
                yield concat_rows(schema, lrow, rrow)

    def describe(self) -> str:
        return "CrossProduct"


class NestedLoopJoinNode(PlanNode):
    """Equi-join by nested loops — the O(n*m) baseline strategy."""

    label = "NestedLoopJoin"

    def __init__(self, left: PlanNode, right: PlanNode,
                 left_key: str, right_key: str):
        _check_join_keys(left.schema, right.schema, left_key, right_key)
        schema, __ = joined_schema(left.schema, right.schema)
        super().__init__((left, right), schema)
        self._left_key = left_key
        self._right_key = right_key

    def _produce(self) -> Iterator[Tuple]:
        schema = self._schema
        left_key, right_key = self._left_key, self._right_key
        right_rows = list(self._pull(self._children[1]))
        self._buffered(right_rows)
        for lrow in self._pull(self._children[0]):
            key = lrow[left_key]
            for rrow in right_rows:
                if rrow[right_key] == key:
                    yield concat_rows(schema, lrow, rrow)

    def describe(self) -> str:
        return f"NestedLoopJoin[{self._left_key} = {self._right_key}]"


class HashJoinNode(PlanNode):
    """Equi-join hashing the right input — the production strategy.

    Non-hashable key values (e.g. drawable lists) cannot poison the stream:
    the build side degrades to a plain scan list and probing falls back to
    nested loops, with the degradation recorded in ``stats.notes`` instead
    of a ``TypeError`` escaping mid-iteration.
    """

    label = "HashJoin"

    _DEGRADED_BUILD = (
        "hash join degraded to nested-loop: non-hashable key value in "
        "the build (right) input"
    )
    _DEGRADED_PROBE = (
        "hash join probed with a non-hashable key value; scanned the "
        "build side for those rows"
    )

    def __init__(self, left: PlanNode, right: PlanNode,
                 left_key: str, right_key: str):
        _check_join_keys(left.schema, right.schema, left_key, right_key)
        schema, __ = joined_schema(left.schema, right.schema)
        super().__init__((left, right), schema)
        self._left_key = left_key
        self._right_key = right_key

    def _produce(self) -> Iterator[Tuple]:
        schema = self._schema
        left_key, right_key = self._left_key, self._right_key

        right_rows: list[Tuple] = []
        buckets: dict[Any, list[Tuple]] | None = {}
        for rrow in self._pull(self._children[1]):
            right_rows.append(rrow)
            if buckets is not None:
                try:
                    buckets.setdefault(rrow[right_key], []).append(rrow)
                except TypeError:
                    buckets = None
                    self.stats.note(self._DEGRADED_BUILD)
        self._buffered(right_rows)

        if buckets is None:
            for lrow in self._pull(self._children[0]):
                key = lrow[left_key]
                for rrow in right_rows:
                    if rrow[right_key] == key:
                        yield concat_rows(schema, lrow, rrow)
            return

        for lrow in self._pull(self._children[0]):
            key = lrow[left_key]
            try:
                matches: Iterable[Tuple] = buckets.get(key, ())
            except TypeError:
                self.stats.note(self._DEGRADED_PROBE)
                matches = [r for r in right_rows if r[right_key] == key]
            for rrow in matches:
                yield concat_rows(schema, lrow, rrow)

    def describe(self) -> str:
        return f"HashJoin[{self._left_key} = {self._right_key}]"


class ThetaJoinNode(PlanNode):
    """General join filtered by a predicate over the concatenated schema.

    Right-side fields whose names collide are addressed as ``right_<name>``.
    """

    label = "ThetaJoin"

    def __init__(self, left: PlanNode, right: PlanNode, predicate_source: str):
        schema, __ = joined_schema(left.schema, right.schema)
        predicate = parse_predicate(predicate_source, schema)
        super().__init__((left, right), schema)
        self.predicate = predicate
        self._source = predicate_source

    def _produce(self) -> Iterator[Tuple]:
        schema = self._schema
        predicate = self.predicate
        right_rows = list(self._pull(self._children[1]))
        self._buffered(right_rows)
        for lrow in self._pull(self._children[0]):
            for rrow in right_rows:
                joined = concat_rows(schema, lrow, rrow)
                if predicate.evaluate(joined):
                    yield joined

    def describe(self) -> str:
        return f"ThetaJoin[{_clip(self._source, 56)}]"


# ---------------------------------------------------------------------------
# Lazy row sets: the engine's memoization boundary
# ---------------------------------------------------------------------------


class LazyRowSet(RowSet):
    """A RowSet whose rows are produced by a plan on first demand.

    Fully API-compatible with :class:`RowSet` — iteration, ``len``,
    indexing, equality all work — but the underlying plan executes at most
    once, incrementally: :meth:`stream` serves rows from a shared buffer and
    advances the plan only past the buffered frontier, so N concurrent
    consumers (fan-out edges, re-demanded outputs, a downstream
    :class:`CacheNode`) cost one execution and one buffer.

    An error raised mid-stream is remembered and re-raised on every later
    demand; a half-buffered result can never silently pose as complete.
    """

    __slots__ = ("_plan", "_buffer", "_iter", "_done", "_error", "_forced",
                 "label", "cache_status")

    def __init__(self, plan: PlanNode, label: str | None = None):
        # Deliberately no super().__init__: the parent would materialize.
        self._schema = plan.schema
        self._plan = plan
        self._buffer: list[Tuple] = []
        self._iter: Iterator[Tuple] | None = None
        self._done = False
        self._error: BaseException | None = None
        self._forced: tuple[Tuple, ...] | None = None
        self.label = label
        # "hit" / "miss" when the result cache was consulted; None otherwise.
        self.cache_status: str | None = None

    # -- laziness ---------------------------------------------------------

    @property
    def plan(self) -> PlanNode:
        return self._plan

    @property
    def is_materialized(self) -> bool:
        return self._forced is not None

    def buffered_rows(self) -> int:
        return len(self._buffer)

    def stream(self) -> Iterator[Tuple]:
        """Yield rows, sharing one plan execution among all consumers."""
        pos = 0
        while True:
            buffer = self._buffer
            while pos < len(buffer):
                yield buffer[pos]
                pos += 1
            if self._done:
                return
            self._advance()

    def _advance(self) -> None:
        if self._error is not None:
            raise self._error
        if self._iter is None:
            self._iter = self._plan.rows_iter()
        try:
            self._buffer.append(next(self._iter))
        except StopIteration:
            self._done = True
            self._iter = None
        except Exception as exc:
            self._error = exc
            self._iter = None
            raise

    def force(self) -> tuple[Tuple, ...]:
        """Run the plan to completion; further demands are free."""
        if self._forced is None:
            for __ in self.stream():
                pass
            self._forced = tuple(self._buffer)
        return self._forced

    @property
    def has_started(self) -> bool:
        """True once any plan execution has begun (or finished)."""
        return (
            self._iter is not None
            or self._done
            or self._error is not None
            or bool(self._buffer)
        )

    def adopt(self, rows: Sequence[Tuple]) -> None:
        """Install an externally computed result (e.g. a result-cache hit).

        Only legal before any execution has started; the plan never runs.
        """
        if self.has_started:
            raise RuntimeError("cannot adopt rows: plan execution has started")
        self._buffer = list(rows)
        self._forced = tuple(self._buffer)
        self._done = True

    def replace_plan(self, plan: PlanNode) -> None:
        """Swap in an equivalent plan (e.g. a parallelized rewrite).

        Only legal before any execution has started, and the replacement must
        preserve the schema — downstream consumers already saw it.
        """
        if self.has_started:
            raise RuntimeError(
                "cannot replace plan: plan execution has started"
            )
        if plan.schema != self._schema:
            raise SchemaError("replacement plan changes the output schema")
        self._plan = plan

    # _rows shadows the parent's slot with a forcing property, so every
    # RowSet method (len, indexing, equality, .rows) works transparently.
    @property
    def _rows(self) -> tuple[Tuple, ...]:  # type: ignore[override]
        return self.force()

    def __iter__(self) -> Iterator[Tuple]:
        return self.stream()

    def __repr__(self) -> str:
        if self._forced is not None:
            return f"LazyRowSet({self._schema!r}, {len(self._forced)} rows)"
        return (
            f"LazyRowSet({self._schema!r}, unforced, "
            f"{len(self._buffer)} rows buffered)"
        )


def source_plan(rows: RowSet, name: str | None = None) -> PlanNode:
    """The plan leaf for an input relation: re-enter a lazy set through its
    shared buffer, or scan a materialized one."""
    if isinstance(rows, LazyRowSet):
        return CacheNode(rows)
    return ScanNode(rows, name=name)
