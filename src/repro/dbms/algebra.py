"""Relational algebra over :class:`~repro.dbms.relation.RowSet`.

These are the engines behind the Figure-3 boxes (Project, Restrict, Sample,
Join) plus the standard complements (order-by, group-by/aggregate, union,
distinct, limit) a real system needs.  All operations are pure: they take row
sets and return new row sets.

Join offers three strategies — nested-loop, hash (for equi-joins), and a
general theta-join driven by a predicate expression — benchmarked against one
another in ``benchmarks/test_bench_perf_join.py``.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Sequence

from repro.dbms import types as T
from repro.dbms.expr import Expr
from repro.dbms.parser import parse_predicate
from repro.dbms.relation import RowSet
from repro.dbms.tuples import Field, Schema, Tuple
from repro.errors import EvaluationError, SchemaError, TypeCheckError

__all__ = [
    "project",
    "restrict",
    "restrict_predicate",
    "sample",
    "join_nested_loop",
    "join_hash",
    "join_theta",
    "join",
    "cross_product",
    "order_by",
    "distinct",
    "limit",
    "union",
    "rename",
    "group_by",
    "AGGREGATES",
]


def project(rows: RowSet, names: Sequence[str]) -> RowSet:
    """Standard projection; preserves duplicates (bag semantics)."""
    if not names:
        raise SchemaError("projection requires at least one field")
    schema = rows.schema.project(names)
    return RowSet(schema, (row.project(names) for row in rows))


def restrict(rows: RowSet, predicate: Expr) -> RowSet:
    """Filter to tuples satisfying a type-checked boolean predicate."""
    result_type = predicate.infer(rows.schema)
    if result_type is not T.BOOL:
        raise TypeCheckError(f"restrict predicate has type {result_type}, want bool")
    return RowSet(rows.schema, (row for row in rows if predicate.evaluate(row)))


def restrict_predicate(rows: RowSet, source: str) -> RowSet:
    """Filter by a predicate given in the query language (the user's text)."""
    return restrict(rows, parse_predicate(source, rows.schema))


def sample(rows: RowSet, probability: float, seed: int | None = None) -> RowSet:
    """Random Bernoulli sample: "Each input is retained with a user-specified
    probability" (§4.2).  A seed makes the sample reproducible."""
    if not 0.0 <= probability <= 1.0:
        raise EvaluationError(
            f"sample probability must be in [0, 1], got {probability}"
        )
    rng = random.Random(seed)
    return RowSet(rows.schema, (row for row in rows if rng.random() < probability))


def _joined_schema(left: Schema, right: Schema) -> tuple[Schema, dict[str, str]]:
    """Concatenate schemas, renaming right-side collisions to ``right_<name>``."""
    renames: dict[str, str] = {}
    fields: list[Field] = list(left.fields)
    taken = set(left.names)
    for field in right.fields:
        name = field.name
        if name in taken:
            candidate = f"right_{name}"
            suffix = 2
            while candidate in taken:
                candidate = f"right_{name}_{suffix}"
                suffix += 1
            renames[name] = candidate
            name = candidate
        taken.add(name)
        fields.append(Field(name, field.type))
    return Schema(fields), renames


def _concat(schema: Schema, left_row: Tuple, right_row: Tuple) -> Tuple:
    return Tuple(schema, [*left_row.values, *right_row.values])


def cross_product(left: RowSet, right: RowSet) -> RowSet:
    """Cartesian product with collision-renamed right fields."""
    schema, __ = _joined_schema(left.schema, right.schema)
    return RowSet(
        schema,
        (_concat(schema, lrow, rrow) for lrow in left for rrow in right),
    )


def join_nested_loop(
    left: RowSet, right: RowSet, left_key: str, right_key: str
) -> RowSet:
    """Equi-join by nested loops — the O(n*m) baseline."""
    _check_join_keys(left, right, left_key, right_key)
    schema, __ = _joined_schema(left.schema, right.schema)
    return RowSet(
        schema,
        (
            _concat(schema, lrow, rrow)
            for lrow in left
            for rrow in right
            if lrow[left_key] == rrow[right_key]
        ),
    )


def join_hash(left: RowSet, right: RowSet, left_key: str, right_key: str) -> RowSet:
    """Equi-join by hashing the right input — the production strategy."""
    _check_join_keys(left, right, left_key, right_key)
    schema, __ = _joined_schema(left.schema, right.schema)
    buckets: dict[Any, list[Tuple]] = {}
    for rrow in right:
        buckets.setdefault(rrow[right_key], []).append(rrow)

    def generate() -> Iterable[Tuple]:
        for lrow in left:
            for rrow in buckets.get(lrow[left_key], ()):
                yield _concat(schema, lrow, rrow)

    return RowSet(schema, generate())


def join_theta(left: RowSet, right: RowSet, predicate_source: str) -> RowSet:
    """General join: the user "is prompted for join predicate" (Fig 3).

    The predicate is written against the concatenated schema; right-side
    fields whose names collide are addressed as ``right_<name>``.
    """
    schema, __ = _joined_schema(left.schema, right.schema)
    predicate = parse_predicate(predicate_source, schema)
    return RowSet(
        schema,
        (
            joined
            for lrow in left
            for rrow in right
            if predicate.evaluate(joined := _concat(schema, lrow, rrow))
        ),
    )


def join(
    left: RowSet,
    right: RowSet,
    left_key: str,
    right_key: str,
    strategy: str = "hash",
) -> RowSet:
    """Equi-join dispatching on strategy name ('hash' or 'nested_loop')."""
    if strategy == "hash":
        return join_hash(left, right, left_key, right_key)
    if strategy == "nested_loop":
        return join_nested_loop(left, right, left_key, right_key)
    raise EvaluationError(f"unknown join strategy {strategy!r}")


def _check_join_keys(
    left: RowSet, right: RowSet, left_key: str, right_key: str
) -> None:
    left_type = left.schema.type_of(left_key)
    right_type = right.schema.type_of(right_key)
    compatible = left_type is right_type or (
        T.numeric(left_type) and T.numeric(right_type)
    )
    if not compatible:
        raise TypeCheckError(
            f"join keys {left_key!r} ({left_type}) and {right_key!r} "
            f"({right_type}) have incompatible types"
        )


def order_by(rows: RowSet, names: Sequence[str], descending: bool = False) -> RowSet:
    """Sort rows by one or more fields (stable)."""
    for name in names:
        rows.schema.field(name)
    key = lambda row: tuple(row[name] for name in names)
    return RowSet(rows.schema, sorted(rows, key=key, reverse=descending))


def distinct(rows: RowSet) -> RowSet:
    """Remove duplicate rows, preserving first-occurrence order."""
    seen: set[Tuple] = set()
    kept: list[Tuple] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            kept.append(row)
    return RowSet(rows.schema, kept)


def limit(rows: RowSet, count: int) -> RowSet:
    """Keep the first ``count`` rows."""
    if count < 0:
        raise EvaluationError(f"limit must be non-negative, got {count}")
    return RowSet(rows.schema, rows.rows[:count])


def union(left: RowSet, right: RowSet) -> RowSet:
    """Bag union of two schema-identical row sets."""
    if left.schema != right.schema:
        raise SchemaError(
            f"union requires identical schemas, got {left.schema!r} "
            f"and {right.schema!r}"
        )
    return RowSet(left.schema, [*left.rows, *right.rows])


def rename(rows: RowSet, old: str, new: str) -> RowSet:
    """Rename a single field."""
    schema = rows.schema.rename(old, new)
    return RowSet(schema, (Tuple(schema, row.values) for row in rows))


def _agg_count(values: list[Any]) -> int:
    return len(values)


def _agg_sum(values: list[Any]) -> Any:
    return sum(values) if values else 0


def _agg_avg(values: list[Any]) -> float:
    if not values:
        raise EvaluationError("avg over an empty group")
    return sum(values) / len(values)


def _agg_min(values: list[Any]) -> Any:
    if not values:
        raise EvaluationError("min over an empty group")
    return min(values)


def _agg_max(values: list[Any]) -> Any:
    if not values:
        raise EvaluationError("max over an empty group")
    return max(values)


AGGREGATES: dict[str, Callable[[list[Any]], Any]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
}

_AGG_RESULT_TYPE = {"count": T.INT, "avg": T.FLOAT}


def group_by(
    rows: RowSet,
    keys: Sequence[str],
    aggregations: Sequence[tuple[str, str, str]],
) -> RowSet:
    """Group by ``keys`` and aggregate.

    ``aggregations`` is a sequence of ``(agg_name, field, output_name)``;
    ``agg_name`` is one of count/sum/avg/min/max.  ``count`` ignores its field
    argument (pass any existing field).
    """
    for key in keys:
        rows.schema.field(key)
    out_fields: list[Field] = [rows.schema.field(key) for key in keys]
    for agg_name, field, output_name in aggregations:
        if agg_name not in AGGREGATES:
            raise EvaluationError(
                f"unknown aggregate {agg_name!r}; "
                f"known: {', '.join(sorted(AGGREGATES))}"
            )
        source_type = rows.schema.type_of(field)
        if agg_name in ("sum", "avg") and not T.numeric(source_type):
            raise TypeCheckError(
                f"{agg_name} requires a numeric field, {field!r} is {source_type}"
            )
        result_type = _AGG_RESULT_TYPE.get(agg_name, source_type)
        if agg_name == "sum" and source_type is T.FLOAT:
            result_type = T.FLOAT
        out_fields.append(Field(output_name, result_type))
    out_schema = Schema(out_fields)

    groups: dict[tuple[Any, ...], list[Tuple]] = {}
    for row in rows:
        groups.setdefault(tuple(row[key] for key in keys), []).append(row)

    result_rows: list[Tuple] = []
    for key_values, members in groups.items():
        values: list[Any] = list(key_values)
        for agg_name, field, __ in aggregations:
            column = [member[field] for member in members]
            values.append(AGGREGATES[agg_name](column))
        result_rows.append(Tuple(out_schema, values))
    return RowSet(out_schema, result_rows)
