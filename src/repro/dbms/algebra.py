"""Relational algebra over :class:`~repro.dbms.relation.RowSet`.

These are the engines behind the Figure-3 boxes (Project, Restrict, Sample,
Join) plus the standard complements (order-by, group-by/aggregate, union,
distinct, limit) a real system needs.  All operations are pure: they take row
sets and return new row sets.

Since the streaming refactor these functions are thin wrappers over the
physical-plan operators in :mod:`repro.dbms.plan` — each call builds a
one-node plan over a scan of its input and materializes the result, so the
list-in/list-out contract (and every error message) is unchanged while the
actual operator logic lives in exactly one place.  Callers that want
streaming execution, per-operator statistics, or deferred materialization
compose the plan nodes directly.

Join offers three strategies — nested-loop, hash (for equi-joins), and a
general theta-join driven by a predicate expression — benchmarked against one
another in ``benchmarks/test_bench_perf_join.py``.
"""

from __future__ import annotations

from typing import Sequence

from repro.dbms import plan as P
from repro.dbms.expr import Expr
from repro.dbms.parser import parse_predicate
from repro.dbms.plan import AGGREGATES
from repro.dbms.plan import concat_rows as _concat
from repro.dbms.plan import joined_schema as _joined_schema
from repro.dbms.relation import RowSet
from repro.errors import EvaluationError

__all__ = [
    "project",
    "restrict",
    "restrict_predicate",
    "sample",
    "join_nested_loop",
    "join_hash",
    "join_theta",
    "join",
    "cross_product",
    "order_by",
    "distinct",
    "limit",
    "union",
    "rename",
    "group_by",
    "AGGREGATES",
]


def project(rows: RowSet, names: Sequence[str]) -> RowSet:
    """Standard projection; preserves duplicates (bag semantics)."""
    return P.ProjectNode(P.ScanNode(rows), names).execute()


def restrict(rows: RowSet, predicate: Expr) -> RowSet:
    """Filter to tuples satisfying a type-checked boolean predicate."""
    return P.RestrictNode(P.ScanNode(rows), predicate).execute()


def restrict_predicate(rows: RowSet, source: str) -> RowSet:
    """Filter by a predicate given in the query language (the user's text)."""
    return restrict(rows, parse_predicate(source, rows.schema))


def sample(rows: RowSet, probability: float, seed: int | None = None) -> RowSet:
    """Random Bernoulli sample: "Each input is retained with a user-specified
    probability" (§4.2).  A seed makes the sample reproducible."""
    return P.SampleNode(P.ScanNode(rows), probability, seed).execute()


def cross_product(left: RowSet, right: RowSet) -> RowSet:
    """Cartesian product with collision-renamed right fields."""
    return P.CrossProductNode(P.ScanNode(left), P.ScanNode(right)).execute()


def join_nested_loop(
    left: RowSet, right: RowSet, left_key: str, right_key: str
) -> RowSet:
    """Equi-join by nested loops — the O(n*m) baseline."""
    return P.NestedLoopJoinNode(
        P.ScanNode(left), P.ScanNode(right), left_key, right_key
    ).execute()


def join_hash(left: RowSet, right: RowSet, left_key: str, right_key: str) -> RowSet:
    """Equi-join by hashing the right input — the production strategy.

    Non-hashable key values degrade to a nested-loop scan (recorded in the
    plan node's stats) instead of raising mid-stream.
    """
    return P.HashJoinNode(
        P.ScanNode(left), P.ScanNode(right), left_key, right_key
    ).execute()


def join_theta(left: RowSet, right: RowSet, predicate_source: str) -> RowSet:
    """General join: the user "is prompted for join predicate" (Fig 3).

    The predicate is written against the concatenated schema; right-side
    fields whose names collide are addressed as ``right_<name>``.
    """
    return P.ThetaJoinNode(
        P.ScanNode(left), P.ScanNode(right), predicate_source
    ).execute()


def join(
    left: RowSet,
    right: RowSet,
    left_key: str,
    right_key: str,
    strategy: str = "hash",
) -> RowSet:
    """Equi-join dispatching on strategy name ('hash' or 'nested_loop')."""
    if strategy == "hash":
        return join_hash(left, right, left_key, right_key)
    if strategy == "nested_loop":
        return join_nested_loop(left, right, left_key, right_key)
    raise EvaluationError(f"unknown join strategy {strategy!r}")


def order_by(rows: RowSet, names: Sequence[str], descending: bool = False) -> RowSet:
    """Sort rows by one or more fields (stable)."""
    return P.OrderByNode(P.ScanNode(rows), names, descending).execute()


def distinct(rows: RowSet) -> RowSet:
    """Remove duplicate rows, preserving first-occurrence order."""
    return P.DistinctNode(P.ScanNode(rows)).execute()


def limit(rows: RowSet, count: int) -> RowSet:
    """Keep the first ``count`` rows."""
    return P.LimitNode(P.ScanNode(rows), count).execute()


def union(left: RowSet, right: RowSet) -> RowSet:
    """Bag union of two schema-identical row sets."""
    return P.UnionNode(P.ScanNode(left), P.ScanNode(right)).execute()


def rename(rows: RowSet, old: str, new: str) -> RowSet:
    """Rename a single field."""
    return P.RenameNode(P.ScanNode(rows), old, new).execute()


def group_by(
    rows: RowSet,
    keys: Sequence[str],
    aggregations: Sequence[tuple[str, str, str]],
) -> RowSet:
    """Group by ``keys`` and aggregate.

    ``aggregations`` is a sequence of ``(agg_name, field, output_name)``;
    ``agg_name`` is one of count/sum/avg/min/max.  ``count`` ignores its field
    argument (pass any existing field).
    """
    return P.GroupByNode(P.ScanNode(rows), keys, aggregations).execute()
