"""Plan-IR rewrites: restrict merging and pushdown over physical plans.

The graph-level optimizer (:mod:`repro.dataflow.optimize`) restructures
boxes-and-arrows programs; this module applies the same two rewrite families
*inside* a physical plan, where synthesized operators (viewer culling
restricts, box-emitted fragments) live below the granularity of a box:

* **Restrict merging** — adjacent Restrict nodes collapse into one
  conjunction (one pass over the data instead of two).
* **Restrict pushdown** — a Restrict moves below operators that keep row
  values intact and commute with filtering: Rename (with the predicate's
  field references mapped back to the old name), Project, OrderBy, and
  Distinct.

Pushdown is deliberately *blocked* by Union and GroupBy (a predicate over
the output schema is not a predicate over the inputs), by Sample (filtering
first changes the per-row RNG alignment), by Limit (head-N does not commute
with filtering), by joins (the graph-level join rule handles those), and by
Cache/Scan leaves (a cache is a shared memoization boundary — filtering
what gets cached would change what other consumers observe).

Both rewrite families share their expression helpers
(:func:`split_conjuncts`, :func:`conjoin`, :func:`rename_fields`) with the
graph-level optimizer, which imports them from here.
"""

from __future__ import annotations

from typing import Sequence

from repro.dbms.expr import (
    Binary,
    Call,
    Conditional,
    Expr,
    FieldRef,
    Literal,
    Unary,
)
from repro.dbms.plan import (
    CacheNode,
    DistinctNode,
    OrderByNode,
    PlanNode,
    ProjectNode,
    RenameNode,
    RestrictNode,
    ScanNode,
    plan_verifier,
)
from repro.errors import StaticAnalysisError, TiogaError

__all__ = [
    "split_conjuncts",
    "conjoin",
    "rename_fields",
    "optimize_plan",
]


def split_conjuncts(expr: Expr) -> list[Expr]:
    """Flatten top-level ``and`` into its conjuncts."""
    if isinstance(expr, Binary) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(parts: Sequence[Expr]) -> Expr:
    """Left-associative conjunction of one or more boolean expressions."""
    if not parts:
        raise TiogaError("cannot conjoin zero predicates")
    result = parts[0]
    for part in parts[1:]:
        result = Binary("and", result, part)
    return result


def rename_fields(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Rebuild an expression with field references renamed."""
    if isinstance(expr, FieldRef):
        return FieldRef(mapping.get(expr.name, expr.name))
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, Unary):
        return Unary(expr.op, rename_fields(expr.operand, mapping))
    if isinstance(expr, Binary):
        return Binary(
            expr.op,
            rename_fields(expr.left, mapping),
            rename_fields(expr.right, mapping),
        )
    if isinstance(expr, Conditional):
        return Conditional(
            rename_fields(expr.condition, mapping),
            rename_fields(expr.then_branch, mapping),
            rename_fields(expr.else_branch, mapping),
        )
    if isinstance(expr, Call):
        return Call(expr.fn.name, [rename_fields(a, mapping) for a in expr.args])
    raise TiogaError(f"cannot rewrite expression node {type(expr).__name__}")


def optimize_plan(
    root: PlanNode, log: list[str] | None = None, *, parallel=None
) -> tuple[PlanNode, list[str]]:
    """Apply plan rewrites until fixpoint; returns (new root, rewrite log).

    Rewrites rebuild nodes (constructors re-validate), so only apply this to
    plans that have not started executing — rebuilt nodes carry fresh stats.

    When ``parallel`` (a :class:`repro.dbms.plan_parallel.ParallelConfig`)
    is given and enables multiple workers, a final parallelize pass wraps
    morsel-friendly subtrees in parallel operators; output order and
    schemas are unchanged.

    Rewrite safety: the optimized plan must produce the same schema as the
    original (checked unconditionally), and when a plan verifier is
    installed (``REPRO_PLAN_VERIFY=1``) the whole rewritten tree is
    re-verified against the plan-IR invariants.
    """
    if log is None:
        log = []
    original_schema = root.schema
    while True:
        root, changed = _rewrite(root, log)
        if not changed:
            break
    if parallel is not None and parallel.parallel:
        from repro.dbms.plan_parallel import parallelize_plan

        root, log = parallelize_plan(root, parallel, log)
    if root.schema != original_schema:
        raise StaticAnalysisError(
            f"plan rewrite changed the root schema from {original_schema!r} "
            f"to {root.schema!r}; rewrites must be schema-preserving "
            f"(rewrite log: {log})"
        )
    verifier = plan_verifier()
    if verifier is not None:
        verifier(root)
    return root, log


def _rewrite(node: PlanNode, log: list[str]) -> tuple[PlanNode, bool]:
    # Leaves stop the walk.  A CacheNode's child belongs to another (shared,
    # possibly executing) plan: it is shown by EXPLAIN but never rewritten.
    # Parallel operators also stop it: their child is the serial template
    # their morsel builders were derived from, and must stay in sync.
    if isinstance(node, (ScanNode, CacheNode)) or hasattr(node, "parallel_info"):
        return node, False

    changed = False
    new_children = []
    for child in node.children:
        rewritten, child_changed = _rewrite(child, log)
        new_children.append(rewritten)
        changed = changed or child_changed
    if changed:
        node._children = tuple(new_children)

    if not isinstance(node, RestrictNode):
        return node, changed

    child = node.children[0]
    alias = node.alias

    if isinstance(child, RestrictNode):
        merged = RestrictNode(
            child.children[0],
            Binary("and", child.predicate, node.predicate),
            alias=alias or child.alias,
        )
        log.append(
            f"merged adjacent restricts: ({child.predicate}) and ({node.predicate})"
        )
        return merged, True

    if isinstance(child, RenameNode):
        old, new = child.mapping
        predicate = rename_fields(node.predicate, {new: old})
        pushed = RenameNode(
            RestrictNode(child.children[0], predicate, alias=alias), old, new
        )
        log.append(f"pushed restrict below {child.describe()}")
        return pushed, True

    if isinstance(child, ProjectNode):
        pushed = ProjectNode(
            RestrictNode(child.children[0], node.predicate, alias=alias),
            child._names,
        )
        log.append(f"pushed restrict below {child.describe()}")
        return pushed, True

    if isinstance(child, OrderByNode):
        pushed = OrderByNode(
            RestrictNode(child.children[0], node.predicate, alias=alias),
            child._names,
            child._descending,
        )
        log.append(f"pushed restrict below {child.describe()}")
        return pushed, True

    if isinstance(child, DistinctNode):
        pushed = DistinctNode(
            RestrictNode(child.children[0], node.predicate, alias=alias)
        )
        log.append(f"pushed restrict below {child.describe()}")
        return pushed, True

    # Union, GroupBy, Sample, Limit, joins, leaves: blocked.
    return node, changed
