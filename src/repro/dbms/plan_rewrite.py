"""Plan-IR rewrites: restrict merging and pushdown over physical plans.

The graph-level optimizer (:mod:`repro.dataflow.optimize`) restructures
boxes-and-arrows programs; this module applies the same two rewrite families
*inside* a physical plan, where synthesized operators (viewer culling
restricts, box-emitted fragments) live below the granularity of a box:

* **Restrict merging** — adjacent Restrict nodes collapse into one
  conjunction (one pass over the data instead of two).
* **Restrict pushdown** — a Restrict moves below operators that keep row
  values intact and commute with filtering: Rename (with the predicate's
  field references mapped back to the old name), Project, OrderBy, and
  Distinct.

Pushdown is deliberately *blocked* by Union and GroupBy (a predicate over
the output schema is not a predicate over the inputs), by Sample (filtering
first changes the per-row RNG alignment), by Limit (head-N does not commute
with filtering), by joins (the graph-level join rule handles those), and by
Cache/Scan leaves (a cache is a shared memoization boundary — filtering
what gets cached would change what other consumers observe).

Both rewrite families share their expression helpers
(:func:`split_conjuncts`, :func:`conjoin`, :func:`rename_fields`) with the
graph-level optimizer, which imports them from here.
"""

from __future__ import annotations

from typing import Sequence

from repro.dbms.expr import (
    Binary,
    Call,
    Conditional,
    Expr,
    FieldRef,
    Literal,
    Unary,
)
from repro.dbms.columnar import NUMPY_DTYPES, ColumnarConfig
from repro.dbms.expr_compile import compile_predicate
from repro.dbms.plan import (
    CacheNode,
    ColumnarDistinctNode,
    ColumnarGroupByNode,
    ColumnarHashJoinNode,
    ColumnarNode,
    ColumnarOrderByNode,
    ColumnarProjectNode,
    ColumnarRenameNode,
    ColumnarRestrictNode,
    DistinctNode,
    GroupByNode,
    HashJoinNode,
    OrderByNode,
    PlanNode,
    ProjectNode,
    RenameNode,
    RestrictNode,
    ScanNode,
    ToColumnsNode,
    ToRowsNode,
    plan_annotator,
    plan_verifier,
)
from repro.errors import StaticAnalysisError, TiogaError

__all__ = [
    "split_conjuncts",
    "conjoin",
    "rename_fields",
    "optimize_plan",
    "columnarize_plan",
]


def split_conjuncts(expr: Expr) -> list[Expr]:
    """Flatten top-level ``and`` into its conjuncts."""
    if isinstance(expr, Binary) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(parts: Sequence[Expr]) -> Expr:
    """Left-associative conjunction of one or more boolean expressions."""
    if not parts:
        raise TiogaError("cannot conjoin zero predicates")
    result = parts[0]
    for part in parts[1:]:
        result = Binary("and", result, part)
    return result


def rename_fields(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Rebuild an expression with field references renamed."""
    if isinstance(expr, FieldRef):
        return FieldRef(mapping.get(expr.name, expr.name))
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, Unary):
        return Unary(expr.op, rename_fields(expr.operand, mapping))
    if isinstance(expr, Binary):
        return Binary(
            expr.op,
            rename_fields(expr.left, mapping),
            rename_fields(expr.right, mapping),
        )
    if isinstance(expr, Conditional):
        return Conditional(
            rename_fields(expr.condition, mapping),
            rename_fields(expr.then_branch, mapping),
            rename_fields(expr.else_branch, mapping),
        )
    if isinstance(expr, Call):
        return Call(expr.fn.name, [rename_fields(a, mapping) for a in expr.args])
    raise TiogaError(f"cannot rewrite expression node {type(expr).__name__}")


def optimize_plan(
    root: PlanNode, log: list[str] | None = None, *, parallel=None,
    columnar: ColumnarConfig | None = None,
) -> tuple[PlanNode, list[str]]:
    """Apply plan rewrites until fixpoint; returns (new root, rewrite log).

    Rewrites rebuild nodes (constructors re-validate), so only apply this to
    plans that have not started executing — rebuilt nodes carry fresh stats.

    When ``parallel`` (a :class:`repro.dbms.plan_parallel.ParallelConfig`)
    is given and enables multiple workers, a parallelize pass wraps
    morsel-friendly subtrees in parallel operators; when ``columnar`` (a
    :class:`repro.dbms.columnar.ColumnarConfig`) is given,
    :func:`columnarize_plan` then swaps profitable subtrees onto the
    vectorized backend behind ToColumns/ToRows adapters.  Output rows,
    order, and schemas are unchanged either way.

    Rewrite safety: the optimized plan must produce the same schema as the
    original (checked unconditionally), and when a plan verifier is
    installed (``REPRO_PLAN_VERIFY=1``) the whole rewritten tree is
    re-verified against the plan-IR invariants.
    """
    if log is None:
        log = []
    original_schema = root.schema
    while True:
        root, changed = _rewrite(root, log)
        if not changed:
            break
    if plan_annotator() is not None:
        # Abstract interpretation is on (REPRO_ABSINT=1): eliminate
        # restricts whose predicates have a constant truth value and prune
        # statically empty subtrees, before backend selection sees them.
        from repro.analyze.absint import absint_rewrite_plan

        root, log = absint_rewrite_plan(root, log)
    if parallel is not None and parallel.parallel:
        from repro.dbms.plan_parallel import parallelize_plan

        root, log = parallelize_plan(root, parallel, log, columnar=columnar)
    if columnar is not None:
        root, log = columnarize_plan(root, columnar, log)
    if root.schema != original_schema:
        raise StaticAnalysisError(
            f"plan rewrite changed the root schema from {original_schema!r} "
            f"to {root.schema!r}; rewrites must be schema-preserving "
            f"(rewrite log: {log})"
        )
    verifier = plan_verifier()
    if verifier is not None:
        verifier(root)
    return root, log


def _rewrite(node: PlanNode, log: list[str]) -> tuple[PlanNode, bool]:
    # Leaves stop the walk.  A CacheNode's child belongs to another (shared,
    # possibly executing) plan: it is shown by EXPLAIN but never rewritten.
    # Parallel operators also stop it: their child is the serial template
    # their morsel builders were derived from, and must stay in sync.
    # Columnar operators likewise: their kernels were derived from serial
    # templates by columnarize_plan and are not restructured afterwards.
    if (
        isinstance(node, (ScanNode, CacheNode))
        or hasattr(node, "parallel_info")
        or hasattr(node, "columnar_info")
    ):
        return node, False

    changed = False
    new_children = []
    for child in node.children:
        rewritten, child_changed = _rewrite(child, log)
        new_children.append(rewritten)
        changed = changed or child_changed
    if changed:
        node._children = tuple(new_children)

    if not isinstance(node, RestrictNode):
        return node, changed

    child = node.children[0]
    alias = node.alias

    if isinstance(child, RestrictNode):
        merged = RestrictNode(
            child.children[0],
            Binary("and", child.predicate, node.predicate),
            alias=alias or child.alias,
        )
        log.append(
            f"merged adjacent restricts: ({child.predicate}) and ({node.predicate})"
        )
        return merged, True

    if isinstance(child, RenameNode):
        old, new = child.mapping
        predicate = rename_fields(node.predicate, {new: old})
        pushed = RenameNode(
            RestrictNode(child.children[0], predicate, alias=alias), old, new
        )
        log.append(f"pushed restrict below {child.describe()}")
        return pushed, True

    if isinstance(child, ProjectNode):
        pushed = ProjectNode(
            RestrictNode(child.children[0], node.predicate, alias=alias),
            child._names,
        )
        log.append(f"pushed restrict below {child.describe()}")
        return pushed, True

    if isinstance(child, OrderByNode):
        pushed = OrderByNode(
            RestrictNode(child.children[0], node.predicate, alias=alias),
            child._names,
            child._descending,
        )
        log.append(f"pushed restrict below {child.describe()}")
        return pushed, True

    if isinstance(child, DistinctNode):
        pushed = DistinctNode(
            RestrictNode(child.children[0], node.predicate, alias=alias)
        )
        log.append(f"pushed restrict below {child.describe()}")
        return pushed, True

    # Union, GroupBy, Sample, Limit, joins, leaves: blocked.
    return node, changed


# ---------------------------------------------------------------------------
# Columnar backend selection
# ---------------------------------------------------------------------------


def _columnar_capable(node: PlanNode) -> bool:
    """Can this operator run on the columnar backend with identical
    results?  (Exact-type checks: a subclass may change semantics.)

    Limit is deliberately absent: its batch-granular pull would overcount
    upstream EXPLAIN row counters relative to the serial row-exact early
    exit.  Distinct needs hashable raw values (the serial backend's Tuple
    hash maps drawable lists to identity, the kernel's value-tuple set
    cannot), so DRAWABLES columns keep it on the row backend.
    """
    kind = type(node)
    if kind in (RestrictNode, ProjectNode, RenameNode, OrderByNode,
                GroupByNode, HashJoinNode):
        return True
    if kind is DistinctNode:
        return all(
            field.type in NUMPY_DTYPES or field.type.name in ("text", "date")
            for field in node.schema.fields
        )
    return False


def _columnar_worthwhile(node: PlanNode) -> bool:
    """Is the vectorized kernel expected to beat the row operator?

    Restrict pays off when its predicate compiled to a mask program;
    sort/group/join pay off when their keys live in fixed-width dtypes
    (object columns would route through the same Python comparisons the
    row backend makes, plus conversion overhead).  Project and Rename are
    pure plumbing — they ride along when their input subtree is worthwhile
    but never start a region by themselves.
    """
    kind = type(node)
    if kind is RestrictNode:
        return compile_predicate(
            node.predicate, node.children[0].schema
        ) is not None
    if kind in (ProjectNode, RenameNode):
        return _columnar_worthwhile(node.children[0])
    if kind is DistinctNode:
        return all(field.type in NUMPY_DTYPES for field in node.schema.fields)
    if kind is OrderByNode:
        return all(
            node.schema.type_of(name) in NUMPY_DTYPES for name in node._names
        )
    if kind is GroupByNode:
        return all(
            node.children[0].schema.type_of(key) in NUMPY_DTYPES
            for key in node._keys
        )
    if kind is HashJoinNode:
        return (
            node.children[0].schema.type_of(node._left_key) in NUMPY_DTYPES
            and node.children[1].schema.type_of(node._right_key)
            in NUMPY_DTYPES
        )
    return False


def columnarize_plan(
    root: PlanNode, config: ColumnarConfig, log: list[str] | None = None
) -> tuple[PlanNode, list[str]]:
    """Select the columnar backend per subtree; returns (new root, log).

    Walks the plan looking for *regions* — maximal subtrees of
    columnar-capable operators rooted at a worthwhile one — and swaps each
    region onto vectorized kernels, bracketed by a :class:`ToRowsNode` on
    top and :class:`ToColumnsNode` adapters at the bottom edges.  Each
    kernel keeps its serial original as a ``template`` so executed row
    counters fold back where external callers look for them.  Leaves,
    Cache boundaries, and parallel operators stop the walk exactly as in
    the rewrite pass; everything outside a region stays on the row backend
    untouched.  Row output, ordering, and schemas are invariant.
    """
    if log is None:
        log = []

    def as_kernel(node: PlanNode) -> ColumnarNode:
        kind = type(node)
        if kind is RestrictNode:
            return ColumnarRestrictNode(
                region_child(node.children[0]),
                node.predicate,
                alias=node.alias,
                template=node,
            )
        if kind is ProjectNode:
            return ColumnarProjectNode(
                region_child(node.children[0]), node._names, template=node
            )
        if kind is RenameNode:
            old, new = node.mapping
            return ColumnarRenameNode(
                region_child(node.children[0]), old, new, template=node
            )
        if kind is DistinctNode:
            return ColumnarDistinctNode(
                region_child(node.children[0]), template=node
            )
        if kind is OrderByNode:
            return ColumnarOrderByNode(
                region_child(node.children[0]),
                node._names,
                node._descending,
                template=node,
            )
        if kind is GroupByNode:
            return ColumnarGroupByNode(
                region_child(node.children[0]),
                node._keys,
                node._aggregations,
                template=node,
            )
        if kind is HashJoinNode:
            return ColumnarHashJoinNode(
                region_child(node.children[0]),
                region_child(node.children[1]),
                node._left_key,
                node._right_key,
                template=node,
            )
        raise TiogaError(
            f"no columnar kernel for {type(node).__name__}"
        )  # pragma: no cover — guarded by _columnar_capable

    def region_child(child: PlanNode) -> ColumnarNode:
        """Extend the region through capable children; adapt the rest."""
        if not _stop(child) and _columnar_capable(child):
            return as_kernel(child)
        return ToColumnsNode(walk(child), config.batch_rows)

    def _stop(node: PlanNode) -> bool:
        return (
            isinstance(node, (ScanNode, CacheNode))
            or hasattr(node, "parallel_info")
            or hasattr(node, "columnar_info")
        )

    def walk(node: PlanNode) -> PlanNode:
        if _stop(node):
            return node
        if _columnar_capable(node) and _columnar_worthwhile(node):
            kernel = as_kernel(node)
            log.append(f"columnarized subtree at {node.describe()}")
            return ToRowsNode(kernel)
        node._children = tuple(walk(child) for child in node.children)
        return node

    return walk(root), log
