"""The database catalog: tables, registered boxes, and saved programs.

"For every relation known to the Tioga-2 system there is a box of the same
name" (§4) and programs are saved "in the database" (Fig 2, Save Program).
The catalog is the single namespace behind the menu bar's *tables*, *boxes*,
and program menus (§3).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.dbms.relation import Table
from repro.dbms.tuples import Schema
from repro.errors import CatalogError

__all__ = ["Database"]


class Database:
    """An in-memory object-relational database instance."""

    def __init__(self, name: str = "tioga"):
        self.name = name
        self._tables: dict[str, Table] = {}
        self._programs: dict[str, dict[str, Any]] = {}
        self._boxes: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create and register an empty table."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def add_table(self, table: Table) -> Table:
        """Register an existing :class:`Table` under its own name."""
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"no table {name!r} to drop")
        del self._tables[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError as exc:
            known = ", ".join(sorted(self._tables)) or "(none)"
            raise CatalogError(f"unknown table {name!r}; known tables: {known}") from exc

    def table_names(self) -> list[str]:
        """The menu of all tables available (§3)."""
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    # ------------------------------------------------------------------
    # Registered boxes (big-programmer functions, §1.2 principle 5)
    # ------------------------------------------------------------------

    def register_box(self, name: str, spec: Any, replace: bool = False) -> None:
        """Register a box specification under ``name``.

        The dataflow layer defines the spec objects; the catalog is only the
        namespace.  Encapsulated boxes (§4.1) are registered here too.
        """
        if name in self._boxes and not replace:
            raise CatalogError(f"box {name!r} already registered")
        self._boxes[name] = spec

    def box(self, name: str) -> Any:
        try:
            return self._boxes[name]
        except KeyError as exc:
            known = ", ".join(sorted(self._boxes)) or "(none)"
            raise CatalogError(f"unknown box {name!r}; known boxes: {known}") from exc

    def box_names(self) -> list[str]:
        """The menu of all boxes available (§3)."""
        return sorted(self._boxes)

    def has_box(self, name: str) -> bool:
        return name in self._boxes

    def unregister_box(self, name: str) -> None:
        if name not in self._boxes:
            raise CatalogError(f"no box {name!r} to unregister")
        del self._boxes[name]

    # ------------------------------------------------------------------
    # Saved programs (Fig 2: Save Program / Add Program / Load Program)
    # ------------------------------------------------------------------

    def save_program(self, name: str, payload: dict[str, Any]) -> None:
        """Store a serialized program (a JSON-compatible dict)."""
        self._programs[name] = payload

    def load_program(self, name: str) -> dict[str, Any]:
        try:
            return self._programs[name]
        except KeyError as exc:
            known = ", ".join(sorted(self._programs)) or "(none)"
            raise CatalogError(
                f"unknown program {name!r}; saved programs: {known}"
            ) from exc

    def program_names(self) -> list[str]:
        return sorted(self._programs)

    def delete_program(self, name: str) -> None:
        if name not in self._programs:
            raise CatalogError(f"no program {name!r} to delete")
        del self._programs[name]

    def has_program(self, name: str) -> bool:
        return name in self._programs

    # ------------------------------------------------------------------

    def tables(self) -> Iterable[Table]:
        return self._tables.values()

    def __repr__(self) -> str:
        return (
            f"Database({self.name!r}: {len(self._tables)} tables, "
            f"{len(self._boxes)} boxes, {len(self._programs)} programs)"
        )
