"""The database catalog: tables, registered boxes, and saved programs.

"For every relation known to the Tioga-2 system there is a box of the same
name" (§4) and programs are saved "in the database" (Fig 2, Save Program).
The catalog is the single namespace behind the menu bar's *tables*, *boxes*,
and program menus (§3).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterable

from repro.dbms import types as T
from repro.dbms.relation import RowSet, Table
from repro.dbms.tuples import Schema
from repro.errors import CatalogError

__all__ = ["ColumnStats", "Database", "TableStats", "stats_for"]


# ---------------------------------------------------------------------------
# Column statistics: the abstract interpreter's entry facts
# ---------------------------------------------------------------------------


class ColumnStats:
    """Value-range facts about one column of an immutable row set.

    ``minimum``/``maximum`` are populated for numeric columns only (``None``
    elsewhere, and for empty tables); ``has_nan`` records whether any float
    ``NaN`` was seen — a NaN is outside every interval, so range-based
    proofs over columns containing one must widen to unknown.
    """

    __slots__ = ("name", "type", "minimum", "maximum", "has_nan")

    def __init__(
        self,
        name: str,
        type_: T.AtomicType,
        minimum: Any = None,
        maximum: Any = None,
        has_nan: bool = False,
    ):
        self.name = name
        self.type = type_
        self.minimum = minimum
        self.maximum = maximum
        self.has_nan = has_nan

    @property
    def constant(self) -> bool:
        """True when every (non-NaN-free) value equals ``minimum``."""
        return (
            self.minimum is not None
            and self.minimum == self.maximum
            and not self.has_nan
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ColumnStats({self.name!r}, {self.type}, "
            f"[{self.minimum}, {self.maximum}], nan={self.has_nan})"
        )


class TableStats:
    """Row count plus per-column :class:`ColumnStats` for a row set."""

    __slots__ = ("row_count", "columns")

    def __init__(self, row_count: int, columns: dict[str, ColumnStats]):
        self.row_count = row_count
        self.columns = columns

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TableStats({self.row_count} rows, {len(self.columns)} cols)"


_STATS_CACHE: OrderedDict[int, tuple[RowSet, TableStats]] = OrderedDict()
_STATS_CACHE_CAP = 64


def _column_minmax(rows: RowSet, name: str) -> tuple[Any, Any, bool]:
    lo = hi = None
    has_nan = False
    for row in rows:
        value = row[name]
        if isinstance(value, float) and value != value:
            has_nan = True
            continue
        if lo is None or value < lo:
            lo = value
        if hi is None or value > hi:
            hi = value
    return lo, hi, has_nan


def stats_for(rows: RowSet) -> TableStats:
    """Column stats for an immutable row set, memoized by identity.

    Row sets are immutable and :meth:`Table.snapshot` returns the same
    object until the next mutation, so identity keying doubles as
    per-version memoization for stored tables.  The cache pins the row
    sets it has seen (bounded LRU) so an ``id()`` is never reused while
    its entry is live.
    """
    key = id(rows)
    hit = _STATS_CACHE.get(key)
    if hit is not None and hit[0] is rows:
        _STATS_CACHE.move_to_end(key)
        return hit[1]
    columns: dict[str, ColumnStats] = {}
    for field in rows.schema:
        if field.type in (T.INT, T.FLOAT):
            lo, hi, has_nan = _column_minmax(rows, field.name)
            columns[field.name] = ColumnStats(
                field.name, field.type, lo, hi, has_nan
            )
        else:
            columns[field.name] = ColumnStats(field.name, field.type)
    stats = TableStats(len(rows), columns)
    _STATS_CACHE[key] = (rows, stats)
    while len(_STATS_CACHE) > _STATS_CACHE_CAP:
        _STATS_CACHE.popitem(last=False)
    return stats


class Database:
    """An in-memory object-relational database instance."""

    def __init__(self, name: str = "tioga"):
        self.name = name
        self._tables: dict[str, Table] = {}
        self._programs: dict[str, dict[str, Any]] = {}
        self._boxes: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create and register an empty table."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def add_table(self, table: Table) -> Table:
        """Register an existing :class:`Table` under its own name."""
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"no table {name!r} to drop")
        del self._tables[name]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError as exc:
            known = ", ".join(sorted(self._tables)) or "(none)"
            raise CatalogError(f"unknown table {name!r}; known tables: {known}") from exc

    def table_names(self) -> list[str]:
        """The menu of all tables available (§3)."""
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_stats(self, name: str) -> TableStats:
        """Column stats for a stored table's current contents.

        Memoized per table version: snapshots are shared until the next
        mutation, and :func:`stats_for` keys on snapshot identity.
        """
        return stats_for(self.table(name).snapshot())

    # ------------------------------------------------------------------
    # Registered boxes (big-programmer functions, §1.2 principle 5)
    # ------------------------------------------------------------------

    def register_box(self, name: str, spec: Any, replace: bool = False) -> None:
        """Register a box specification under ``name``.

        The dataflow layer defines the spec objects; the catalog is only the
        namespace.  Encapsulated boxes (§4.1) are registered here too.
        """
        if name in self._boxes and not replace:
            raise CatalogError(f"box {name!r} already registered")
        self._boxes[name] = spec

    def box(self, name: str) -> Any:
        try:
            return self._boxes[name]
        except KeyError as exc:
            known = ", ".join(sorted(self._boxes)) or "(none)"
            raise CatalogError(f"unknown box {name!r}; known boxes: {known}") from exc

    def box_names(self) -> list[str]:
        """The menu of all boxes available (§3)."""
        return sorted(self._boxes)

    def has_box(self, name: str) -> bool:
        return name in self._boxes

    def unregister_box(self, name: str) -> None:
        if name not in self._boxes:
            raise CatalogError(f"no box {name!r} to unregister")
        del self._boxes[name]

    # ------------------------------------------------------------------
    # Saved programs (Fig 2: Save Program / Add Program / Load Program)
    # ------------------------------------------------------------------

    def save_program(self, name: str, payload: dict[str, Any]) -> None:
        """Store a serialized program (a JSON-compatible dict)."""
        self._programs[name] = payload

    def load_program(self, name: str) -> dict[str, Any]:
        try:
            return self._programs[name]
        except KeyError as exc:
            known = ", ".join(sorted(self._programs)) or "(none)"
            raise CatalogError(
                f"unknown program {name!r}; saved programs: {known}"
            ) from exc

    def program_names(self) -> list[str]:
        return sorted(self._programs)

    def delete_program(self, name: str) -> None:
        if name not in self._programs:
            raise CatalogError(f"no program {name!r} to delete")
        del self._programs[name]

    def has_program(self, name: str) -> bool:
        return name in self._programs

    # ------------------------------------------------------------------

    def tables(self) -> Iterable[Table]:
        return self._tables.values()

    def __repr__(self) -> str:
        return (
            f"Database({self.name!r}: {len(self._tables)} tables, "
            f"{len(self._boxes)} boxes, {len(self._programs)} programs)"
        )
