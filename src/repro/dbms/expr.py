"""Typed expression AST for the query language.

Attribute definitions "may be given in a general query language" (§5.3) and
Restrict/Join/Replicate take predicates in "the underlying query language"
(§4.2, §7.4).  This module is that language's core: a small, statically typed
expression AST with

* literals, field references, unary/binary operators, conditionals, and
  function calls,
* type inference against a :class:`~repro.dbms.tuples.Schema` (errors are
  reported before any data flows), and
* evaluation against a tuple.

The function table is extensible: the display layer registers drawable
constructors (``circle``, ``text_of`` …) so display attributes are ordinary
expressions of the base tuple, exactly as the paper prescribes.
"""

from __future__ import annotations

import datetime as _dt
import math
from typing import Any, Callable, Mapping, Sequence

from repro.dbms import types as T
from repro.dbms.tuples import Schema
from repro.errors import EvaluationError, ExpressionError, TypeCheckError

__all__ = [
    "Expr",
    "Literal",
    "FieldRef",
    "Unary",
    "Binary",
    "Conditional",
    "Call",
    "FunctionDef",
    "register_function",
    "function_names",
    "lookup_function",
]


class Expr:
    """Abstract expression node.

    Every node carries an optional ``pos`` — the character offset of its
    defining token in the source it was parsed from (``None`` for nodes
    built programmatically).  Diagnostics use it to point at the exact
    token, including inside nested conditional branches.
    """

    pos: int | None

    def infer(self, schema: Schema) -> T.AtomicType:
        """Infer this expression's type against ``schema`` or raise."""
        raise NotImplementedError

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        """Evaluate against a row supporting ``row[name]``."""
        raise NotImplementedError

    def fields_used(self) -> set[str]:
        """Names of all fields this expression references."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


class Literal(Expr):
    """A constant of any atomic type."""

    __slots__ = ("value", "type", "pos")

    def __init__(self, value: Any, *, pos: int | None = None):
        self.type = T.infer_type(value)
        self.value = value
        self.pos = pos

    def infer(self, schema: Schema) -> T.AtomicType:
        del schema
        return self.type

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        del row
        return self.value

    def fields_used(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        if self.type is T.TEXT:
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if self.type is T.DATE:
            return f"date('{self.value.isoformat()}')"
        return str(self.value)


class FieldRef(Expr):
    """A reference to a field of the input tuple (the paper's ``t.l``)."""

    __slots__ = ("name", "pos")

    def __init__(self, name: str, *, pos: int | None = None):
        self.name = name
        self.pos = pos

    def infer(self, schema: Schema) -> T.AtomicType:
        if self.name not in schema:
            raise TypeCheckError(
                f"unknown field {self.name!r}; schema has ({', '.join(schema.names)})"
            )
        return schema.type_of(self.name)

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        try:
            return row[self.name]
        except KeyError as exc:  # pragma: no cover - guarded by infer()
            raise EvaluationError(f"row has no field {self.name!r}") from exc

    def fields_used(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


_UNARY_OPS = {"-", "not"}


class Unary(Expr):
    """Unary negation (numeric) and logical not."""

    __slots__ = ("op", "operand", "pos")

    def __init__(self, op: str, operand: Expr, *, pos: int | None = None):
        if op not in _UNARY_OPS:
            raise ExpressionError(f"unknown unary operator {op!r}")
        self.op = op
        self.operand = operand
        self.pos = pos

    def infer(self, schema: Schema) -> T.AtomicType:
        inner = self.operand.infer(schema)
        if self.op == "-":
            if not T.numeric(inner):
                raise TypeCheckError(f"unary - requires a numeric operand, got {inner}")
            return inner
        if inner is not T.BOOL:
            raise TypeCheckError(f"'not' requires a bool operand, got {inner}")
        return T.BOOL

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        value = self.operand.evaluate(row)
        if self.op == "-":
            return -value
        return not value

    def fields_used(self) -> set[str]:
        return self.operand.fields_used()

    def __str__(self) -> str:
        if self.op == "not":
            return f"(not {self.operand})"
        return f"(-{self.operand})"


_ARITH = {"+", "-", "*", "/", "%"}
_COMPARE = {"=", "!=", "<", "<=", ">", ">="}
_LOGIC = {"and", "or"}
_CONCAT = {"||"}
_COMPARABLE = (T.INT, T.FLOAT, T.TEXT, T.DATE, T.BOOL)


class Binary(Expr):
    """Arithmetic, comparison, logical connectives, and text concatenation."""

    __slots__ = ("op", "left", "right", "pos")

    def __init__(
        self, op: str, left: Expr, right: Expr, *, pos: int | None = None
    ):
        if op not in _ARITH | _COMPARE | _LOGIC | _CONCAT:
            raise ExpressionError(f"unknown binary operator {op!r}")
        self.op = op
        self.left = left
        self.right = right
        self.pos = pos

    def infer(self, schema: Schema) -> T.AtomicType:
        lt = self.left.infer(schema)
        rt = self.right.infer(schema)
        if self.op in _ARITH:
            if not (T.numeric(lt) and T.numeric(rt)):
                raise TypeCheckError(
                    f"operator {self.op!r} requires numeric operands, got {lt} and {rt}"
                )
            if self.op == "/":
                return T.FLOAT
            return T.FLOAT if T.FLOAT in (lt, rt) else T.INT
        if self.op in _COMPARE:
            compatible = lt is rt or (T.numeric(lt) and T.numeric(rt))
            if not compatible or lt not in _COMPARABLE:
                raise TypeCheckError(
                    f"cannot compare {lt} with {rt} using {self.op!r}"
                )
            return T.BOOL
        if self.op in _LOGIC:
            if lt is not T.BOOL or rt is not T.BOOL:
                raise TypeCheckError(
                    f"operator {self.op!r} requires bool operands, got {lt} and {rt}"
                )
            return T.BOOL
        # concatenation
        if lt is not T.TEXT or rt is not T.TEXT:
            raise TypeCheckError(f"'||' requires text operands, got {lt} and {rt}")
        return T.TEXT

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        op = self.op
        if op == "and":
            return bool(self.left.evaluate(row)) and bool(self.right.evaluate(row))
        if op == "or":
            return bool(self.left.evaluate(row)) or bool(self.right.evaluate(row))
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise EvaluationError(f"division by zero in {self}")
            return left / right
        if op == "%":
            if right == 0:
                raise EvaluationError(f"modulo by zero in {self}")
            return left % right
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        return left + right  # "||" on two strings

    def fields_used(self) -> set[str]:
        return self.left.fields_used() | self.right.fields_used()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class Conditional(Expr):
    """``if cond then a else b`` with matching branch types."""

    __slots__ = ("condition", "then_branch", "else_branch", "pos")

    def __init__(
        self,
        condition: Expr,
        then_branch: Expr,
        else_branch: Expr,
        *,
        pos: int | None = None,
    ):
        self.condition = condition
        self.then_branch = then_branch
        self.else_branch = else_branch
        self.pos = pos

    def infer(self, schema: Schema) -> T.AtomicType:
        ct = self.condition.infer(schema)
        if ct is not T.BOOL:
            raise TypeCheckError(f"'if' condition must be bool, got {ct}")
        tt = self.then_branch.infer(schema)
        et = self.else_branch.infer(schema)
        if tt is et:
            return tt
        if T.numeric(tt) and T.numeric(et):
            return T.FLOAT
        raise TypeCheckError(f"'if' branches have mismatched types {tt} and {et}")

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        if self.condition.evaluate(row):
            return self.then_branch.evaluate(row)
        return self.else_branch.evaluate(row)

    def fields_used(self) -> set[str]:
        return (
            self.condition.fields_used()
            | self.then_branch.fields_used()
            | self.else_branch.fields_used()
        )

    def __str__(self) -> str:
        return f"(if {self.condition} then {self.then_branch} else {self.else_branch})"


class FunctionDef:
    """A callable registered in the expression language.

    ``infer`` receives the argument types and returns the result type (or
    raises :class:`TypeCheckError`); ``apply`` receives the argument values.
    """

    __slots__ = ("name", "infer", "apply", "doc")

    def __init__(
        self,
        name: str,
        infer: Callable[[Sequence[T.AtomicType]], T.AtomicType],
        apply: Callable[..., Any],
        doc: str = "",
    ):
        self.name = name
        self.infer = infer
        self.apply = apply
        self.doc = doc


_FUNCTIONS: dict[str, FunctionDef] = {}


def register_function(fn: FunctionDef) -> FunctionDef:
    """Register (or replace) a function available to all expressions."""
    _FUNCTIONS[fn.name] = fn
    return fn


def lookup_function(name: str) -> FunctionDef:
    try:
        return _FUNCTIONS[name]
    except KeyError as exc:
        raise ExpressionError(
            f"unknown function {name!r}; known functions: {', '.join(sorted(_FUNCTIONS))}"
        ) from exc


def function_names() -> list[str]:
    return sorted(_FUNCTIONS)


class Call(Expr):
    """A call to a registered function."""

    __slots__ = ("fn", "args", "pos")

    def __init__(
        self, name: str, args: Sequence[Expr], *, pos: int | None = None
    ):
        self.fn = lookup_function(name)
        self.args = list(args)
        self.pos = pos

    def infer(self, schema: Schema) -> T.AtomicType:
        arg_types = [arg.infer(schema) for arg in self.args]
        try:
            return self.fn.infer(arg_types)
        except TypeCheckError as exc:
            raise TypeCheckError(f"in call to {self.fn.name}(): {exc}") from exc

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        values = [arg.evaluate(row) for arg in self.args]
        try:
            return self.fn.apply(*values)
        except (EvaluationError, TypeCheckError):
            raise
        except Exception as exc:
            raise EvaluationError(f"error in {self.fn.name}(): {exc}") from exc

    def fields_used(self) -> set[str]:
        used: set[str] = set()
        for arg in self.args:
            used |= arg.fields_used()
        return used

    def __str__(self) -> str:
        return f"{self.fn.name}({', '.join(map(str, self.args))})"


# ---------------------------------------------------------------------------
# Builtin functions
# ---------------------------------------------------------------------------


def _want(n: int, arg_types: Sequence[T.AtomicType], name: str) -> None:
    if len(arg_types) != n:
        raise TypeCheckError(f"{name} expects {n} argument(s), got {len(arg_types)}")


def _numeric_unary(name: str, result_float: bool = True):
    def infer(arg_types: Sequence[T.AtomicType]) -> T.AtomicType:
        _want(1, arg_types, name)
        if not T.numeric(arg_types[0]):
            raise TypeCheckError(f"argument must be numeric, got {arg_types[0]}")
        return T.FLOAT if result_float else arg_types[0]

    return infer


def _register_builtins() -> None:
    register_function(
        FunctionDef(
            "abs",
            _numeric_unary("abs", result_float=False),
            abs,
            "Absolute value.",
        )
    )
    register_function(
        FunctionDef("sqrt", _numeric_unary("sqrt"), _safe_sqrt, "Square root.")
    )
    register_function(
        FunctionDef("ln", _numeric_unary("ln"), _safe_ln, "Natural logarithm.")
    )
    register_function(
        FunctionDef("log10", _numeric_unary("log10"), _safe_log10, "Base-10 logarithm.")
    )
    register_function(FunctionDef("exp", _numeric_unary("exp"), math.exp, "e**x."))
    register_function(FunctionDef("sin", _numeric_unary("sin"), math.sin, "Sine."))
    register_function(FunctionDef("cos", _numeric_unary("cos"), math.cos, "Cosine."))

    def _floorlike(name: str, fn: Callable[[float], int]) -> None:
        def infer(arg_types: Sequence[T.AtomicType]) -> T.AtomicType:
            _want(1, arg_types, name)
            if not T.numeric(arg_types[0]):
                raise TypeCheckError(f"argument must be numeric, got {arg_types[0]}")
            return T.INT

        register_function(FunctionDef(name, infer, fn, f"{name} to integer."))

    _floorlike("floor", lambda v: int(math.floor(v)))
    _floorlike("ceil", lambda v: int(math.ceil(v)))
    _floorlike("round", lambda v: int(round(v)))

    def _minmax(name: str, fn: Callable[..., Any]) -> None:
        def infer(arg_types: Sequence[T.AtomicType]) -> T.AtomicType:
            if len(arg_types) < 2:
                raise TypeCheckError(f"{name} expects at least 2 arguments")
            if all(T.numeric(at) for at in arg_types):
                return T.FLOAT if T.FLOAT in arg_types else T.INT
            first = arg_types[0]
            if all(at is first for at in arg_types) and first in (T.TEXT, T.DATE):
                return first
            raise TypeCheckError(f"{name} arguments must be all-numeric or same type")

        register_function(FunctionDef(name, infer, fn, f"{name} of the arguments."))

    _minmax("min", min)
    _minmax("max", max)

    def _date_part(name: str, extract: Callable[[_dt.date], int]) -> None:
        def infer(arg_types: Sequence[T.AtomicType]) -> T.AtomicType:
            _want(1, arg_types, name)
            if arg_types[0] is not T.DATE:
                raise TypeCheckError(f"argument must be a date, got {arg_types[0]}")
            return T.INT

        register_function(FunctionDef(name, infer, extract, f"{name} of a date."))

    _date_part("year", lambda d: d.year)
    _date_part("month", lambda d: d.month)
    _date_part("day", lambda d: d.day)
    _date_part("day_of_year", lambda d: d.timetuple().tm_yday)

    def _date_infer(arg_types: Sequence[T.AtomicType]) -> T.AtomicType:
        _want(1, arg_types, "date")
        if arg_types[0] is not T.TEXT:
            raise TypeCheckError(f"argument must be text, got {arg_types[0]}")
        return T.DATE

    register_function(
        FunctionDef("date", _date_infer, T.DATE.parse, "Parse 'YYYY-MM-DD'.")
    )

    def _text_unary(name: str, fn: Callable[[str], Any], result: T.AtomicType) -> None:
        def infer(arg_types: Sequence[T.AtomicType]) -> T.AtomicType:
            _want(1, arg_types, name)
            if arg_types[0] is not T.TEXT:
                raise TypeCheckError(f"argument must be text, got {arg_types[0]}")
            return result

        register_function(FunctionDef(name, infer, fn, f"{name} of a string."))

    _text_unary("lower", str.lower, T.TEXT)
    _text_unary("upper", str.upper, T.TEXT)
    _text_unary("length", len, T.INT)

    def _substr_infer(arg_types: Sequence[T.AtomicType]) -> T.AtomicType:
        _want(3, arg_types, "substr")
        if arg_types[0] is not T.TEXT or arg_types[1] is not T.INT or arg_types[2] is not T.INT:
            raise TypeCheckError("substr(text, int start, int length)")
        return T.TEXT

    register_function(
        FunctionDef(
            "substr",
            _substr_infer,
            lambda s, start, length: s[start : start + length],
            "Substring by 0-based start and length.",
        )
    )

    def _str_infer(arg_types: Sequence[T.AtomicType]) -> T.AtomicType:
        _want(1, arg_types, "str")
        return T.TEXT

    register_function(
        FunctionDef(
            "str",
            _str_infer,
            lambda v: T.infer_type(v).default_display(v),
            "Render any value with its type's default display.",
        )
    )

    def _like_infer(arg_types: Sequence[T.AtomicType]) -> T.AtomicType:
        _want(2, arg_types, "like")
        if arg_types[0] is not T.TEXT or arg_types[1] is not T.TEXT:
            raise TypeCheckError("like(text, pattern) takes two text arguments")
        return T.BOOL

    register_function(
        FunctionDef(
            "like",
            _like_infer,
            _like_match,
            "SQL LIKE matching: % matches any run, _ matches one character.",
        )
    )


def _like_match(value: str, pattern: str) -> bool:
    """SQL LIKE semantics with % and _ wildcards (case-sensitive)."""
    import re

    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in pattern
    )
    return re.fullmatch(regex, value) is not None


def _safe_sqrt(value: float) -> float:
    if value < 0:
        raise EvaluationError(f"sqrt of negative value {value}")
    return math.sqrt(value)


def _safe_ln(value: float) -> float:
    if value <= 0:
        raise EvaluationError(f"ln of non-positive value {value}")
    return math.log(value)


def _safe_log10(value: float) -> float:
    if value <= 0:
        raise EvaluationError(f"log10 of non-positive value {value}")
    return math.log10(value)


_register_builtins()
