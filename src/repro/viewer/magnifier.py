"""Magnifying glasses: viewers within viewers (Section 7.2).

"A user may create a magnifying glass by placing a viewer inside of another
viewer.  Typically, a user will place a copy of the current viewer inside of
itself; he will then zoom the inner viewer, so it magnifies what is in the
outer viewer.  Magnifying glasses must have the same dimension as their
containing viewer.  The inner and outer viewers may be slaved so that they
move in unison.  Magnifying glasses may also be deleted."

Unlike a wormhole, a magnifying glass shows *the same viewing space* (or an
alternative display of the same relation, as in Figure 9 where the magnifier
shows precipitation over a temperature display) — it is screen furniture of
its containing viewer, not a passage to another canvas.
"""

from __future__ import annotations

from typing import Callable

from repro.display.displayable import (
    Composite,
    DisplayableRelation,
    Group,
    ensure_composite,
)
from repro.errors import ViewerError
from repro.render.canvas import Canvas
from repro.render.scene import SceneStats, ViewState, render_composite
from repro.viewer.viewer import Viewer

__all__ = ["MagnifyingGlass"]


class MagnifyingGlass:
    """An inner viewer rendered into a rectangle of its containing viewer.

    ``rect`` is (x, y, width, height) in parent screen pixels.  The glass
    magnifies the world point under the rect's center by ``magnification``
    (inner elevation = outer elevation / magnification).  An optional
    ``source`` shows an alternative displayable of the same dimension — the
    Figure-9 construction feeds it the output of a Swap Attributes box.
    """

    def __init__(
        self,
        parent: Viewer,
        rect: tuple[float, float, float, float],
        magnification: float = 4.0,
        member: str | None = None,
        source: Callable[[], Composite | DisplayableRelation] | None = None,
        slaved: bool = True,
    ):
        if magnification <= 0:
            raise ViewerError(f"magnification must be positive, got {magnification}")
        x, y, w, h = rect
        if w < 4 or h < 4:
            raise ViewerError(f"magnifier rectangle {rect} is too small")
        self.parent = parent
        self.rect = (float(x), float(y), float(w), float(h))
        self.magnification = float(magnification)
        self.member = member or parent.member_names()[0]
        self.source = source
        self.slaved = slaved
        self._world_offset: tuple[float, float] | None = None
        self.deleted = False

        inner = self._inner_composite()
        outer_dim = parent.dimension(self.member)
        if inner.dimension != outer_dim:
            raise ViewerError(
                f"magnifying glasses must have the same dimension as their "
                f"containing viewer; inner is {inner.dimension}-dimensional, "
                f"outer is {outer_dim}-dimensional"
            )

    # ------------------------------------------------------------------

    def _inner_composite(self) -> Composite:
        if self.source is not None:
            displayable = self.source()
            if isinstance(displayable, Group):
                raise ViewerError(
                    "a magnifying glass shows a composite, not a group"
                )
            return ensure_composite(displayable)
        return self.parent._member_composite(self.member)

    def _center_world(self) -> tuple[float, float]:
        """The world point the glass is centered over."""
        x, y, w, h = self.rect
        outer_view = self.parent.view(self.member)
        if self.slaved or self._world_offset is None:
            wx, wy = outer_view.to_world(x + w / 2.0, y + h / 2.0)
            if not self.slaved:
                self._world_offset = (
                    wx - outer_view.center[0],
                    wy - outer_view.center[1],
                )
            return wx, wy
        return (
            outer_view.center[0] + self._world_offset[0],
            outer_view.center[1] + self._world_offset[1],
        )

    def inner_view(self) -> ViewState:
        """The magnified view state derived from the parent's position."""
        outer_view = self.parent.view(self.member)
        x, y, w, h = self.rect
        return ViewState(
            center=self._center_world(),
            elevation=outer_view.elevation / self.magnification,
            slider_ranges=dict(outer_view.slider_ranges),
            viewport=(max(1, int(w) - 2), max(1, int(h) - 2)),
            world_per_elevation=outer_view.world_per_elevation,
        )

    def render_onto(self, canvas: Canvas, cull: bool = True) -> SceneStats:
        """Paint the glass onto the parent's rendered canvas."""
        if self.deleted:
            raise ViewerError("this magnifying glass has been deleted")
        view = self.inner_view()
        sub_canvas = type(canvas)(*view.viewport)
        stats = SceneStats()
        render_composite(
            sub_canvas,
            self._inner_composite(),
            view,
            self.parent.resolver,
            cull=cull,
            stats=stats,
        )
        x, y, w, h = self.rect
        canvas.blit(sub_canvas, x + 1, y + 1)
        canvas.draw_rect(x, y, x + w - 1, y + h - 1, (64, 64, 64), 1)
        return stats

    def move_to(self, x: float, y: float) -> None:
        """Drag the glass to a new screen position (same size)."""
        __, __, w, h = self.rect
        self.rect = (float(x), float(y), w, h)
        self._world_offset = None

    def set_magnification(self, magnification: float) -> None:
        if magnification <= 0:
            raise ViewerError(f"magnification must be positive, got {magnification}")
        self.magnification = float(magnification)

    def delete(self) -> None:
        """Magnifying glasses may also be deleted (§7.2)."""
        self.deleted = True

    def __repr__(self) -> str:
        return (
            f"MagnifyingGlass(on {self.parent.name!r}, rect={self.rect}, "
            f"x{self.magnification})"
        )
