"""Viewers: the boxes that translate displayables into screen output (§2, §3).

A :class:`ViewerBox` is an ordinary dataflow sink; the :class:`Viewer`
runtime object owns the box's view state — an (n+1)-dimensional position per
group member (pan in n dimensions plus elevation) and slider ranges — and
renders the demanded displayable through :mod:`repro.render.scene`.

"If an n-dimensional relation R is the input to a viewer, then the viewer has
an n+1-dimensional position ... The user controls the position by panning in
the n viewing dimensions and by zooming, which changes the elevation."

Movement notifications feed the slaving manager (§7.1); the display list from
the last render feeds picking, which starts the Section-8 update path and
wormhole traversal (§6.2).
"""

from __future__ import annotations

import warnings
from typing import Any, Callable

from repro.dataflow.box import Box
from repro.dataflow.ports import Port
from repro.dataflow.registry import register_box_class
from repro.display.displayable import (
    Composite,
    DisplayableRelation,
    Group,
    ensure_composite,
)
from repro.display.drawables import ViewerDrawable
from repro.display.elevation import ElevationMap
from repro.errors import ViewerError
from repro.obs.metrics import global_registry
from repro.obs.trace import Tracer, current_tracer, push_tracer
from repro.render.canvas import Canvas
from repro.render.scene import (
    CanvasResolver,
    RenderedItem,
    SceneStats,
    ViewState,
    render_composite,
    render_group,
)

__all__ = ["ViewerBox", "RenderResult", "Viewer", "MAIN_MEMBER"]

MAIN_MEMBER = "main"
"""Member key used for non-group inputs (a composite has one view state)."""


class ViewerBox(Box):
    """The viewer as a box: one displayable input, no outputs (a sink).

    The input port is typed G; by the equivalences R = Composite(R) and
    C = Group(C) any displayable connects.  View positions live on the
    :class:`Viewer` runtime, not in params — panning is interaction, not
    program structure (saving a program stores the box, not the scroll
    position).
    """

    type_name = "Viewer"

    def __init__(
        self,
        name: str = "canvas",
        width: int = 640,
        height: int = 480,
        world_per_elevation: float = 1.0,
    ):
        super().__init__(
            {
                "name": name,
                "width": width,
                "height": height,
                "world_per_elevation": world_per_elevation,
            }
        )
        self.inputs = [Port("in", "G")]
        self.outputs = []

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        # A viewer never fires through the engine (no outputs); rendering is
        # driven by the Viewer runtime demanding the input.
        del inputs, context
        return {}


register_box_class(ViewerBox)


class RenderResult:
    """One rendered frame: the canvas, per-member display lists, statistics.

    ``tracer`` is set when the frame was rendered with ``render(trace=...)``
    — it holds the frame's span tree, ready for
    :func:`repro.obs.chrome_trace` / :func:`repro.obs.render_tree`.
    """

    def __init__(
        self,
        canvas: Canvas,
        items: dict[str, list[RenderedItem]],
        stats: SceneStats,
        tracer: "Tracer | None" = None,
    ):
        self.canvas = canvas
        self.items = items
        self.stats = stats
        self.tracer = tracer

    def all_items(self) -> list[RenderedItem]:
        flat: list[RenderedItem] = []
        for member_items in self.items.values():
            flat.extend(member_items)
        return flat

    def __repr__(self) -> str:
        return f"RenderResult({self.canvas!r}, {len(self.all_items())} items)"


class Viewer:
    """The runtime state and behaviour of one canvas window's viewer.

    ``source`` is a zero-argument callable returning the current input
    displayable — typically a closure over the engine and the viewer box, so
    every render sees the current program and database state (incremental
    programming, §1.2).
    """

    def __init__(
        self,
        name: str,
        source: Callable[[], Composite | Group | DisplayableRelation],
        width: int = 640,
        height: int = 480,
        world_per_elevation: float = 1.0,
        resolver: CanvasResolver | None = None,
    ):
        self.name = name
        self.source = source
        self.width = int(width)
        self.height = int(height)
        self.world_per_elevation = float(world_per_elevation)
        self.resolver = resolver
        self.views: dict[str, ViewState] = {}
        self.moved_callbacks: list[Callable[["Viewer", str], None]] = []
        self.last_result: RenderResult | None = None

    # ------------------------------------------------------------------
    # Input shape
    # ------------------------------------------------------------------

    def displayable(self) -> Composite | Group | DisplayableRelation:
        return self.source()

    def is_group(self) -> bool:
        return isinstance(self.displayable(), Group)

    def member_names(self) -> list[str]:
        displayable = self.displayable()
        if isinstance(displayable, Group):
            return displayable.member_names()
        return [MAIN_MEMBER]

    def _member_composite(self, member: str) -> Composite:
        displayable = self.displayable()
        if isinstance(displayable, Group):
            return displayable.member(member)
        if member != MAIN_MEMBER:
            raise ViewerError(
                f"viewer {self.name!r} has no member {member!r} (not a group)"
            )
        return ensure_composite(displayable)

    def dimension(self, member: str | None = None) -> int:
        """The dimension of (one member of) the viewed displayable."""
        return self._member_composite(member or MAIN_MEMBER).dimension

    def _sync_views(self) -> None:
        """Create default view states for new members; drop stale ones."""
        names = self.member_names()
        for name in names:
            if name not in self.views:
                self.views[name] = self._default_view(name)
        for stale in [name for name in self.views if name not in names]:
            del self.views[stale]

    def _default_view(self, member: str) -> ViewState:
        composite = self._member_composite(member)
        sliders: dict[str, tuple[float, float]] = {}
        for dim in composite.slider_dims:
            sliders[dim] = (float("-inf"), float("inf"))
        return ViewState(
            center=(0.0, 0.0),
            elevation=100.0,
            slider_ranges=sliders,
            viewport=(self.width, self.height),
            world_per_elevation=self.world_per_elevation,
        )

    def view(self, member: str | None = None) -> ViewState:
        self._sync_views()
        member = member or self._only_member()
        try:
            return self.views[member]
        except KeyError as exc:
            raise ViewerError(
                f"viewer {self.name!r} has no member {member!r}; "
                f"members: {self.member_names()}"
            ) from exc

    def _only_member(self) -> str:
        names = self.member_names()
        if len(names) == 1:
            return names[0]
        raise ViewerError(
            f"viewer {self.name!r} shows a group "
            f"({', '.join(names)}); name the member to address"
        )

    # ------------------------------------------------------------------
    # Position control (§3: scroll bars, sliders, elevation control)
    # ------------------------------------------------------------------

    def _pan(self, dx: float, dy: float, member: str | None = None) -> None:
        """Pan in the two screen dimensions by world-unit deltas."""
        view = self.view(member)
        view.center = (view.center[0] + dx, view.center[1] + dy)
        self._notify_moved(member)

    def _pan_to(self, cx: float, cy: float, member: str | None = None) -> None:
        view = self.view(member)
        view.center = (float(cx), float(cy))
        self._notify_moved(member)

    def _set_elevation(self, elevation: float, member: str | None = None) -> None:
        """The elevation control: drag the dashed line in the elevation map."""
        if elevation <= 0:
            raise ViewerError(
                f"elevation must stay positive while viewing (got {elevation}); "
                "descending to zero passes through a wormhole — use the "
                "wormhole traversal API"
            )
        self.view(member).elevation = float(elevation)
        self._notify_moved(member)

    def _zoom(self, factor: float, member: str | None = None) -> None:
        """Zoom in (factor > 1 descends; elevation divides by the factor)."""
        if factor <= 0:
            raise ViewerError(f"zoom factor must be positive, got {factor}")
        view = self.view(member)
        view.elevation = view.elevation / factor
        self._notify_moved(member)

    def _set_slider(
        self, dim: str, low: float, high: float, member: str | None = None
    ) -> None:
        """Set a slider dimension's visible range (§3)."""
        view = self.view(member)
        composite = self._member_composite(member or self._only_member())
        if dim not in composite.slider_dims:
            raise ViewerError(
                f"viewer {self.name!r} has no slider dimension {dim!r}; "
                f"dimensions: {composite.slider_dims}"
            )
        if low > high:
            raise ViewerError(f"slider range [{low}, {high}] is empty")
        view.slider_ranges[dim] = (float(low), float(high))
        self._notify_moved(member)

    # Deprecated direct-mutation surface.  Demands now route through the
    # protocol layer (``Session.pan`` and friends build Command dataclasses
    # dispatched by CommandExecutor); these shims keep one release of
    # compatibility for code that mutated viewers directly.

    def _deprecated(self, method: str) -> None:
        warnings.warn(
            f"Viewer.{method} is deprecated and will be removed in the next "
            f"release; route the demand through Session.{method} (the "
            "repro.protocol command layer) instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def pan(self, dx: float, dy: float, member: str | None = None) -> None:
        """Deprecated: use :meth:`Session.pan` (protocol command layer)."""
        self._deprecated("pan")
        self._pan(dx, dy, member)

    def pan_to(self, cx: float, cy: float, member: str | None = None) -> None:
        """Deprecated: use :meth:`Session.pan_to` (protocol command layer)."""
        self._deprecated("pan_to")
        self._pan_to(cx, cy, member)

    def set_elevation(self, elevation: float, member: str | None = None) -> None:
        """Deprecated: use :meth:`Session.set_elevation`."""
        self._deprecated("set_elevation")
        self._set_elevation(elevation, member)

    def zoom(self, factor: float, member: str | None = None) -> None:
        """Deprecated: use :meth:`Session.zoom` (protocol command layer)."""
        self._deprecated("zoom")
        self._zoom(factor, member)

    def set_slider(
        self, dim: str, low: float, high: float, member: str | None = None
    ) -> None:
        """Deprecated: use :meth:`Session.set_slider`."""
        self._deprecated("set_slider")
        self._set_slider(dim, low, high, member)

    def slider_dims(self, member: str | None = None) -> tuple[str, ...]:
        return self._member_composite(member or self._only_member()).slider_dims

    def _notify_moved(self, member: str | None) -> None:
        member = member or self.member_names()[0]
        for callback in list(self.moved_callbacks):
            callback(self, member)

    # ------------------------------------------------------------------
    # Rendering and picking
    # ------------------------------------------------------------------

    def render(
        self, cull: bool = True, trace: "Tracer | bool | None" = None
    ) -> RenderResult:
        """Render the current input through the current position(s).

        ``trace`` opts this render into span recording: pass ``True`` for a
        fresh tracer (returned on ``result.tracer``), or an existing
        :class:`~repro.obs.Tracer` to append to.  With ``trace=None`` the
        ambient tracer applies (enabled by ``REPRO_TRACE=1`` or
        :func:`repro.obs.push_tracer`, a no-op otherwise).
        """
        if trace is not None:
            tracer = Tracer(enabled=True) if trace is True else trace
            with push_tracer(tracer):
                result = self.render(cull=cull)
            result.tracer = tracer
            return result
        tracer = current_tracer()
        with tracer.span("viewer.render", viewer=self.name, cull=cull) as span:
            self._sync_views()
            displayable = self.displayable()
            canvas = Canvas(self.width, self.height)
            stats = SceneStats()
            if isinstance(displayable, Group):
                items = render_group(
                    canvas, displayable, self.views, self.resolver,
                    cull=cull, stats=stats,
                )
            else:
                view = self.views[MAIN_MEMBER]
                view.viewport = (self.width, self.height)
                flat = render_composite(
                    canvas,
                    ensure_composite(displayable),
                    view,
                    self.resolver,
                    cull=cull,
                    stats=stats,
                )
                items = {MAIN_MEMBER: flat}
            span.set(
                tuples_considered=stats.tuples_considered,
                tuples_rendered=stats.tuples_rendered,
                drawables_painted=stats.drawables_painted,
                draw_ops=canvas.draw_ops,
            )
        self._record_frame_metrics(stats, canvas)
        self.last_result = RenderResult(canvas, items, stats)
        return self.last_result

    def _record_frame_metrics(self, stats: SceneStats, canvas: Canvas) -> None:
        """Fold one frame's scene counters into the global metrics registry,
        attributed to this viewer (the 'viewer pass' label)."""
        registry = global_registry()
        registry.counter(
            "render.frames", "rendered frames per viewer"
        ).inc(label=self.name)
        registry.counter(
            "render.tuples_considered", "tuples examined before culling"
        ).inc(stats.tuples_considered, label=self.name)
        registry.counter(
            "render.tuples_rendered", "tuples that painted at least one drawable"
        ).inc(stats.tuples_rendered, label=self.name)
        registry.counter(
            "render.culled.slider", "tuples dropped by slider ranges"
        ).inc(stats.culled_by_slider, label=self.name)
        registry.counter(
            "render.culled.viewport", "tuples dropped outside the viewport"
        ).inc(stats.culled_by_viewport, label=self.name)
        registry.counter(
            "render.drawables_painted", "drawables painted onto canvases"
        ).inc(stats.drawables_painted, label=self.name)
        registry.counter(
            "render.draw_ops", "canvas primitive calls"
        ).inc(canvas.draw_ops, label=self.name)

    def explain_render(self, cull: bool = True) -> str:
        """Render and report the frame's work: scene counters plus the
        per-operator tree of every synthesized culling plan.

        The signature-preserving way to see how much display-function
        evaluation the pushdown avoided: each plan's Restrict nodes carry
        rows-in/rows-out counts.
        """
        from repro.dbms.plan import explain_plan

        result = self.render(cull=cull)
        stats = result.stats
        lines = [f"viewer {self.name!r}: {stats!r}"]
        if not stats.cull_plans:
            lines.append("(no culling plans synthesized)")
        for plan in stats.cull_plans:
            lines.append(explain_plan(plan))
        return "\n".join(lines)

    def pick(self, px: float, py: float) -> RenderedItem | None:
        """The topmost rendered item under a screen point (§8 click)."""
        result = self.last_result or self.render()
        hit: RenderedItem | None = None
        for item in result.all_items():
            x0, y0, x1, y1 = item.bbox
            if x0 <= px <= x1 and y0 <= py <= y1:
                hit = item  # later items paint on top
        return hit

    def wormhole_at(self, px: float, py: float) -> RenderedItem | None:
        """The topmost wormhole (viewer drawable) under a screen point."""
        result = self.last_result or self.render()
        hit: RenderedItem | None = None
        for item in result.all_items():
            if item.drawable_kind != "viewer":
                continue
            x0, y0, x1, y1 = item.bbox
            if x0 <= px <= x1 and y0 <= py <= y1:
                hit = item
        return hit

    def visible_wormholes(self) -> list[RenderedItem]:
        result = self.last_result or self.render()
        return [
            item for item in result.all_items() if item.drawable_kind == "viewer"
        ]

    def elevation_map(self, member: str | None = None) -> ElevationMap:
        """The elevation map for (one member of) the viewed composite (§6.1).

        "For a group displayable, a viewer shows an elevation map for only
        one member of the group at a time" — callers cycle through members.
        """
        return self._member_composite(member or self._only_member()).elevation_map()

    def __repr__(self) -> str:
        return f"Viewer({self.name!r}, {self.width}x{self.height})"
