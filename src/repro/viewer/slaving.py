"""Slaving: constraining viewers to move together (Section 7.1).

"Two viewers may be slaved together, in which case the system maintains the
relative offset between the two viewers.  When a viewer is deleted, all of
its slaving relationships are also deleted.  Slaving relationships may be
removed explicitly as well.  Slaving is only defined for two viewers with the
same dimensions."

Slaving also applies between members of a stitched group ("Components may be
slaved to one another", §7.3), so a slaving endpoint is a (viewer, member)
pair.  The manager maintains the center offset and the elevation ratio
captured when the link was made, and copies shared slider ranges — which is
how Figure 10's precipitation display follows the temperature display's date
range.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import ViewerError
from repro.viewer.viewer import MAIN_MEMBER, Viewer

__all__ = ["SlaveEnd", "SlaveLink", "SlavingManager"]


class SlaveEnd(NamedTuple):
    viewer: Viewer
    member: str

    def describe(self) -> str:
        if self.member == MAIN_MEMBER:
            return self.viewer.name
        return f"{self.viewer.name}:{self.member}"


class SlaveLink(NamedTuple):
    a: SlaveEnd
    b: SlaveEnd
    offset: tuple[float, float]  # b.center - a.center at link time
    elevation_ratio: float  # b.elevation / a.elevation at link time


class SlavingManager:
    """Owns all slaving links and propagates movement through them."""

    def __init__(self) -> None:
        self._links: list[SlaveLink] = []
        self._subscribed: set[int] = set()
        self._propagating: set[tuple[int, str]] = set()

    # ------------------------------------------------------------------

    def slave(
        self,
        a: Viewer,
        b: Viewer,
        a_member: str | None = None,
        b_member: str | None = None,
    ) -> SlaveLink:
        """Link two (viewer, member) endpoints; same dimension required."""
        end_a = SlaveEnd(a, a_member or a.member_names()[0])
        end_b = SlaveEnd(b, b_member or b.member_names()[0])
        if end_a == end_b:
            raise ViewerError("cannot slave a viewer to itself")
        dim_a = a.dimension(end_a.member)
        dim_b = b.dimension(end_b.member)
        if dim_a != dim_b:
            raise ViewerError(
                f"slaving is only defined for viewers with the same dimensions; "
                f"{end_a.describe()} is {dim_a}-dimensional, "
                f"{end_b.describe()} is {dim_b}-dimensional"
            )
        view_a = a.view(end_a.member)
        view_b = b.view(end_b.member)
        link = SlaveLink(
            end_a,
            end_b,
            (
                view_b.center[0] - view_a.center[0],
                view_b.center[1] - view_a.center[1],
            ),
            view_b.elevation / view_a.elevation,
        )
        self._links.append(link)
        for viewer in (a, b):
            if id(viewer) not in self._subscribed:
                viewer.moved_callbacks.append(self._on_moved)
                self._subscribed.add(id(viewer))
        return link

    def unslave(self, a: Viewer, b: Viewer) -> int:
        """Remove all links between two viewers; returns the count removed."""
        before = len(self._links)
        self._links = [
            link
            for link in self._links
            if not (
                {link.a.viewer, link.b.viewer} == {a, b}
            )
        ]
        return before - len(self._links)

    def remove_viewer(self, viewer: Viewer) -> int:
        """Delete a viewer's slaving relationships (viewer deletion, §7.1)."""
        before = len(self._links)
        self._links = [
            link
            for link in self._links
            if link.a.viewer is not viewer and link.b.viewer is not viewer
        ]
        if id(viewer) in self._subscribed:
            try:
                viewer.moved_callbacks.remove(self._on_moved)
            except ValueError:
                pass
            self._subscribed.discard(id(viewer))
        return before - len(self._links)

    def links_of(self, viewer: Viewer) -> list[SlaveLink]:
        return [
            link
            for link in self._links
            if link.a.viewer is viewer or link.b.viewer is viewer
        ]

    def __len__(self) -> int:
        return len(self._links)

    # ------------------------------------------------------------------

    def _on_moved(self, viewer: Viewer, member: str) -> None:
        key = (id(viewer), member)
        if key in self._propagating:
            return
        self._propagating.add(key)
        try:
            for link in self._links:
                if link.a.viewer is viewer and link.a.member == member:
                    self._follow(link.a, link.b, link.offset, link.elevation_ratio)
                elif link.b.viewer is viewer and link.b.member == member:
                    inverse = (-link.offset[0], -link.offset[1])
                    self._follow(link.b, link.a, inverse, 1.0 / link.elevation_ratio)
        finally:
            self._propagating.discard(key)

    def _follow(
        self,
        source: SlaveEnd,
        target: SlaveEnd,
        offset: tuple[float, float],
        elevation_ratio: float,
    ) -> None:
        src_view = source.viewer.view(source.member)
        dst_view = target.viewer.view(target.member)
        dst_view.center = (
            src_view.center[0] + offset[0],
            src_view.center[1] + offset[1],
        )
        dst_view.elevation = src_view.elevation * elevation_ratio
        for dim, bounds in src_view.slider_ranges.items():
            if dim in dst_view.slider_ranges:
                dst_view.slider_ranges[dim] = bounds
        target.viewer._notify_moved(target.member)
