"""Wormhole traversal between canvases (Section 6.2).

"A wormhole is a viewer onto another canvas. ... When a user zooms in on a
wormhole and reaches zero elevation he passes through the wormhole and moves
from his original canvas to the destination canvas."

The :class:`CanvasRegistry` names canvases (one per viewer) and supplies the
scene builder's resolver for nested wormhole rendering.  The
:class:`WormholeNavigator` drives traversal: descending through a wormhole
records a :class:`TravelRecord` on the travel history — the data behind the
rear view mirror (§6.3) and its "find his way home" generalization of
hypertext *back*.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.display.drawables import ViewerDrawable
from repro.errors import ViewerError
from repro.render.scene import CanvasDef, RenderedItem
from repro.viewer.viewer import Viewer

__all__ = ["CanvasRegistry", "TravelRecord", "TravelHistory", "WormholeNavigator"]


class CanvasRegistry:
    """All named canvases in a session; wormhole destinations resolve here."""

    def __init__(self) -> None:
        self._viewers: dict[str, Viewer] = {}

    def register(self, viewer: Viewer) -> Viewer:
        if viewer.name in self._viewers:
            raise ViewerError(f"a canvas named {viewer.name!r} already exists")
        self._viewers[viewer.name] = viewer
        viewer.resolver = self.resolve
        return viewer

    def unregister(self, name: str) -> Viewer:
        try:
            return self._viewers.pop(name)
        except KeyError as exc:
            raise ViewerError(f"no canvas named {name!r}") from exc

    def get(self, name: str) -> Viewer:
        try:
            return self._viewers[name]
        except KeyError as exc:
            known = ", ".join(sorted(self._viewers)) or "(none)"
            raise ViewerError(
                f"no canvas named {name!r}; canvases: {known}"
            ) from exc

    def names(self) -> list[str]:
        return sorted(self._viewers)

    def __contains__(self, name: object) -> bool:
        return name in self._viewers

    def resolve(self, name: str) -> CanvasDef:
        """The scene builder's resolver: destination displayable + defaults."""
        viewer = self.get(name)
        displayable = viewer.displayable()
        slider_ranges: dict[str, tuple[float, float]] = {}
        if not viewer.is_group():
            slider_ranges = dict(viewer.view().slider_ranges)
        return CanvasDef(displayable, slider_ranges, viewer.world_per_elevation)


class TravelRecord(NamedTuple):
    """One wormhole passage: where the user came from, and through what."""

    origin_canvas: str
    origin_member: str
    origin_center: tuple[float, float]
    origin_elevation: float
    wormhole: ViewerDrawable
    destination_canvas: str


class TravelHistory:
    """The stack of wormhole passages (most recent last)."""

    def __init__(self) -> None:
        self._records: list[TravelRecord] = []

    def push(self, record: TravelRecord) -> None:
        self._records.append(record)

    def pop(self) -> TravelRecord:
        if not self._records:
            raise ViewerError("travel history is empty; nowhere to go back to")
        return self._records.pop()

    def peek(self) -> TravelRecord | None:
        return self._records[-1] if self._records else None

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[TravelRecord]:
        return list(self._records)


class WormholeNavigator:
    """Drives wormhole traversal and *back* navigation for a session."""

    def __init__(self, registry: CanvasRegistry, history: TravelHistory | None = None):
        self.registry = registry
        self.history = history or TravelHistory()
        self.current_canvas: str | None = None

    def set_current(self, name: str) -> None:
        self.registry.get(name)  # validate
        self.current_canvas = name

    def current_viewer(self) -> Viewer:
        if self.current_canvas is None:
            raise ViewerError("no current canvas; set one first")
        return self.registry.get(self.current_canvas)

    def traverse(
        self, item: RenderedItem, member: str | None = None
    ) -> Viewer:
        """Pass through a rendered wormhole: reach zero elevation and emerge
        over the destination canvas at the wormhole's initial location and
        elevation.  Returns the destination viewer.
        """
        if item.drawable_kind != "viewer" or not isinstance(
            item.drawable, ViewerDrawable
        ):
            raise ViewerError("the picked item is not a wormhole")
        wormhole: ViewerDrawable = item.drawable
        origin = self.current_viewer()
        origin_member = member or origin.member_names()[0]
        origin_view = origin.view(origin_member)
        destination = self.registry.get(wormhole.destination)

        self.history.push(
            TravelRecord(
                origin_canvas=origin.name,
                origin_member=origin_member,
                origin_center=origin_view.center,
                origin_elevation=origin_view.elevation,
                wormhole=wormhole,
                destination_canvas=destination.name,
            )
        )
        dest_member = destination.member_names()[0]
        destination._pan_to(*wormhole.dest_location, member=dest_member)
        destination._set_elevation(wormhole.dest_elevation, member=dest_member)
        self.current_canvas = destination.name
        return destination

    def zoom_into_wormhole(
        self, px: float, py: float, member: str | None = None
    ) -> Viewer:
        """Pick the wormhole under a screen point on the current canvas and
        pass through it (the zoom-to-zero-elevation gesture)."""
        origin = self.current_viewer()
        item = origin.wormhole_at(px, py)
        if item is None:
            raise ViewerError(
                f"no wormhole under ({px}, {py}) on canvas "
                f"{origin.name!r}"
            )
        return self.traverse(item, member)

    def go_back(self) -> Viewer:
        """Return through the last wormhole, restoring the origin position."""
        record = self.history.pop()
        origin = self.registry.get(record.origin_canvas)
        origin._pan_to(*record.origin_center, member=record.origin_member)
        origin._set_elevation(record.origin_elevation, member=record.origin_member)
        self.current_canvas = origin.name
        return origin

    def descent_distance(self) -> float:
        """How far below the last origin canvas the user currently is.

        After passing through, the user starts at the destination's entry
        elevation (distance 0 below the origin) and increases distance as he
        descends toward the new canvas (§6.3).
        """
        record = self.history.peek()
        if record is None:
            return 0.0
        destination = self.registry.get(record.destination_canvas)
        member = destination.member_names()[0]
        current = destination.view(member).elevation
        return max(0.0, record.wormhole.dest_elevation - current)
