"""Viewers, wormholes, rear view mirrors, slaving, and magnifying glasses."""

from repro.viewer.magnifier import MagnifyingGlass
from repro.viewer.rearview import RearViewMirror
from repro.viewer.slaving import SlaveEnd, SlaveLink, SlavingManager
from repro.viewer.viewer import MAIN_MEMBER, RenderResult, Viewer, ViewerBox
from repro.viewer.wormhole import (
    CanvasRegistry,
    TravelHistory,
    TravelRecord,
    WormholeNavigator,
)

__all__ = [
    "CanvasRegistry",
    "MAIN_MEMBER",
    "MagnifyingGlass",
    "RearViewMirror",
    "RenderResult",
    "SlaveEnd",
    "SlaveLink",
    "SlavingManager",
    "TravelHistory",
    "TravelRecord",
    "Viewer",
    "ViewerBox",
    "WormholeNavigator",
]
