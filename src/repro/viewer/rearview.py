"""Rear view mirrors (Section 6.3).

"For each canvas, we introduce an additional window called a rear view
mirror.  This window shows the 'bottom side' of the canvas through which the
user last moved.  Hence, immediately after going through a wormhole, the user
is looking down at a new canvas from some specific elevation and is at
negative ground level for the canvas he just left.  As he descends toward the
new canvas, he increases the distance from the previous canvas."

Rendering the mirror is rendering the origin canvas's composite at a
*negative* elevation equal to the descent distance: only displayables whose
elevation range reaches below zero (undersides) appear.  A natural use is to
place return wormholes on the underside so the user can "find his way home."
"""

from __future__ import annotations

from repro.display.displayable import Group, ensure_composite
from repro.render.canvas import Canvas
from repro.render.scene import RenderedItem, SceneStats, ViewState, render_composite
from repro.viewer.wormhole import CanvasRegistry, TravelHistory, WormholeNavigator

__all__ = ["RearViewMirror"]

_MIN_DESCENT = 1e-6
"""Immediately after passage the descent distance is zero; the mirror views
from an infinitesimally small negative elevation instead (zero is passing
through, not viewing)."""


class RearViewMirror:
    """The mirror window attached to a session's current canvas."""

    def __init__(
        self,
        navigator: WormholeNavigator,
        width: int = 240,
        height: int = 180,
    ):
        self.navigator = navigator
        self.width = int(width)
        self.height = int(height)
        self.last_items: list[RenderedItem] = []

    @property
    def registry(self) -> CanvasRegistry:
        return self.navigator.registry

    @property
    def history(self) -> TravelHistory:
        return self.navigator.history

    def has_view(self) -> bool:
        """The mirror is blank until the user has moved through a wormhole."""
        return self.history.peek() is not None

    def render(self, cull: bool = True) -> Canvas:
        """Render the underside of the last canvas travelled through."""
        canvas = Canvas(self.width, self.height)
        record = self.history.peek()
        self.last_items = []
        if record is None:
            return canvas
        origin = self.registry.get(record.origin_canvas)
        displayable = origin.displayable()
        if isinstance(displayable, Group):
            composite = displayable.member(record.origin_member)
        else:
            composite = ensure_composite(displayable)
        distance = max(self.navigator.descent_distance(), _MIN_DESCENT)
        view = ViewState(
            center=record.origin_center,
            elevation=-distance,
            slider_ranges=dict(origin.view(record.origin_member).slider_ranges),
            viewport=(self.width, self.height),
            world_per_elevation=origin.world_per_elevation,
        )
        stats = SceneStats()
        self.last_items = render_composite(
            canvas, composite, view, self.registry.resolve, cull=cull, stats=stats
        )
        return canvas

    def visible_wormholes(self) -> list[RenderedItem]:
        """Return wormholes visible in the mirror — the way home (§6.3)."""
        if not self.last_items:
            self.render()
        return [
            item for item in self.last_items if item.drawable_kind == "viewer"
        ]

    def __repr__(self) -> str:
        target = self.history.peek()
        shown = target.origin_canvas if target else "(blank)"
        return f"RearViewMirror(showing {shown})"
