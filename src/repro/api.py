"""The stable public API surface of the Tioga-2 reproduction.

Import from here::

    from repro.api import Session, Engine, Program, open_db

    db = open_db()                     # empty database
    db = open_db("weather")           # the paper's synthetic weather data
    session = Session(db)
    engine = Engine(program, db, workers=4)   # morsel-parallel + result cache

Everything re-exported below is **supported**: names, signatures, and
observable behaviour are kept compatible across releases of this repo,
and ``repro.__init__`` routes through this module.  Anything imported
from a deep module path (``repro.dbms.plan``, ``repro.render.scene``,
…) is an **internal** and may change in any commit — see ``docs/API.md``
for the full contract.

New in this release: keyword-only ``workers=`` / ``cache=`` knobs on
:class:`Engine` (and the ``REPRO_PARALLEL`` environment variable) turning
on partition-parallel plan execution with a process-wide result cache —
see ``docs/PARALLELISM.md``.

Also new: the columnar execution backend.  ``Engine(columnar=True)`` (or
``REPRO_COLUMNAR=1``, or a :class:`ColumnarConfig`) lets the plan
optimizer run eligible subtrees as vectorized numpy kernels over
:class:`ColumnBatch` data — identical rows, order, and pixels, large
speedups on scans/filters/joins — see ``docs/COLUMNAR.md``.

Also new: time-series telemetry and the self-hosted dashboard.
:class:`MetricsRecorder` samples the process metrics into ring-buffer
series (JSON + Prometheus exposition), :class:`FlightRecorder` keeps a
JSONL black box of recent spans that auto-dumps on engine errors,
:func:`diff_bench` gates performance regressions between two
``BENCH_*.json`` files, and :func:`build_telemetry_dashboard` /
:func:`render_dashboard` visualize recorded engine telemetry with a
Tioga-2 program — see ``docs/OBSERVABILITY.md`` and ``docs/DASHBOARD.md``.

Also new: static analysis.  :func:`check_program` lints a program without
executing it; :func:`check_program_deep` additionally runs the abstract
interpreter (interval/nullability/constancy/sign domains) for dead
predicates and statically empty results; :func:`set_absint_enabled` (or
``REPRO_ABSINT=1``) feeds the same analysis to the plan compiler so
proven-impossible runtime guards are elided from columnar kernels — see
``docs/STATIC_ANALYSIS.md``.

Also new: why-provenance.  ``Engine(lineage=True)`` (or ``REPRO_LINEAGE=1``,
or a :class:`LineageConfig`) records per-operator backward lineage while
plans execute; :func:`why` picks the mark under a pixel and walks it back
to the exact base-table rows, returning a ``repro.lineage/1`` document
(:func:`render_why` pretty-prints it, CLI ``repro why``).  Result-cache
invalidation is now per-table: mutating one table no longer evicts cached
plans that never read it — see ``docs/OBSERVABILITY.md``.

Also new: the protocol command layer and the multi-session server.  Every
demand is a versioned :class:`Command` dataclass with a JSON codec
(:mod:`repro.protocol`); :class:`Session`'s imperative methods — and the
new demand wrappers ``Session.pan`` / ``pan_to`` / ``zoom`` /
``set_elevation`` / ``set_slider`` / ``render_frame`` / ``why`` — are thin
wrappers building those commands, so in-process and remote interaction
share one dispatch path.  :func:`serve` runs the asyncio HTTP/WebSocket
server (:class:`TiogaServer`), :func:`connect` returns a blocking client;
see ``docs/SERVER.md``.

Deprecated this release (removed next): mutating a :class:`Viewer`
directly (``viewer.pan``/``pan_to``/``zoom``/``set_elevation``/
``set_slider``).  Those methods now emit :class:`DeprecationWarning` and
forward to the protocol layer's internals; call the ``Session`` wrappers
instead.
"""

from __future__ import annotations

from repro.analyze import (
    Diagnostic,
    Report,
    absint_enabled,
    check_program,
    check_program_deep,
    set_absint_enabled,
)
from repro.core import (
    CanvasWindow,
    Database,
    Scenario,
    Session,
    build_fig1_table_view,
    build_fig4_station_map,
    build_fig7_overlay,
    build_fig8_wormholes,
    build_fig9_magnifier,
    build_fig10_stitch,
    build_fig11_replicate,
    build_weather_database,
)
from repro.dataflow.boxes_attr import (
    AddAttributeBox,
    CombineDisplaysBox,
    RemoveAttributeBox,
    ScaleAttributeBox,
    SetAttributeBox,
    SwapAttributesBox,
    TranslateAttributeBox,
)
from repro.dataflow.boxes_db import (
    AddTableBox,
    JoinBox,
    ProjectBox,
    RestrictBox,
    SampleBox,
    SwitchBox,
    TBox,
)
from repro.dataflow.boxes_display import (
    OverlayBox,
    ReplicateBox,
    SetRangeBox,
    ShuffleBox,
    StitchBox,
)
from repro.dataflow.boxes_extra import (
    AggregateBox,
    DistinctBox,
    LimitBox,
    OrderByBox,
    ParameterBox,
    RenameBox,
    ThresholdBox,
    UnionBox,
)
from repro.dataflow.engine import Engine, EngineStats
from repro.dataflow.explain import explain, explain_data
from repro.dataflow.graph import Program
from repro.dbms.columnar import (
    ColumnarConfig,
    columnar_config_from_env,
    default_columnar_config,
    set_default_columnar_config,
)
from repro.dbms.plan_parallel import (
    ParallelConfig,
    config_from_env,
    default_config,
    result_cache,
    set_default_config,
)
from repro.errors import TiogaError
from repro.obs import (
    LINEAGE_SCHEMA,
    FlightRecorder,
    LineageConfig,
    MetricsRecorder,
    Profiler,
    RequestLog,
    TimeSeries,
    TraceContext,
    configure_logging,
    current_trace_context,
    default_lineage_config,
    diff_bench,
    diff_bench_files,
    get_logger,
    install_flight_recorder,
    lineage_capture,
    lineage_config_from_env,
    render_why,
    set_default_lineage_config,
    why,
)
from repro.obs.dashboard import (
    build_dashboard_program,
    build_telemetry_dashboard,
    record_figure_telemetry,
    render_dashboard,
    telemetry_database,
)
from repro.protocol import (
    PROTOCOL_CODES,
    PROTOCOL_VERSION,
    AddViewer,
    Command,
    CommandExecutor,
    ErrorReply,
    Explain,
    FrameReply,
    OpenProgram,
    Pan,
    PanTo,
    Pick,
    ProtocolError,
    Render,
    Reply,
    Response,
    SetElevation,
    SetSlider,
    Stats,
    Welcome,
    Why,
    Zoom,
    decode_command,
    decode_response,
    encode_command,
    encode_response,
    error_code_for,
)
from repro.server import Client, ServerThread, TiogaServer, connect, serve
from repro.viewer.viewer import Viewer, ViewerBox

__all__ = [
    # Environment
    "Database",
    "open_db",
    "build_weather_database",
    "Session",
    "CanvasWindow",
    "Scenario",
    "TiogaError",
    # Dataflow
    "Program",
    "Engine",
    "EngineStats",
    "explain",
    "explain_data",
    # Parallelism & caching
    "ParallelConfig",
    "config_from_env",
    "default_config",
    "set_default_config",
    "result_cache",
    # Columnar backend
    "ColumnarConfig",
    "columnar_config_from_env",
    "default_columnar_config",
    "set_default_columnar_config",
    # Observability: time series, flight recorder, bench gate, dashboard
    "MetricsRecorder",
    "TimeSeries",
    "FlightRecorder",
    "install_flight_recorder",
    "diff_bench",
    "diff_bench_files",
    # Request observability: tracing, profiling, structured logs
    "TraceContext",
    "current_trace_context",
    "Profiler",
    "RequestLog",
    "configure_logging",
    "get_logger",
    "record_figure_telemetry",
    "telemetry_database",
    "build_dashboard_program",
    "build_telemetry_dashboard",
    "render_dashboard",
    # Lineage & why-provenance
    "LINEAGE_SCHEMA",
    "LineageConfig",
    "lineage_capture",
    "lineage_config_from_env",
    "default_lineage_config",
    "set_default_lineage_config",
    "why",
    "render_why",
    # Static analysis
    "Diagnostic",
    "Report",
    "check_program",
    "check_program_deep",
    "absint_enabled",
    "set_absint_enabled",
    # Boxes
    "AddTableBox",
    "RestrictBox",
    "ProjectBox",
    "SampleBox",
    "JoinBox",
    "TBox",
    "SwitchBox",
    "AddAttributeBox",
    "RemoveAttributeBox",
    "SetAttributeBox",
    "SwapAttributesBox",
    "ScaleAttributeBox",
    "TranslateAttributeBox",
    "CombineDisplaysBox",
    "SetRangeBox",
    "OverlayBox",
    "ShuffleBox",
    "StitchBox",
    "ReplicateBox",
    "AggregateBox",
    "OrderByBox",
    "DistinctBox",
    "LimitBox",
    "RenameBox",
    "UnionBox",
    "ParameterBox",
    "ThresholdBox",
    # Protocol command layer (the demand wire format)
    "PROTOCOL_VERSION",
    "PROTOCOL_CODES",
    "Command",
    "OpenProgram",
    "AddViewer",
    "Pan",
    "PanTo",
    "Zoom",
    "SetElevation",
    "SetSlider",
    "Render",
    "Pick",
    "Why",
    "Explain",
    "Stats",
    "Response",
    "Reply",
    "ErrorReply",
    "FrameReply",
    "Welcome",
    "encode_command",
    "decode_command",
    "encode_response",
    "decode_response",
    "CommandExecutor",
    "ProtocolError",
    "error_code_for",
    # Server & client
    "TiogaServer",
    "ServerThread",
    "serve",
    "connect",
    "Client",
    # Viewers
    "Viewer",
    "ViewerBox",
    # Figure scenarios
    "build_fig1_table_view",
    "build_fig4_station_map",
    "build_fig7_overlay",
    "build_fig8_wormholes",
    "build_fig9_magnifier",
    "build_fig10_stitch",
    "build_fig11_replicate",
]


def open_db(name: str = "tioga") -> Database:
    """Open a database by name — the catalog entry point.

    ``open_db()`` returns a fresh empty :class:`Database`;
    ``open_db("weather")`` builds the paper's synthetic weather dataset
    (stations, temperatures, precipitation) used by every figure scenario.
    """
    if name == "weather":
        return build_weather_database()
    return Database(name)
