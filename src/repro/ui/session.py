"""The Tioga-2 user interface session (Section 3), headless.

"The Tioga-2 user interface contains several main windows ... a program
window, containing a boxes-and-arrows representation of a Tioga-2 program, a
canvas window for each viewer in the current program, [and] a menu bar."
"There is a single user interface both for building and for using programs."

:class:`Session` is that interface as an object model: the program window is
the :class:`~repro.dataflow.graph.Program`, each canvas window is a
:class:`CanvasWindow` (viewer + rear view mirror + sliders + elevation map +
magnifying glasses), and the menu bar is :class:`~repro.ui.menus.MenuBar`.
Direct-manipulation gestures are methods carrying the parameters the gesture
would supply.  Every program-editing operation snapshots the program first,
so the undo button works; "at any stage in the construction of a program the
current result is displayed on all non-iconified canvases" — here, rendering
any window always reflects the current program and database (the lazy engine
recomputes exactly the changed suffix).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.dataflow.box import Box
from repro.dataflow.encapsulate import EncapsulatedBox, encapsulate
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Edge, Program
from repro.dataflow.program_ops import (
    apply_box,
    apply_box_candidates,
    insert_t,
    register_encapsulated,
)
from repro.dataflow.registry import instantiate
from repro.dataflow.serialize import program_from_dict, program_to_dict
from repro.dbms.catalog import Database
from repro.dbms.update import ScriptedDialog, UpdateDialog, UpdateResult, generic_update
from repro.display.displayable import Composite, DisplayableRelation, Group
from repro.display.elevation import ElevationMap
from repro.errors import UIError, UpdateError, ViewerError
from repro.protocol.dispatch import CommandExecutor
from repro.protocol.messages import (
    AddViewer,
    Command,
    FrameReply,
    OpenProgram,
    Pan,
    PanTo,
    Pick,
    Render,
    Response,
    SetElevation,
    SetSlider,
    Why,
    Zoom,
)
from repro.render.canvas import Canvas
from repro.render.scene import RenderedItem
from repro.ui.menus import MenuBar
from repro.ui.undo import UndoStack
from repro.viewer.magnifier import MagnifyingGlass
from repro.viewer.rearview import RearViewMirror
from repro.viewer.slaving import SlavingManager
from repro.viewer.viewer import Viewer, ViewerBox
from repro.viewer.wormhole import CanvasRegistry, WormholeNavigator

__all__ = ["CanvasWindow", "Session"]


class CanvasWindow:
    """One canvas window: a viewer plus its mirror, magnifiers, and state.

    "each canvas window includes a rear view mirror, zero or more slider
    bars, an elevation map, and an elevation control." (§3)
    """

    def __init__(self, name: str, viewer_box_id: int, viewer: Viewer,
                 mirror: RearViewMirror):
        self.name = name
        self.viewer_box_id = viewer_box_id
        self.viewer = viewer
        self.mirror = mirror
        self.magnifiers: list[MagnifyingGlass] = []
        self.iconified = False
        self._elevation_map_member = 0

    # -- window operations -------------------------------------------------

    def iconify(self) -> None:
        self.iconified = True

    def deiconify(self) -> None:
        self.iconified = False

    # -- rendering ----------------------------------------------------------

    def render(self, cull: bool = True) -> Canvas:
        """Render the viewer and composite any live magnifying glasses."""
        result = self.viewer.render(cull=cull)
        canvas = result.canvas
        for glass in self.magnifiers:
            if not glass.deleted:
                glass.render_onto(canvas, cull=cull)
        return canvas

    def render_window(self, cull: bool = True) -> Canvas:
        """Render the full window with its furniture: canvas, elevation map,
        and slider bars (§3)."""
        from repro.render.widgets import render_window_frame

        return render_window_frame(self, cull=cull)

    # -- canvas furniture -----------------------------------------------------

    def add_magnifier(
        self,
        rect: tuple[float, float, float, float],
        magnification: float = 4.0,
        member: str | None = None,
        source: Callable[[], Composite | DisplayableRelation] | None = None,
        slaved: bool = True,
    ) -> MagnifyingGlass:
        """Place a viewer inside this viewer (§7.2)."""
        glass = MagnifyingGlass(
            self.viewer, rect, magnification, member, source, slaved
        )
        self.magnifiers.append(glass)
        return glass

    def remove_magnifier(self, glass: MagnifyingGlass) -> None:
        glass.delete()
        self.magnifiers = [g for g in self.magnifiers if g is not glass]

    def elevation_map(self, member: str | None = None) -> ElevationMap:
        """The current elevation map (§6.1).

        "a viewer shows an elevation map for only one member of the group at
        a time" — with no explicit member, a group shows the map the user
        has cycled to.
        """
        if member is None and self.viewer.is_group():
            names = self.viewer.member_names()
            member = names[self._elevation_map_member % len(names)]
        return self.viewer.elevation_map(member)

    def cycle_elevation_map(self) -> str:
        """Advance to the next group member's elevation map; returns its
        member name ("the user can explicitly cycle", §6.1)."""
        names = self.viewer.member_names()
        self._elevation_map_member = (self._elevation_map_member + 1) % len(names)
        return names[self._elevation_map_member]

    def __repr__(self) -> str:
        state = " (iconified)" if self.iconified else ""
        return f"CanvasWindow({self.name!r}{state})"


class Session:
    """One user's Tioga-2 session: program + canvases + menus + undo."""

    def __init__(self, database: Database, program_name: str = "untitled"):
        self.database = database
        self.program = Program(program_name)
        self.engine = Engine(self.program, database)
        self.menu = MenuBar(database)
        self.undo_stack = UndoStack()
        self.registry = CanvasRegistry()
        self.navigator = WormholeNavigator(self.registry)
        self.slaving = SlavingManager()
        self.windows: dict[str, CanvasWindow] = {}
        #: The protocol dispatcher every demand below routes through — the
        #: same executor the network server drives, so local and remote
        #: interaction are one code path.
        self.protocol = CommandExecutor(self)

    # ------------------------------------------------------------------
    # Undo plumbing
    # ------------------------------------------------------------------

    def _record(self, description: str) -> None:
        self.undo_stack.push(description, program_to_dict(self.program))

    def undo(self) -> str:
        """The undo button: revert the last program-editing operation."""
        description, snapshot = self.undo_stack.pop()
        self.program = program_from_dict(snapshot)
        self.engine = Engine(self.program, self.database)
        self._sync_windows()
        return description

    # ------------------------------------------------------------------
    # Program-window operations (Fig 2)
    # ------------------------------------------------------------------

    def new_program(self, name: str = "untitled") -> None:
        """New Program: erase the program canvas (closes canvas windows)."""
        self._record("New Program")
        self.program = Program(name)
        self.engine = Engine(self.program, self.database)
        self._sync_windows()

    def save_program(self) -> None:
        self.database.save_program(self.program.name, program_to_dict(self.program))

    def add_program(self, name: str) -> dict[int, int]:
        """Add a named saved program to the current canvas."""
        self._record(f"Add Program {name!r}")
        saved = program_from_dict(self.database.load_program(name))
        mapping = self.program.merge(saved)
        self._sync_windows()
        return mapping

    def load_program(self, name: str) -> None:
        """Load Program = New Program + Add Program (Fig 2)."""
        self.protocol.run(OpenProgram(name=name))

    def _load_program_impl(self, name: str) -> None:
        self._record(f"Load Program {name!r}")
        self.program = program_from_dict(self.database.load_program(name))
        self.program.name = name
        self.engine = Engine(self.program, self.database)
        self._sync_windows()

    def add_box(
        self, type_name: str, params: dict[str, Any] | None = None,
        label: str | None = None,
    ) -> int:
        """Add a primitive or catalog box to the program."""
        self._record(f"Add {type_name} box")
        if self.database.has_box(type_name):
            spec = self.database.box(type_name)
            if not isinstance(spec, EncapsulatedBox):
                raise UIError(f"catalog entry {type_name!r} is not a usable box")
            box: Box = EncapsulatedBox(**spec.params)
        else:
            box = instantiate(type_name, params)
        return self.program.add_box(box, label=label)

    def add_table(self, table_name: str, label: str | None = None) -> int:
        """Add Table: the source box named for a table (§4.2)."""
        self.database.table(table_name)  # validate now, not at first render
        return self.add_box("AddTable", {"table": table_name}, label or table_name)

    def connect(self, src_box: int, src_port: str, dst_box: int, dst_port: str) -> Edge:
        self._record("Connect boxes")
        return self.program.connect(src_box, src_port, dst_box, dst_port)

    def apply_box_candidates(self, edges: list[Edge]) -> list[str]:
        """Apply Box, step 1: the menu of compatible boxes for the selection."""
        return apply_box_candidates(self.program, edges, self.database)

    def apply_box(
        self, edges: list[Edge], type_name: str, params: dict[str, Any] | None = None
    ) -> int:
        """Apply Box, step 2: instantiate the chosen box on the selection."""
        self._record(f"Apply Box {type_name}")
        return apply_box(self.program, edges, type_name, params, self.database)

    def delete_box(self, box_id: int) -> None:
        """Delete Box under the Section-4.1 legality rules."""
        self._record("Delete box")
        try:
            self.program.delete_box(box_id)
        except Exception:
            self.undo_stack.pop()
            raise
        self._sync_windows()

    def replace_box(
        self, box_id: int, type_name: str, params: dict[str, Any] | None = None
    ) -> int:
        """Replace Box: a different box with compatible types (Fig 2)."""
        self._record(f"Replace box with {type_name}")
        return self.program.replace_box(box_id, instantiate(type_name, params))

    def insert_t(self, edge: Edge) -> int:
        """T: add a T-node to a designated edge (Fig 2)."""
        self._record("Insert T")
        return insert_t(self.program, edge)

    def set_param(self, box_id: int, name: str, value: Any) -> None:
        """Edit a box parameter (e.g. refine a Restrict predicate)."""
        self._record(f"Set parameter {name}")
        self.program.box(box_id).set_param(name, value)

    def encapsulate(
        self,
        region: list[int] | set[int],
        name: str,
        holes: list[list[int] | set[int]] | None = None,
        register: bool = True,
    ) -> EncapsulatedBox:
        """Encapsulate the region enclosed by the user's closed curve (§4.1)."""
        box = encapsulate(self.program, region, name, holes)
        if register:
            register_encapsulated(self.database, box)
        return box

    # ------------------------------------------------------------------
    # Inspection ("place a viewer on any edge", §10)
    # ------------------------------------------------------------------

    def inspect(self, box_id: int, port: str | None = None) -> Any:
        """The value flowing on an output edge, demanded lazily."""
        return self.engine.output_of(box_id, port)

    def viewer_on_edge(
        self,
        edge: Edge,
        name: str | None = None,
        width: int = 480,
        height: int = 360,
    ) -> CanvasWindow:
        """Install a viewer on an existing arc (§10's debugging story).

        Inserts a T on the edge — so the original dataflow continues — and
        opens a canvas window on the T's free output: "It is easy to
        instrument a program to understand how it is working and to see
        visually where it fails."
        """
        t_id = self.insert_t(edge)
        return self.add_viewer(t_id, "out2", name=name, width=width,
                               height=height)

    def program_window(self) -> Canvas:
        """Render the boxes-and-arrows diagram (the program window, §3)."""
        from repro.render.program_view import render_program

        return render_program(self.program)

    def program_text(self) -> str:
        """A textual listing of the program window for terminals."""
        from repro.render.program_view import program_listing

        return program_listing(self.program)

    def optimize(self, apply: bool = True) -> list[str]:
        """Run the browsing-query optimizer (Restrict merge/pushdown).

        Returns the rewrite log; with ``apply`` the session adopts the
        rewritten program (an undoable operation).  Viewer boxes and canvas
        windows survive — only relational plumbing moves.
        """
        from repro.dataflow.optimize import optimize

        optimized, log = optimize(self.program, self.database)
        if apply and log:
            self._record("Optimize program")
            self.program = optimized
            self.engine = Engine(self.program, self.database)
            self._sync_windows()
        return log

    # ------------------------------------------------------------------
    # Canvas windows
    # ------------------------------------------------------------------

    def add_viewer(
        self,
        src_box: int,
        src_port: str | None = None,
        name: str | None = None,
        width: int = 640,
        height: int = 480,
        world_per_elevation: float = 1.0,
    ) -> CanvasWindow:
        """Connect a viewer box to an output and open its canvas window."""
        return self.protocol.run(AddViewer(
            src_box=src_box,
            src_port=src_port,
            name=name,
            width=width,
            height=height,
            world_per_elevation=world_per_elevation,
        ))

    def _add_viewer_impl(
        self,
        src_box: int,
        src_port: str | None = None,
        name: str | None = None,
        width: int = 640,
        height: int = 480,
        world_per_elevation: float = 1.0,
    ) -> CanvasWindow:
        source_box = self.program.box(src_box)
        if src_port is None:
            if len(source_box.outputs) != 1:
                raise UIError(
                    f"{source_box.describe()} has several outputs; name one"
                )
            src_port = source_box.outputs[0].name
        if name is None:
            name = f"canvas{len(self.windows) + 1}"
        if name in self.windows:
            raise UIError(f"a canvas named {name!r} already exists")
        self._record(f"Add viewer {name!r}")
        viewer_box = ViewerBox(
            name=name, width=width, height=height,
            world_per_elevation=world_per_elevation,
        )
        box_id = self.program.add_box(viewer_box, label=name)
        self.program.connect(src_box, src_port, box_id, "in")
        window = self._open_window(box_id)
        if self.navigator.current_canvas is None:
            self.navigator.set_current(name)
        return window

    def _open_window(self, viewer_box_id: int) -> CanvasWindow:
        box = self.program.box(viewer_box_id)
        name = box.param("name")
        viewer = Viewer(
            name,
            self._source_for(viewer_box_id),
            width=box.param("width", 640),
            height=box.param("height", 480),
            world_per_elevation=box.param("world_per_elevation", 1.0),
        )
        self.registry.register(viewer)
        mirror = RearViewMirror(self.navigator)
        window = CanvasWindow(name, viewer_box_id, viewer, mirror)
        self.windows[name] = window
        return window

    def _source_for(self, viewer_box_id: int) -> Callable[[], Any]:
        def source() -> Any:
            return self.engine.inputs_of(viewer_box_id)["in"]

        return source

    def window(self, name: str) -> CanvasWindow:
        try:
            return self.windows[name]
        except KeyError as exc:
            known = ", ".join(sorted(self.windows)) or "(none)"
            raise UIError(f"no canvas window {name!r}; windows: {known}") from exc

    def clone_viewer(self, name: str, new_name: str | None = None) -> CanvasWindow:
        """Clone a viewer: a second canvas onto the same program edge.

        Cloning was specified for the original Tioga (§1.1) and is the
        natural way to compare two positions over the same data; the clone
        starts at the original's position and moves independently (slave it
        via ``session.slaving`` to keep them locked together).
        """
        original = self.window(name)
        edge = self.program.edge_into_port(original.viewer_box_id, "in")
        if edge is None:
            raise UIError(f"viewer {name!r} has no input to clone from")
        if new_name is None:
            suffix = 2
            while f"{name}_{suffix}" in self.windows:
                suffix += 1
            new_name = f"{name}_{suffix}"
        clone = self.add_viewer(
            edge.src_box,
            edge.src_port,
            name=new_name,
            width=original.viewer.width,
            height=original.viewer.height,
            world_per_elevation=original.viewer.world_per_elevation,
        )
        # Start at the original's position(s).
        original.viewer._sync_views()
        for member, view in original.viewer.views.items():
            clone.viewer.views[member] = view.copy()
        return clone

    def delete_viewer(self, name: str) -> None:
        """Delete a viewer: closes the window and drops its slaving links."""
        window = self.window(name)
        self._record(f"Delete viewer {name!r}")
        self.slaving.remove_viewer(window.viewer)
        self.registry.unregister(name)
        del self.windows[name]
        if window.viewer_box_id in self.program:
            self.program.delete_box(window.viewer_box_id)
        if self.navigator.current_canvas == name:
            remaining = sorted(self.windows)
            self.navigator.current_canvas = remaining[0] if remaining else None

    def _sync_windows(self) -> None:
        """Reconcile canvas windows with the viewer boxes in the program.

        Called after program replacement (undo, load, new): windows whose
        boxes vanished are closed; viewer boxes without windows get fresh
        ones; surviving windows keep their view states.
        """
        live: dict[str, int] = {}
        for box in self.program.boxes_of_type("Viewer"):
            live[box.param("name")] = box.box_id
        for name in [n for n in self.windows if n not in live]:
            window = self.windows.pop(name)
            self.slaving.remove_viewer(window.viewer)
            if name in self.registry:
                self.registry.unregister(name)
            if self.navigator.current_canvas == name:
                self.navigator.current_canvas = None
        for name, box_id in live.items():
            if name in self.windows:
                self.windows[name].viewer_box_id = box_id
                self.windows[name].viewer.source = self._source_for(box_id)
            else:
                self._open_window(box_id)
        if self.navigator.current_canvas is None and self.windows:
            self.navigator.set_current(sorted(self.windows)[0])

    # ------------------------------------------------------------------
    # Updates from the screen (Section 8)
    # ------------------------------------------------------------------

    def pick(self, canvas_name: str, px: float, py: float) -> RenderedItem | None:
        """Click on a canvas: the topmost screen object under the point."""
        return self.protocol.run(Pick(window=canvas_name, px=px, py=py))

    # ------------------------------------------------------------------
    # Demand wrappers (the protocol command layer)
    #
    # Each gesture below builds the same Command dataclass a remote client
    # would send and runs it through self.protocol — Session is just the
    # in-process transport.  All return the rich result (view-state dict,
    # FrameReply, lineage doc); errors raise the original TiogaError.
    # ------------------------------------------------------------------

    def execute(self, command: "Command") -> "Response":
        """Execute any protocol command, returning a wire-safe Response
        (failures become :class:`~repro.protocol.ErrorReply`, not raises)."""
        return self.protocol.execute(command)

    def pan(self, window: str, dx: float, dy: float,
            member: str | None = None) -> dict[str, Any]:
        """Pan a canvas window by world-unit deltas; returns the view state."""
        return self.protocol.run(Pan(window=window, dx=dx, dy=dy, member=member))

    def pan_to(self, window: str, cx: float, cy: float,
               member: str | None = None) -> dict[str, Any]:
        """Center a canvas window on absolute world coordinates."""
        return self.protocol.run(PanTo(window=window, cx=cx, cy=cy, member=member))

    def zoom(self, window: str, factor: float,
             member: str | None = None) -> dict[str, Any]:
        """Zoom a canvas window (factor > 1 descends)."""
        return self.protocol.run(Zoom(window=window, factor=factor, member=member))

    def set_elevation(self, window: str, elevation: float,
                      member: str | None = None) -> dict[str, Any]:
        """Set a canvas window's elevation directly."""
        return self.protocol.run(
            SetElevation(window=window, elevation=elevation, member=member))

    def set_slider(self, window: str, dim: str, low: float, high: float,
                   member: str | None = None) -> dict[str, Any]:
        """Set one slider dimension's visible range on a canvas window."""
        return self.protocol.run(SetSlider(
            window=window, dim=dim, low=low, high=high, member=member))

    def render_frame(self, window: str, format: str = "ppm",
                     cull: bool = True) -> "FrameReply":
        """Render a window to a wire-ready frame (ppm/png bytes or ops delta)."""
        return self.protocol.run(Render(window=window, format=format, cull=cull))

    def why(self, window: str, px: float, py: float) -> dict[str, Any]:
        """Why-provenance for the mark under a pixel (lineage drill-down)."""
        return self.protocol.run(Why(window=window, px=px, py=py))

    def update_at(
        self,
        canvas_name: str,
        px: float,
        py: float,
        dialog: UpdateDialog | dict[str, str],
    ) -> UpdateResult:
        """Click a screen object and update its tuple in the database (§8).

        The per-visualization custom update command is used when the
        relation installs one; otherwise the generic procedure runs with the
        per-type update functions.
        """
        item = self.pick(canvas_name, px, py)
        if item is None:
            raise UpdateError(
                f"nothing under ({px}, {py}) on canvas {canvas_name!r}"
            )
        return self.update_item(canvas_name, item, dialog)

    def update_item(
        self,
        canvas_name: str,
        item: RenderedItem,
        dialog: UpdateDialog | dict[str, str],
    ) -> UpdateResult:
        if isinstance(dialog, dict):
            dialog = ScriptedDialog(dialog)
        if item.source_table is None:
            raise UpdateError(
                f"the visualization of {item.relation_name!r} is not backed "
                "by a stored table (derived relations are not updatable)"
            )
        table = self.database.table(item.source_table)
        relation = self._find_relation(canvas_name, item.relation_name)
        command = generic_update
        if relation is not None and relation.update_command is not None:
            command = relation.update_command
        return command(table, item.row, dialog)

    def _find_relation(
        self, canvas_name: str, relation_name: str
    ) -> DisplayableRelation | None:
        displayable = self.window(canvas_name).viewer.displayable()
        composites: list[Composite]
        if isinstance(displayable, Group):
            composites = [composite for __, composite in displayable]
        elif isinstance(displayable, Composite):
            composites = [displayable]
        else:
            composites = [Composite([displayable])]
        for composite in composites:
            for entry in composite:
                if entry.relation.name == relation_name:
                    return entry.relation
        return None

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Session(program={self.program.name!r}, boxes={len(self.program)}, "
            f"windows={sorted(self.windows)})"
        )
