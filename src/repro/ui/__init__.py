"""The headless UI model: session, canvas windows, menu bar, undo."""

from repro.ui.menus import PROGRAM_OPERATIONS, MenuBar
from repro.ui.session import CanvasWindow, Session
from repro.ui.undo import UndoStack

__all__ = ["CanvasWindow", "MenuBar", "PROGRAM_OPERATIONS", "Session", "UndoStack"]
