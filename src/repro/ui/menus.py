"""The menu bar (Section 3).

"The menu bar includes: a menu of all operations available, a menu of all
tables available, a menu of all boxes available, an undo button ... and a
help button."

Menus are models (lists of entries) the host front end would draw; the help
button serves each operation's documentation, pulled straight from the box
classes' docstrings so the help can never drift from the implementation.
"""

from __future__ import annotations

import inspect

from repro.dataflow.registry import box_class, box_class_names
from repro.dbms.catalog import Database
from repro.errors import UIError

__all__ = ["MenuBar", "PROGRAM_OPERATIONS"]

PROGRAM_OPERATIONS = (
    "New Program",
    "Add Program",
    "Load Program",
    "Save Program",
    "Apply Box",
    "Delete Box",
    "Replace Box",
    "T",
    "Encapsulate",
)
"""The Figure-2 program-editing operations (handled by the session, not by
box instantiation)."""

_HIDDEN_BOX_TYPES = {"_Const", "Hole"}
"""Internal box types never offered in user menus."""


class MenuBar:
    """The operations / tables / boxes menus over one database."""

    def __init__(self, database: Database):
        self.database = database

    def operations_menu(self) -> list[str]:
        """All operations available: program edits plus every primitive box."""
        boxes = [
            name for name in box_class_names() if name not in _HIDDEN_BOX_TYPES
        ]
        return list(PROGRAM_OPERATIONS) + boxes

    def tables_menu(self) -> list[str]:
        """All tables available (Add Table picks from this menu, §4.2)."""
        return self.database.table_names()

    def boxes_menu(self) -> list[str]:
        """All boxes available: primitives plus catalog-registered boxes
        (encapsulated user definitions)."""
        primitives = [
            name for name in box_class_names() if name not in _HIDDEN_BOX_TYPES
        ]
        return sorted(set(primitives) | set(self.database.box_names()))

    def help(self, topic: str) -> str:
        """The help button: documentation for an operation or box type."""
        if topic in PROGRAM_OPERATIONS:
            from repro.dataflow import program_ops

            mapping = {
                "New Program": program_ops.new_program,
                "Add Program": program_ops.add_program,
                "Load Program": program_ops.load_program,
                "Save Program": program_ops.save_program,
                "Apply Box": program_ops.apply_box,
                "T": program_ops.insert_t,
            }
            if topic in mapping:
                return inspect.getdoc(mapping[topic]) or topic
            if topic == "Encapsulate":
                import importlib

                # The package re-exports the function under the module's
                # name, so resolve the module through importlib.
                module = importlib.import_module("repro.dataflow.encapsulate")
                return inspect.getdoc(module.encapsulate) or topic
            if topic == "Delete Box":
                from repro.dataflow.graph import Program

                return inspect.getdoc(Program.delete_box) or topic
            if topic == "Replace Box":
                from repro.dataflow.graph import Program

                return inspect.getdoc(Program.replace_box) or topic
        try:
            cls = box_class(topic)
        except Exception as exc:
            raise UIError(f"no help available for {topic!r}") from exc
        return inspect.getdoc(cls) or topic
