"""Undo for program-editing operations (Section 3: "an undo button to undo
the last operation performed").

Undo is implemented by snapshotting the serialized program before each
operation.  Multi-level undo falls out for free and is kept (a strict
single-level undo would be a regression with no fidelity benefit).  Database
updates (Section 8) are *data*, not program edits, and are not undone here —
matching the paper, whose undo lives in the program-editing menu bar.
"""

from __future__ import annotations

from typing import Any

from repro.errors import UIError

__all__ = ["UndoStack"]


class UndoStack:
    """A bounded stack of (description, program-snapshot) pairs."""

    def __init__(self, limit: int = 100):
        if limit < 1:
            raise UIError(f"undo limit must be >= 1, got {limit}")
        self.limit = limit
        self._entries: list[tuple[str, dict[str, Any]]] = []

    def push(self, description: str, snapshot: dict[str, Any]) -> None:
        self._entries.append((description, snapshot))
        if len(self._entries) > self.limit:
            del self._entries[0]

    def pop(self) -> tuple[str, dict[str, Any]]:
        if not self._entries:
            raise UIError("nothing to undo")
        return self._entries.pop()

    def peek_description(self) -> str | None:
        """What the undo button would undo, for display."""
        return self._entries[-1][0] if self._entries else None

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
