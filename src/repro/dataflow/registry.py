"""The box registry: names → box classes, and Apply Box candidate search.

"Apply Box gives the user a menu of all boxes whose inputs match the types of
the selected edges.  This is a shorthand way to identify those boxes in the
database that could possibly take the indicated edges as input." (§4.1)

Primitive box classes register here (keyed by ``type_name``); the registry
also powers program deserialization.  Database-resident boxes — encapsulated
boxes the user defined — live in the catalog and are merged into Apply Box
results by the UI session.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable

from repro.dataflow.box import Box
from repro.dataflow.ports import PortType, can_connect
from repro.errors import CatalogError

__all__ = [
    "register_box_class",
    "box_class",
    "box_class_names",
    "instantiate",
    "inputs_match",
    "compatible_boxes",
    "register_schema_transfer",
    "schema_transfer",
    "schema_transfer_names",
]

_BOX_CLASSES: dict[str, type[Box]] = {}

#: type_name -> output-schema transfer function used by the static checker.
#: A transfer function mirrors ``Box.fire`` abstractly: it maps abstract
#: input values (schema-level summaries) to abstract output values without
#: touching any rows.  See :mod:`repro.analyze.transfers`.
_SCHEMA_TRANSFERS: dict[str, object] = {}


def register_schema_transfer(type_name: str):
    """Decorator registering the output-schema transfer function for a box type.

    The function signature is ``fn(box, inputs, ctx) -> dict[str, value]``
    where ``inputs`` maps input-port names to abstract values (or ``None``
    when unknown) and ``ctx`` is the checker context used to report
    diagnostics.  Re-registration replaces the previous function, so the
    analyzer module can be reloaded safely.
    """

    def decorate(fn):
        _SCHEMA_TRANSFERS[type_name] = fn
        return fn

    return decorate


def schema_transfer(type_name: str):
    """The registered transfer function for a box type, or ``None``."""
    return _SCHEMA_TRANSFERS.get(type_name)


def schema_transfer_names() -> list[str]:
    return sorted(_SCHEMA_TRANSFERS)


def register_box_class(cls: type[Box]) -> type[Box]:
    """Register a Box subclass under its ``type_name`` (idempotent per class)."""
    existing = _BOX_CLASSES.get(cls.type_name)
    if existing is not None and existing is not cls:
        raise CatalogError(
            f"box type {cls.type_name!r} is already registered by "
            f"{existing.__module__}.{existing.__name__}"
        )
    _BOX_CLASSES[cls.type_name] = cls
    return cls


def box_class(type_name: str) -> type[Box]:
    try:
        return _BOX_CLASSES[type_name]
    except KeyError as exc:
        known = ", ".join(sorted(_BOX_CLASSES))
        raise CatalogError(
            f"unknown box type {type_name!r}; registered: {known}"
        ) from exc


def box_class_names() -> list[str]:
    return sorted(_BOX_CLASSES)


def instantiate(type_name: str, params: dict | None = None) -> Box:
    """Create a box of a registered type from its parameter dict."""
    cls = box_class(type_name)
    return cls(**(params or {}))


def inputs_match(cls: type[Box], edge_types: list[PortType]) -> bool:
    """Could a default instance of ``cls`` take edges of these types as its
    required inputs (in some order)?"""
    try:
        probe = cls()
    except Exception:
        return False
    required = [port for port in probe.inputs if not port.optional]
    if len(required) != len(edge_types):
        return False
    if not required:
        return not edge_types
    for ordering in permutations(range(len(required))):
        if all(
            can_connect(edge_types[i], required[pos].type, probe.overloadable)
            for i, pos in enumerate(ordering)
        ):
            return True
    return False


def compatible_boxes(edge_types: Iterable[PortType]) -> list[str]:
    """Apply Box: names of all registered boxes whose inputs match."""
    edge_types = list(edge_types)
    return [
        name
        for name in sorted(_BOX_CLASSES)
        if inputs_match(_BOX_CLASSES[name], edge_types)
    ]


def _register_defaults() -> None:
    from repro.dataflow import boxes_attr, boxes_db, boxes_display

    for module in (boxes_db, boxes_attr, boxes_display):
        for name in module.__all__:
            cls = getattr(module, name)
            if isinstance(cls, type) and issubclass(cls, Box):
                register_box_class(cls)


_register_defaults()
