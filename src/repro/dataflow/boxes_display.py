"""Drill-down and multi-view boxes: Set Range, Overlay, Shuffle (Fig 6) and
Stitch, Replicate (Section 7).

Set Range and Shuffle manipulate elevation-dependent visibility and drawing
order — together with Overlay they are how drill down within one space is
programmed (Figure 7: station names appear only at low elevations, the state
map stays fixed).  Stitch assembles composites into a group; Replicate
partitions a relation and stitches the partitions (Figure 11).
"""

from __future__ import annotations

from typing import Any

from repro.dataflow.box import Box
from repro.dataflow.boxes_db import _filtered
from repro.dataflow.overload import apply_to_relation, select_composite, select_relation
from repro.dataflow.ports import Port
from repro.display.displayable import (
    Composite,
    DisplayableRelation,
    Group,
    ensure_composite,
)
from repro.errors import DisplayError, GraphError

__all__ = [
    "SetRangeBox",
    "OverlayBox",
    "ShuffleBox",
    "StitchBox",
    "ReplicateBox",
]


class SetRangeBox(Box):
    """Set Range (§6.1): "specifies the maximum and minimum elevations at
    which a relation's display is defined.  Outside of this range, the
    relation contributes nothing to the canvas."

    Negative elevations place the display on the underside of the canvas,
    visible in rear view mirrors (§6.3).
    """

    type_name = "SetRange"
    overloadable = True

    def __init__(
        self,
        minimum: float | None = None,
        maximum: float | None = None,
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__(
            {
                "minimum": minimum,
                "maximum": maximum,
                "component": component,
                "member": member,
            }
        )
        self.inputs = [Port("in", "R")]
        self.outputs = [Port("out", "R")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        minimum = float(self.require_param("minimum"))
        maximum = float(self.require_param("maximum"))
        return {
            "out": apply_to_relation(
                inputs["in"],
                lambda rel: rel.with_range(minimum, maximum),
                self.param("component"),
                self.param("member"),
            )
        }


class OverlayBox(Box):
    """Overlay (§6.1): superimpose the ``top`` composite onto the ``base``.

    "The relative position of one overlay to another may be given either by
    an explicit n-dimensional offset, or by dragging one canvas over the
    other."  The offset parameters shift every component of ``top``.  Since
    R = Composite(R), relations may be overlaid directly.  With a group on
    the ``base`` input, ``member`` selects the composite to overlay onto and
    the group is reassembled (§2).
    """

    type_name = "Overlay"
    overloadable = True

    def __init__(
        self,
        offset: dict[str, float] | None = None,
        member: str | None = None,
    ):
        super().__init__({"offset": offset, "member": member})
        self.inputs = [Port("base", "C"), Port("top", "C")]
        self.outputs = [Port("out", "C")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        base, rebuild = select_composite(inputs["base"], self.param("member"))
        top = ensure_composite(inputs["top"])
        offset = self.param("offset") or {}
        return {"out": rebuild(base.overlay(top, offset))}


class ShuffleBox(Box):
    """Shuffle (§6.1): "moves a relation to the 'top' of the drawing order"."""

    type_name = "Shuffle"
    overloadable = True

    def __init__(self, component: str | None = None, member: str | None = None):
        super().__init__({"component": component, "member": member})
        self.inputs = [Port("in", "C")]
        self.outputs = [Port("out", "C")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        composite, rebuild = select_composite(inputs["in"], self.param("member"))
        component = self.require_param("component")
        shuffled = composite.copy()
        shuffled.shuffle_to_top(component)
        return {"out": rebuild(shuffled)}


class StitchBox(Box):
    """Stitch (§7.3): "Any number of composites can be stitched together to
    form a group displayable.  Groups can be displayed side-by-side, arranged
    vertically, or laid out in a tabular fashion."

    The box is built with a fixed arity; inputs are ``c1`` … ``cN``.  Member
    names default to ``c1`` … ``cN`` and may be overridden with ``names``.
    """

    type_name = "Stitch"

    def __init__(
        self,
        arity: int = 2,
        layout: str = "horizontal",
        names: list[str] | None = None,
        table_shape: tuple[int, int] | list[int] | None = None,
    ):
        if arity < 1:
            raise GraphError(f"Stitch arity must be >= 1, got {arity}")
        if names is not None and len(names) != arity:
            raise GraphError(
                f"Stitch got {len(names)} names for arity {arity}"
            )
        super().__init__(
            {
                "arity": arity,
                "layout": layout,
                "names": names,
                "table_shape": list(table_shape) if table_shape else None,
            }
        )
        self.inputs = [Port(f"c{i + 1}", "C") for i in range(arity)]
        self.outputs = [Port("out", "G")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        arity = self.require_param("arity")
        names = self.param("names") or [f"c{i + 1}" for i in range(arity)]
        shape = self.param("table_shape")
        members = []
        for i in range(arity):
            value = inputs[f"c{i + 1}"]
            if isinstance(value, Group):
                raise GraphError(
                    "Stitch takes composites; to restitch a group, stitch its "
                    "members individually"
                )
            members.append((names[i], ensure_composite(value)))
        group = Group(
            members,
            layout=self.param("layout", "horizontal"),
            table_shape=tuple(shape) if shape else None,
        )
        return {"out": group}


class ReplicateBox(Box):
    """Replicate (§7.4): partition a relation and stitch the partitions.

    "A relation can be replicated by specifying a partition.  Replicated
    displays for each partition are stitched together into a group."  The
    partition is a list of predicates in the query language, or an enumerated
    field name (``enum_field``) whose distinct values induce the predicates.

    Overloading (the Figure-11 case): with a composite input, each partition
    member is the whole composite with the selected relation restricted; with
    a group input, the member composites are each restricted, producing a
    tabular group of (group members × partitions).
    """

    type_name = "Replicate"
    overloadable = True

    def __init__(
        self,
        predicates: list[str] | None = None,
        enum_field: str | None = None,
        layout: str = "horizontal",
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__(
            {
                "predicates": predicates,
                "enum_field": enum_field,
                "layout": layout,
                "component": component,
                "member": member,
            }
        )
        self.inputs = [Port("in", "R")]
        self.outputs = [Port("out", "G")]

    def _partition_predicates(self, relation: DisplayableRelation) -> list[str]:
        predicates = self.param("predicates")
        if predicates:
            return list(predicates)
        enum_field = self.param("enum_field")
        if not enum_field:
            raise GraphError(
                "Replicate needs partition predicates or an enum_field"
            )
        schema = relation.extended_schema
        if enum_field not in schema:
            raise GraphError(
                f"relation {relation.name!r} has no attribute {enum_field!r}"
            )
        seen: list[Any] = []
        for view in relation.views():
            value = view[enum_field]
            if value not in seen:
                seen.append(value)
        rendered = []
        for value in seen:
            if isinstance(value, str):
                escaped = value.replace("'", "''")
                rendered.append(f"{enum_field} = '{escaped}'")
            else:
                rendered.append(f"{enum_field} = {value}")
        if not rendered:
            raise DisplayError(
                f"cannot replicate on {enum_field!r}: relation is empty"
            )
        return rendered

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        value = inputs["in"]
        component = self.param("component")
        member = self.param("member")
        layout = self.param("layout", "horizontal")

        if isinstance(value, Group):
            # Figure 11: restrict the named relation inside every member.
            relation, __ = select_relation(value, component, member)
            predicates = self._partition_predicates(relation)
            members: list[tuple[str, Composite]] = []
            for pos, predicate in enumerate(predicates):
                for name, composite in value:
                    target, rebuild = select_relation(composite, component)
                    restricted = rebuild(_filtered(target, predicate))
                    members.append((f"{name}_part{pos + 1}", restricted))
            return {
                "out": Group(
                    members,
                    layout="tabular",
                    table_shape=(len(predicates), len(value)),
                )
            }

        relation, rebuild = select_relation(value, component, member)
        predicates = self._partition_predicates(relation)
        members = []
        for pos, predicate in enumerate(predicates):
            restricted = rebuild(_filtered(relation, predicate))
            members.append((f"part{pos + 1}", ensure_composite(restricted)))
        table_shape = None
        if layout == "tabular":
            table_shape = (1, len(members))
        return {"out": Group(members, layout=layout, table_shape=table_shape)}
