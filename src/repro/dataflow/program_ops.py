"""Program-window operations (Figure 2).

=============  ======================================================
New Program    erase the program canvas
Add Program    add a named (saved) program to the program canvas
Load Program   shorthand for New Program followed by Add Program
Save Program   save the current program in the database
Apply Box      menu of boxes whose inputs match the selected edges
Delete Box     restricted deletion (see :meth:`Program.delete_box`)
Replace Box    replace one box by a compatible one
T              add a T-node to a designated edge
Encapsulate    see :mod:`repro.dataflow.encapsulate`
=============  ======================================================

These functions operate on a :class:`Program` and a :class:`Database`; the
UI session (:mod:`repro.ui.session`) wraps them with undo and menus.
"""

from __future__ import annotations

from repro.dataflow.boxes_db import TBox
from repro.dataflow.encapsulate import EncapsulatedBox
from repro.dataflow.graph import Edge, Program
from repro.dataflow.ports import PortType
from repro.dataflow.registry import compatible_boxes, instantiate
from repro.dataflow.serialize import program_from_dict, program_to_dict
from repro.dbms.catalog import Database
from repro.errors import GraphError

__all__ = [
    "new_program",
    "save_program",
    "add_program",
    "load_program",
    "apply_box_candidates",
    "apply_box",
    "insert_t",
    "register_encapsulated",
]


def new_program(name: str = "untitled") -> Program:
    """New Program: a fresh, empty program canvas."""
    return Program(name)


def save_program(database: Database, program: Program) -> None:
    """Save the current program in the database under its name."""
    database.save_program(program.name, program_to_dict(program))


def add_program(database: Database, program: Program, name: str) -> dict[int, int]:
    """Add a named saved program to the current program canvas.

    Returns the saved-id → new-id mapping of the merged boxes.
    """
    saved = program_from_dict(database.load_program(name))
    return program.merge(saved)


def load_program(database: Database, name: str) -> Program:
    """Load Program: "shorthand for New Program followed by Add Program"."""
    program = new_program(name)
    add_program(database, program, name)
    return program


def _edge_type(program: Program, edge: Edge) -> PortType:
    return program.box(edge.src_box).output_port(edge.src_port).type


def apply_box_candidates(
    program: Program,
    edges: list[Edge],
    database: Database | None = None,
) -> list[str]:
    """Apply Box (§4.1): the menu of boxes that could take these edges.

    Candidates are registered primitive box types plus encapsulated boxes
    saved in the database's box registry.
    """
    edge_types = [_edge_type(program, edge) for edge in edges]
    candidates = compatible_boxes(edge_types)
    if database is not None:
        from repro.dataflow.registry import inputs_match

        for name in database.box_names():
            spec = database.box(name)
            if isinstance(spec, EncapsulatedBox):
                required = [p for p in spec.inputs if not p.optional]
                if len(required) == len(edge_types) and all(
                    rt == pt.type
                    for rt, pt in zip(edge_types, required)
                ):
                    candidates.append(name)
    return candidates


def apply_box(
    program: Program,
    edges: list[Edge],
    type_name: str,
    params: dict | None = None,
    database: Database | None = None,
) -> int:
    """Instantiate the chosen box and wire the selected edges into it.

    Each selected edge feeds one required input, in port order.  Selected
    edges keep their original destinations too (the new box taps the values
    through additional arrows is NOT the paper's semantics — the edges
    identify *outputs* to consume, so the new box is connected from the same
    source ports).
    """
    if database is not None and database.has_box(type_name):
        spec = database.box(type_name)
        if not isinstance(spec, EncapsulatedBox):
            raise GraphError(f"catalog entry {type_name!r} is not a usable box")
        box = EncapsulatedBox(**spec.params)
    else:
        box = instantiate(type_name, params)
    required = [port for port in box.inputs if not port.optional]
    if len(required) != len(edges):
        raise GraphError(
            f"box {type_name!r} needs {len(required)} inputs, "
            f"{len(edges)} edges selected"
        )
    box_id = program.add_box(box)
    try:
        for port, edge in zip(required, edges):
            program.connect(edge.src_box, edge.src_port, box_id, port.name)
    except Exception:
        for stale in list(program.edges()):
            if stale.dst_box == box_id:
                program.disconnect(stale)
        del program._boxes[box_id]
        box.box_id = None
        raise
    return box_id


def insert_t(program: Program, edge: Edge) -> int:
    """T (Fig 2): "Add a T-node to a designated edge."

    The edge is split through a new T box whose free output is available for
    e.g. a viewer — the §10 debugging story ("a viewer can be installed on
    any arc in a diagram").
    """
    kind = str(_edge_type(program, edge))
    t_box = TBox(kind=kind)
    return program.insert_on_edge(edge, t_box, "in", "out1")


def register_encapsulated(database: Database, box: EncapsulatedBox) -> None:
    """Register a user-defined encapsulated box in the database catalog so it
    appears in the boxes menu and Apply Box results."""
    name = box.param("name")
    if not name:
        raise GraphError("encapsulated box has no name to register under")
    database.register_box(name, box)
