"""Lazy, demand-driven evaluation of boxes-and-arrows programs.

"The semantics of Tioga-2 programs is similar to the semantics of programs in
dataflow languages.  When data is present on all of a box's inputs, the box
can 'fire', producing results on one or more outputs.  Execution is lazy,
evaluating only what is required to produce the demanded visualization."
(Section 2)

The engine pulls: demanding any output walks upstream, firing only the boxes
on the demanded path, each at most once per change.  Results are memoized per
box and keyed by a structural signature — the box's own version (bumped on
parameter edits), its extra signature (e.g. the source table's version), and
the signatures of its inputs — so an incremental program edit recomputes only
the affected suffix of the graph.  This memoization is what makes "no
distinction between constructing, modifying, and using a program" (§1.2)
affordable; the ablation benchmarks measure it directly.
"""

from __future__ import annotations

from typing import Any

from repro.dataflow.box import Box
from repro.dataflow.graph import Program
from repro.dbms.catalog import Database
from repro.dbms.columnar import ColumnarConfig, resolve_columnar_config
from repro.dbms.plan import LazyRowSet
from repro.dbms.plan_parallel import resolve_config
from repro.display.displayable import Composite, DisplayableRelation, Group
from repro.errors import GraphError, StaticAnalysisError, TiogaError
from repro.obs.lineage import (
    LineageConfig,
    lineage_capture,
    resolve_lineage_config,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import current_tracer

__all__ = ["FireContext", "EngineStats", "Engine"]


def _force_value(value: Any) -> Any:
    """Materialize any lazily-streamed row sets inside a demanded value.

    Boxes emit plan fragments wrapped in :class:`LazyRowSet`; demand is the
    materialization boundary, so data-dependent evaluation errors surface
    here — from ``output_of``/``evaluate_all`` — exactly where they surfaced
    when boxes materialized eagerly.
    """
    if isinstance(value, LazyRowSet):
        value.force()
    elif isinstance(value, DisplayableRelation):
        _force_value(value.rows)
    elif isinstance(value, Composite):
        for entry in value.entries:
            _force_value(entry.relation)
    elif isinstance(value, Group):
        for __, member in value.members:
            _force_value(member)
    return value


class FireContext:
    """Services available to a firing box."""

    def __init__(self, engine: "Engine", box: Box):
        self.engine = engine
        self.box = box

    @property
    def database(self) -> Database:
        return self.engine.database

    def describe(self) -> str:
        return self.box.describe()


class EngineStats:
    """Firing counters: a thin view over a :class:`MetricsRegistry`.

    All three counter families are attributable per box id: ``fires``,
    ``hits``, and ``misses`` map box id → count.  They are the label dicts
    of the registry counters ``engine.box.fires`` / ``engine.cache.hits`` /
    ``engine.cache.misses`` — same storage, no copying — so anything
    recorded here shows up in registry snapshots and run summaries, and
    ``reset()`` genuinely clears the per-box dicts.  The aggregate
    ``cache_hits``/``cache_misses`` views are kept for callers that predate
    the per-box breakdown.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._fires = self.registry.counter(
            "engine.box.fires", "box firings, labeled by box id"
        )
        self._hits = self.registry.counter(
            "engine.cache.hits", "memo hits, labeled by box id"
        )
        self._misses = self.registry.counter(
            "engine.cache.misses", "memo misses, labeled by box id"
        )

    @property
    def fires(self) -> dict[int, int]:
        return self._fires.values

    @property
    def hits(self) -> dict[int, int]:
        return self._hits.values

    @property
    def misses(self) -> dict[int, int]:
        return self._misses.values

    @property
    def cache_hits(self) -> int:
        return self._hits.total()

    @property
    def cache_misses(self) -> int:
        return self._misses.total()

    def record_fire(self, box_id: int) -> None:
        self._fires.inc(label=box_id)

    def record_hit(self, box_id: int) -> None:
        self._hits.inc(label=box_id)

    def record_miss(self, box_id: int) -> None:
        self._misses.inc(label=box_id)

    def total_fires(self) -> int:
        return self._fires.total()

    def reset(self) -> None:
        self._fires.reset()
        self._hits.reset()
        self._misses.reset()

    def to_dict(self) -> dict[str, Any]:
        """Stable machine-readable form (sorted per-box breakdown)."""
        return {
            "total_fires": self.total_fires(),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "boxes": {
                box_id: {
                    "fires": self.fires.get(box_id, 0),
                    "hits": self.hits.get(box_id, 0),
                    "misses": self.misses.get(box_id, 0),
                }
                for box_id in sorted(
                    set(self.fires) | set(self.hits) | set(self.misses)
                )
            },
        }

    def summary(self) -> str:
        """Multi-line, per-box account of firing and cache behaviour (used
        by ``explain`` and the CLI stats output)."""
        lines = [
            f"EngineStats: {self.total_fires()} fires, "
            f"{self.cache_hits} cache hits, {self.cache_misses} misses"
        ]
        for box_id in sorted(set(self.fires) | set(self.hits) | set(self.misses)):
            lines.append(
                f"  box #{box_id}: fires={self.fires.get(box_id, 0)} "
                f"hits={self.hits.get(box_id, 0)} "
                f"misses={self.misses.get(box_id, 0)}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"EngineStats(fires={self.total_fires()}, hits={self.cache_hits}, "
            f"misses={self.cache_misses})"
        )


class Engine:
    """Evaluates one program against one database.

    With ``preflight=True`` the static checker
    (:func:`repro.analyze.check_program`) runs before the first demand and
    again after any program edit (tracked by the program version), raising
    :class:`StaticAnalysisError` instead of letting a provably broken
    program fail halfway through a firing chain.
    """

    def __init__(
        self,
        program: Program,
        database: Database,
        preflight: bool = False,
        registry: MetricsRegistry | None = None,
        *,
        workers: int | None = None,
        cache: bool | None = None,
        columnar: bool | ColumnarConfig | None = None,
        lineage: bool | LineageConfig | None = None,
    ):
        self.program = program
        self.database = database
        self.stats = EngineStats(registry)
        self.preflight_enabled = preflight
        self._preflight_stamp: tuple | None = None
        # box_id -> (signature, outputs dict)
        self._cache: dict[int, tuple[tuple, dict[str, Any]]] = {}
        # Parallel execution + result-cache config.  With both knobs left
        # None this follows the process default (REPRO_PARALLEL); explicit
        # workers=0/1 with cache=False forces fully serial execution.
        self.parallel = resolve_config(workers, cache)
        # Columnar backend selection: None inherits the process default
        # (REPRO_COLUMNAR), False pins the row backend, True/a config
        # enables per-subtree vectorization.  Rows/order are identical
        # either way (docs/COLUMNAR.md).
        self.columnar = resolve_columnar_config(columnar)
        # Lineage capture: None inherits the process default
        # (REPRO_LINEAGE), False disables, True/a config records
        # output -> input mappings while this engine forces values
        # (docs/OBSERVABILITY.md, "Lineage & why-provenance").
        self.lineage = resolve_lineage_config(lineage)

    def _force(self, value: Any) -> Any:
        """Materialize a demanded value, honoring the execution config."""
        if self.lineage is not None:
            with lineage_capture(self.lineage):
                return self._force_configured(value)
        return self._force_configured(value)

    def _force_configured(self, value: Any) -> Any:
        if self.parallel is None and self.columnar is None:
            return _force_value(value)
        from repro.dataflow.parallel import prepare_value

        return prepare_value(value, self.parallel, columnar=self.columnar)

    # ------------------------------------------------------------------

    def preflight(self, force: bool = False):
        """Statically check the program; raise on errors, return the report.

        Results are cached per program edit stamp (the program's structural
        version plus every box's parameter version), so demanding many
        outputs of an unchanged program lints once.  Returns ``None`` when
        the cached result is still valid and ``force`` is not set.
        """
        stamp = self._edit_stamp()
        if not force and self._preflight_stamp == stamp:
            return None
        from repro.analyze.checker import check_program

        tracer = current_tracer()
        with tracer.span("engine.preflight", program=self.program.name):
            report = check_program(self.program, self.database)
        if not report.ok:
            raise StaticAnalysisError(
                f"program {self.program.name!r} fails static checks:\n"
                + report.render(),
                report=report,
            )
        self._preflight_stamp = stamp
        return report

    def _edit_stamp(self) -> tuple:
        """Changes whenever the program's structure or any parameter does."""
        return (
            self.program.version,
            tuple((box.box_id, box.version) for box in self.program.boxes()),
        )

    # ------------------------------------------------------------------

    def invalidate(self, box_id: int | None = None) -> None:
        """Drop cached results for one box and everything downstream of it,
        or for the whole program."""
        if box_id is None:
            self._cache.clear()
        else:
            self._cache.pop(box_id, None)
            for downstream in self.program.downstream_of(box_id):
                self._cache.pop(downstream, None)

    def output_of(self, box_id: int, port_name: str | None = None) -> Any:
        """Demand one output of a box (the value flowing on that edge).

        With ``port_name`` omitted, the box's single output is demanded —
        this is how a viewer placed "on any edge in a diagram" inspects the
        data flowing along it (§1.1 problem 2, solved per §10).
        """
        if self.preflight_enabled:
            self.preflight()
        box = self.program.box(box_id)
        if port_name is None:
            if len(box.outputs) != 1:
                raise GraphError(
                    f"{box.describe()} has {len(box.outputs)} outputs; "
                    "name the one to demand"
                )
            port_name = box.outputs[0].name
        else:
            box.output_port(port_name)  # validate
        tracer = current_tracer()
        try:
            if not tracer.enabled:
                outputs = self._evaluate_box(box_id, set())
                return self._force(outputs[port_name])
            with tracer.span(
                "engine.demand", box=box_id, type=box.type_name, port=port_name
            ):
                outputs = self._evaluate_box(box_id, set())
                return self._force(outputs[port_name])
        except TiogaError as exc:
            # Black-box telemetry: when a flight recorder is installed, the
            # spans/events leading up to this failure are dumped to JSONL
            # before the error propagates (docs/OBSERVABILITY.md).
            from repro.obs.flightrec import note_engine_error

            note_engine_error(exc, box=box_id, type=box.type_name,
                              port=port_name, program=self.program.name)
            raise

    def inputs_of(self, box_id: int) -> dict[str, Any]:
        """Demand and return all inputs of a box (used by viewers/sinks)."""
        box = self.program.box(box_id)
        values: dict[str, Any] = {}
        for port in box.inputs:
            edge = self.program.edge_into_port(box_id, port.name)
            if edge is None:
                if port.optional:
                    continue
                raise GraphError(
                    f"input {box.describe()}.{port.name} is not connected; "
                    "its result is unavailable for visualization"
                )
            values[port.name] = self.output_of(edge.src_box, edge.src_port)
        return values

    def evaluate_all(self) -> int:
        """Eager evaluation: fire every box in topological order.

        This is the ablation arm for the lazy-vs-eager benchmark; it returns
        the number of boxes evaluated (cached or fired).
        """
        count = 0
        for box_id in self.program.topological_order():
            box = self.program.box(box_id)
            if not _all_required_inputs_connected(self.program, box):
                continue
            if box.outputs:
                outputs = self._evaluate_box(box_id, set())
                for value in outputs.values():
                    self._force(value)
            else:
                self.inputs_of(box_id)
            count += 1
        return count

    # ------------------------------------------------------------------

    def _signature_of(self, box_id: int, visiting: set[int]) -> tuple:
        """Structural cache signature: own version + extras + input sigs."""
        box = self.program.box(box_id)
        parts: list[Any] = [box.type_name, box.version, box.signature(self.database)]
        for port in box.inputs:
            edge = self.program.edge_into_port(box_id, port.name)
            if edge is None:
                parts.append((port.name, None))
            else:
                parts.append(
                    (port.name, edge.src_port,
                     self._signature_of(edge.src_box, visiting))
                )
        return tuple(parts)

    def _evaluate_box(self, box_id: int, visiting: set[int]) -> dict[str, Any]:
        if box_id in visiting:  # pragma: no cover - connect() prevents cycles
            raise GraphError(f"cycle detected at box #{box_id}")
        box = self.program.box(box_id)
        signature = self._signature_of(box_id, visiting)
        tracer = current_tracer()
        cached = self._cache.get(box_id)
        if cached is not None and cached[0] == signature:
            self.stats.record_hit(box_id)
            if tracer.enabled:
                tracer.event("engine.cache.hit", box=box_id,
                             type=box.type_name)
            return cached[1]
        self.stats.record_miss(box_id)
        if not tracer.enabled:
            return self._fire_box(box, box_id, signature, visiting)
        with tracer.span("engine.fire", box=box_id, type=box.type_name):
            return self._fire_box(box, box_id, signature, visiting)

    def _fire_box(
        self, box: Box, box_id: int, signature: tuple, visiting: set[int]
    ) -> dict[str, Any]:
        """Evaluate inputs and fire one box (the cache-miss path).

        Under tracing this whole evaluation — upstream demands included —
        runs inside the box's ``engine.fire`` span, so the span tree mirrors
        the demand-driven firing chain.
        """
        visiting = visiting | {box_id}
        inputs: dict[str, Any] = {}
        for port in box.inputs:
            edge = self.program.edge_into_port(box_id, port.name)
            if edge is None:
                if port.optional:
                    continue
                raise GraphError(
                    f"cannot fire {box.describe()}: input {port.name!r} is "
                    "not connected"
                )
            upstream = self._evaluate_box(edge.src_box, visiting)
            inputs[port.name] = upstream[edge.src_port]

        outputs = box.fire(inputs, FireContext(self, box))
        missing = [port.name for port in box.outputs if port.name not in outputs]
        if missing:
            raise GraphError(
                f"{box.describe()} fired without producing outputs: {missing}"
            )
        self.stats.record_fire(box_id)
        self._cache[box_id] = (signature, outputs)
        return outputs


def _all_required_inputs_connected(program: Program, box: Box) -> bool:
    return all(
        port.optional or program.edge_into_port(box.box_id, port.name) is not None
        for port in box.inputs
    )
