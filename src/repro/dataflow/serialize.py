"""Program serialization: boxes-and-arrows ↔ JSON-compatible dicts.

Programs are saved "in the database" (Fig 2).  A serialized program records
each box's registered type name, its parameter dict, and its label, plus the
edge list.  Box parameters are JSON-safe by convention (predicate *source
strings*, field-name lists, numbers) — the same convention that lets boxes be
re-instantiated from their params.

Each box also records its port signature (``ports``): name, port type, and
optionality for every input and output.  On load the signature is checked
against the re-instantiated box, so a program saved under one version of a
box catalog fails loudly — not with a confusing downstream type error — when
the catalog's port layout has changed.  Payloads without ``ports`` (saved by
older versions) still load.
"""

from __future__ import annotations

from typing import Any

from repro.dataflow.graph import Edge, Program
from repro.dataflow.registry import instantiate
from repro.errors import CatalogError

__all__ = ["program_to_dict", "program_from_dict", "clone_program"]

_FORMAT = "tioga2-program-v1"


def program_to_dict(program: Program) -> dict[str, Any]:
    """Serialize a program to a JSON-compatible dict."""
    boxes = {}
    for box in program.boxes():
        boxes[str(box.box_id)] = {
            "type": box.type_name,
            "params": _jsonable_params(box.params),
            "label": box.label,
            "ports": _port_signature(box),
        }
    edges = [
        [edge.src_box, edge.src_port, edge.dst_box, edge.dst_port]
        for edge in program.edges()
    ]
    return {
        "format": _FORMAT,
        "name": program.name,
        "boxes": boxes,
        "edges": edges,
    }


def _jsonable_params(params: dict[str, Any]) -> dict[str, Any]:
    cleaned = {}
    for key, value in params.items():
        if isinstance(value, tuple):
            value = list(value)
        cleaned[key] = value
    return cleaned


def _port_signature(box: Any) -> dict[str, list[list[Any]]]:
    """The box's port layout as JSON: ``[name, type, optional]`` triples."""
    return {
        "inputs": [[p.name, str(p.type), p.optional] for p in box.inputs],
        "outputs": [[p.name, str(p.type), p.optional] for p in box.outputs],
    }


def _check_port_signature(box: Any, recorded: dict[str, Any]) -> None:
    """Fail loudly when a loaded box's ports differ from the saved layout."""
    current = _port_signature(box)
    for side in ("inputs", "outputs"):
        saved = [tuple(entry) for entry in recorded.get(side, [])]
        have = [tuple(entry) for entry in current[side]]
        if saved != have:
            raise CatalogError(
                f"box {box.describe()} was saved with {side} "
                f"{saved!r} but the current catalog builds {have!r}; "
                "the box catalog has changed since this program was saved"
            )


def program_from_dict(payload: dict[str, Any]) -> Program:
    """Reconstruct a program, preserving the original box ids."""
    if payload.get("format") != _FORMAT:
        raise CatalogError(
            f"unrecognized program format {payload.get('format')!r}; "
            f"expected {_FORMAT!r}"
        )
    program = Program(payload.get("name", "untitled"))
    for box_id_text, spec in sorted(
        payload.get("boxes", {}).items(), key=lambda item: int(item[0])
    ):
        box = instantiate(spec["type"], spec.get("params"))
        recorded_ports = spec.get("ports")
        if recorded_ports is not None:
            _check_port_signature(box, recorded_ports)
        program.add_box(box, label=spec.get("label"), box_id=int(box_id_text))
    for src_box, src_port, dst_box, dst_port in payload.get("edges", []):
        program.connect(src_box, src_port, dst_box, dst_port)
    return program


def clone_program(program: Program) -> Program:
    """A deep, independent copy via serialization round-trip."""
    return program_from_dict(program_to_dict(program))
