"""Port types and connection compatibility for boxes-and-arrows programs.

"Box inputs and outputs are typed and edges connect outputs to inputs of
compatible types.  Any attempt to connect an output to an input of
incompatible type is a type error." (Section 2)

Port kinds are the three displayable types R, C, G plus scalars.  Two rules
extend exact matching:

* **Widening** by the type equivalences R = Composite(R) and C = Group(C): an
  R output may feed a C or G input, and a C output may feed a G input.
* **Overloading** (§2): boxes whose operation is defined on R (or C) accept
  *higher* displayable inputs when they declare themselves overloadable; the
  user then selects the component the operation applies to and the system
  reassembles the composite/group around the result.
"""

from __future__ import annotations

from typing import Any

from repro.dbms import types as T
from repro.display.displayable import Composite, DisplayableRelation, Group
from repro.errors import TypeCheckError

__all__ = [
    "PortKind",
    "RELATION",
    "COMPOSITE",
    "GROUP",
    "PortType",
    "Port",
    "scalar",
    "can_connect",
    "kind_of_value",
]

RELATION = "R"
COMPOSITE = "C"
GROUP = "G"
_DISPLAYABLE_KINDS = (RELATION, COMPOSITE, GROUP)
_WIDENING_RANK = {RELATION: 0, COMPOSITE: 1, GROUP: 2}

PortKind = str


class PortType:
    """The type of a port: a displayable kind or a scalar atomic type."""

    __slots__ = ("kind", "atomic")

    def __init__(self, kind: PortKind, atomic: T.AtomicType | None = None):
        if kind == "scalar":
            if atomic is None:
                raise TypeCheckError("scalar port type needs an atomic type")
        elif kind not in _DISPLAYABLE_KINDS:
            raise TypeCheckError(
                f"unknown port kind {kind!r}; want R, C, G, or scalar"
            )
        elif atomic is not None:
            raise TypeCheckError(f"displayable port kind {kind} takes no atomic type")
        self.kind = kind
        self.atomic = atomic

    @property
    def displayable(self) -> bool:
        return self.kind in _DISPLAYABLE_KINDS

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PortType)
            and self.kind == other.kind
            and self.atomic is other.atomic
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.atomic.name if self.atomic else None))

    def __str__(self) -> str:
        if self.kind == "scalar":
            assert self.atomic is not None
            return f"scalar:{self.atomic.name}"
        return self.kind

    def __repr__(self) -> str:
        return f"PortType({self})"

    @classmethod
    def parse(cls, text: str) -> "PortType":
        """Inverse of ``str``: 'R', 'C', 'G', or 'scalar:<type>'."""
        if text in _DISPLAYABLE_KINDS:
            return cls(text)
        if text.startswith("scalar:"):
            return cls("scalar", T.type_by_name(text.split(":", 1)[1]))
        raise TypeCheckError(f"cannot parse port type {text!r}")


R_PORT = PortType(RELATION)
C_PORT = PortType(COMPOSITE)
G_PORT = PortType(GROUP)


def scalar(atomic: T.AtomicType | str) -> PortType:
    """A scalar port type (runtime parameters supplied by the user, §2)."""
    if isinstance(atomic, str):
        atomic = T.type_by_name(atomic)
    return PortType("scalar", atomic)


class Port:
    """A named, typed input or output of a box."""

    __slots__ = ("name", "type", "optional")

    def __init__(self, name: str, port_type: PortType | str, optional: bool = False):
        self.name = name
        self.type = (
            PortType.parse(port_type) if isinstance(port_type, str) else port_type
        )
        self.optional = optional

    def __repr__(self) -> str:
        suffix = "?" if self.optional else ""
        return f"Port({self.name}: {self.type}{suffix})"


def can_connect(
    output: PortType, input_: PortType, input_overloadable: bool = False
) -> bool:
    """May an edge run from ``output`` into ``input_``?

    Exact match; widening R→C→G; or narrowing G/C→R (and G→C) into an
    overloadable input, resolved by component selection at fire time.
    """
    if output == input_:
        return True
    if output.displayable and input_.displayable:
        if _WIDENING_RANK[output.kind] < _WIDENING_RANK[input_.kind]:
            return True
        return input_overloadable
    return False


def kind_of_value(value: Any) -> PortKind:
    """The displayable kind of a runtime value."""
    if isinstance(value, DisplayableRelation):
        return RELATION
    if isinstance(value, Composite):
        return COMPOSITE
    if isinstance(value, Group):
        return GROUP
    return "scalar"
