"""The boxes-and-arrows program graph.

A :class:`Program` owns boxes and the edges between their ports, enforces
static type checking on connection (Section 2), and implements the legality
rules for program edits (Section 4.1) — notably the restricted Delete Box:

    "A box may be deleted if (1) it has no outputs connected to other boxes
    (in which case no box inputs are left dangling), or (2) it has a single
    input and output of the same type (in which case the system connects the
    deleted box's predecessor to its successor)."

Every structural edit bumps the program's version, which the UI uses for
undo snapshots and the engine for cache bookkeeping.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, NamedTuple

from repro.dataflow.box import Box
from repro.dataflow.ports import PortType, can_connect
from repro.errors import GraphError, TypeCheckError

__all__ = ["Edge", "Program"]


class Edge(NamedTuple):
    """A directed arrow from an output port to an input port."""

    src_box: int
    src_port: str
    dst_box: int
    dst_port: str

    def __str__(self) -> str:
        return f"{self.src_box}.{self.src_port} -> {self.dst_box}.{self.dst_port}"


class Program:
    """A mutable dataflow graph of boxes and arrows."""

    def __init__(self, name: str = "untitled"):
        self.name = name
        self._boxes: dict[int, Box] = {}
        self._edges: list[Edge] = []
        self._next_id = 1
        self.version = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def boxes(self) -> list[Box]:
        return list(self._boxes.values())

    def box_ids(self) -> list[int]:
        return list(self._boxes)

    def edges(self) -> list[Edge]:
        return list(self._edges)

    def box(self, box_id: int) -> Box:
        try:
            return self._boxes[box_id]
        except KeyError as exc:
            raise GraphError(f"no box #{box_id} in program {self.name!r}") from exc

    def __len__(self) -> int:
        return len(self._boxes)

    def __contains__(self, box_id: object) -> bool:
        return box_id in self._boxes

    def boxes_of_type(self, type_name: str) -> list[Box]:
        return [box for box in self._boxes.values() if box.type_name == type_name]

    def edges_into(self, box_id: int) -> list[Edge]:
        return [edge for edge in self._edges if edge.dst_box == box_id]

    def edges_from(self, box_id: int) -> list[Edge]:
        return [edge for edge in self._edges if edge.src_box == box_id]

    def edge_into_port(self, box_id: int, port_name: str) -> Edge | None:
        for edge in self._edges:
            if edge.dst_box == box_id and edge.dst_port == port_name:
                return edge
        return None

    def sinks(self) -> list[Box]:
        """Boxes with no outputs connected onward (typically viewers)."""
        driven = {edge.src_box for edge in self._edges}
        return [
            box
            for box_id, box in self._boxes.items()
            if box_id not in driven or not box.outputs
        ]

    # ------------------------------------------------------------------
    # Structural edits
    # ------------------------------------------------------------------

    def _bump(self) -> None:
        self.version += 1

    def add_box(
        self, box: Box, label: str | None = None, box_id: int | None = None
    ) -> int:
        """Add a detached box to the program; returns its id.

        An explicit ``box_id`` (used by deserialization and encapsulation to
        keep ids stable) must not collide with an existing box.
        """
        if box.box_id is not None:
            raise GraphError(
                f"box {box.describe()} already belongs to a program"
            )
        if box_id is None:
            box_id = self._next_id
        elif box_id in self._boxes:
            raise GraphError(f"box id #{box_id} is already in use")
        self._next_id = max(self._next_id, box_id + 1)
        box.box_id = box_id
        if label is not None:
            box.label = label
        self._boxes[box_id] = box
        self._bump()
        return box_id

    def connect(
        self, src_box: int, src_port: str, dst_box: int, dst_port: str
    ) -> Edge:
        """Add a type-checked arrow; an input accepts at most one arrow.

        Port-name and port-kind failures carry a structured
        :class:`repro.analyze.Diagnostic` (``T2-E101``/``T2-E102``) on the
        raised error's ``diagnostic`` attribute, matching what the static
        checker reports for the same edge.
        """
        from repro.analyze.diagnostics import Diagnostic

        src = self.box(src_box)
        dst = self.box(dst_box)
        try:
            out_port = src.output_port(src_port)
        except GraphError as exc:
            exc.diagnostic = Diagnostic(
                "T2-E101", str(exc),
                box_id=src_box, box=src.describe(), port=src_port,
            )
            raise
        try:
            in_port = dst.input_port(dst_port)
        except GraphError as exc:
            exc.diagnostic = Diagnostic(
                "T2-E101", str(exc),
                box_id=dst_box, box=dst.describe(), port=dst_port,
            )
            raise
        if not can_connect(out_port.type, in_port.type, dst.overloadable):
            message = (
                f"type error: cannot connect {src.describe()}.{src_port} "
                f"({out_port.type}) to {dst.describe()}.{dst_port} ({in_port.type})"
            )
            raise TypeCheckError(
                message,
                diagnostic=Diagnostic(
                    "T2-E102", message,
                    box_id=dst_box, box=dst.describe(), port=dst_port,
                    hint="route through a box producing the expected kind",
                ),
            )
        if self.edge_into_port(dst_box, dst_port) is not None:
            raise GraphError(
                f"input {dst.describe()}.{dst_port} is already connected; "
                "disconnect it first (or insert a T on the driving edge)"
            )
        edge = Edge(src_box, src_port, dst_box, dst_port)
        if self._would_cycle(edge):
            raise GraphError(f"edge {edge} would create a cycle")
        self._edges.append(edge)
        self._bump()
        return edge

    def disconnect(self, edge: Edge) -> None:
        try:
            self._edges.remove(edge)
        except ValueError as exc:
            raise GraphError(f"no such edge {edge}") from exc
        self._bump()

    def _would_cycle(self, new_edge: Edge) -> bool:
        # DFS from the new edge's destination looking for its source.
        target = new_edge.src_box
        stack = [new_edge.dst_box]
        seen: set[int] = set()
        while stack:
            current = stack.pop()
            if current == target:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(edge.dst_box for edge in self.edges_from(current))
        return False

    def can_delete_box(self, box_id: int) -> tuple[bool, str]:
        """Check the Section-4.1 deletion rules; returns (legal, reason)."""
        box = self.box(box_id)
        outgoing = self.edges_from(box_id)
        if not outgoing:
            return True, "no outputs connected; nothing is left dangling"
        if len(box.inputs) == 1 and len(box.outputs) == 1:
            if box.inputs[0].type == box.outputs[0].type:
                return True, "single input/output of the same type; will splice"
            return False, (
                f"single input ({box.inputs[0].type}) and output "
                f"({box.outputs[0].type}) have different types"
            )
        return False, (
            "box has connected outputs and is not a 1-in/1-out pass-through; "
            "deleting it would leave successor inputs dangling"
        )

    def delete_box(self, box_id: int) -> None:
        """Delete a box under the Section-4.1 rules (splicing when legal)."""
        legal, reason = self.can_delete_box(box_id)
        box = self.box(box_id)
        if not legal:
            raise GraphError(f"cannot delete {box.describe()}: {reason}")
        outgoing = self.edges_from(box_id)
        incoming = self.edges_into(box_id)
        if outgoing:
            # 1-in/1-out same-type box: splice predecessor to successors.
            if incoming:
                pred = incoming[0]
                for succ in outgoing:
                    self._edges.remove(succ)
                    self._edges.append(
                        Edge(pred.src_box, pred.src_port, succ.dst_box, succ.dst_port)
                    )
            else:
                # No predecessor: successors become dangling-free by removal
                # of the edges themselves (their inputs are simply unset).
                for succ in outgoing:
                    self._edges.remove(succ)
        for edge in self.edges_into(box_id):
            self._edges.remove(edge)
        del self._boxes[box_id]
        box.box_id = None
        self._bump()

    def replace_box(self, box_id: int, replacement: Box) -> int:
        """Replace a box by another with compatible ports (Fig 2).

        The replacement must offer at least the connected input ports and
        connected output ports with identical names and types, so every
        existing arrow remains type-correct.
        """
        old = self.box(box_id)
        for edge in self.edges_into(box_id):
            new_in = replacement.input_port(edge.dst_port)  # raises if missing
            old_in = old.input_port(edge.dst_port)
            if new_in.type != old_in.type:
                raise TypeCheckError(
                    f"replacement input {edge.dst_port!r} has type {new_in.type}, "
                    f"existing edge expects {old_in.type}"
                )
        for edge in self.edges_from(box_id):
            new_out = replacement.output_port(edge.src_port)
            old_out = old.output_port(edge.src_port)
            if new_out.type != old_out.type:
                raise TypeCheckError(
                    f"replacement output {edge.src_port!r} has type {new_out.type}, "
                    f"existing edge expects {old_out.type}"
                )
        replacement.box_id = box_id
        if replacement.label is None:
            replacement.label = old.label
        self._boxes[box_id] = replacement
        old.box_id = None
        self._bump()
        return box_id

    def insert_on_edge(self, edge: Edge, box: Box, in_port: str, out_port: str) -> int:
        """Splice a box into an existing edge (used by T insertion)."""
        if edge not in self._edges:
            raise GraphError(f"no such edge {edge}")
        box_id = self.add_box(box)
        try:
            self.disconnect(edge)
            self.connect(edge.src_box, edge.src_port, box_id, in_port)
            self.connect(box_id, out_port, edge.dst_box, edge.dst_port)
        except (GraphError, TypeCheckError):
            # Roll back to a consistent state before propagating.
            for stale in list(self._edges):
                if stale.src_box == box_id or stale.dst_box == box_id:
                    self._edges.remove(stale)
            del self._boxes[box_id]
            box.box_id = None
            if edge not in self._edges:
                self._edges.append(edge)
            self._bump()
            raise
        return box_id

    # ------------------------------------------------------------------
    # Graph algorithms
    # ------------------------------------------------------------------

    def upstream_of(self, box_id: int) -> set[int]:
        """All boxes reachable backwards from ``box_id`` (exclusive)."""
        result: set[int] = set()
        stack = [edge.src_box for edge in self.edges_into(box_id)]
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            stack.extend(edge.src_box for edge in self.edges_into(current))
        return result

    def downstream_of(self, box_id: int) -> set[int]:
        """All boxes reachable forwards from ``box_id`` (exclusive)."""
        result: set[int] = set()
        stack = [edge.dst_box for edge in self.edges_from(box_id)]
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            stack.extend(edge.dst_box for edge in self.edges_from(current))
        return result

    def topological_order(self) -> list[int]:
        """Box ids in dependency order (sources first)."""
        indegree = {box_id: 0 for box_id in self._boxes}
        for edge in self._edges:
            indegree[edge.dst_box] += 1
        ready = sorted(box_id for box_id, deg in indegree.items() if deg == 0)
        order: list[int] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for edge in self.edges_from(current):
                indegree[edge.dst_box] -= 1
                if indegree[edge.dst_box] == 0:
                    ready.append(edge.dst_box)
        if len(order) != len(self._boxes):  # pragma: no cover - connect() prevents
            raise GraphError("program graph contains a cycle")
        return order

    def merge(self, other: "Program") -> dict[int, int]:
        """Add Program (Fig 2): copy another program's boxes and edges into
        this one; returns the old-id → new-id mapping."""
        mapping: dict[int, int] = {}
        for box_id, box in other._boxes.items():
            clone = type(box)(**_constructor_kwargs(box))
            clone.label = box.label
            mapping[box_id] = self.add_box(clone)
        for edge in other._edges:
            self.connect(
                mapping[edge.src_box], edge.src_port,
                mapping[edge.dst_box], edge.dst_port,
            )
        return mapping

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, {len(self._boxes)} boxes, "
            f"{len(self._edges)} edges)"
        )


def _constructor_kwargs(box: Box) -> dict[str, Any]:
    """Reconstruct constructor kwargs from a box's params (for merge/copy).

    Box subclasses take their parameters via ``params``-backed keyword
    arguments; re-instantiating from ``params`` is the supported copy path
    (the same path serialization uses).
    """
    return dict(box.params)
