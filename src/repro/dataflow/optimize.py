"""Browsing-query optimization over boxes-and-arrows programs.

The paper defers "how browsing queries are implemented with tolerable
performance" to Chen's companion work [Che95] (§9).  This module implements
the classic core of that story for our programs: a static stored-schema
analysis over the graph and two rewrite families applied before evaluation —

* **Restrict merging** — adjacent Restrict boxes collapse into one
  conjunction (fewer intermediate materializations), and
* **Restrict pushdown** — a Restrict moves upstream past boxes that only
  decorate tuples (attribute/display boxes, ordering, distinct) and into the
  matching input of a Join, shrinking join inputs.

Rewrites are semantics-preserving by construction: a predicate only moves to
a position where (a) every field it references is a stored field there, (b)
no box it crosses modifies those fields' values, (c) the crossed box maps
rows 1:1 or commutes with filtering, and (d) no other consumer observes the
crossed box's output.  :func:`optimize` returns a rewritten copy plus a
rewrite log (the EXPLAIN story); the input program is untouched.
"""

from __future__ import annotations

from repro.dataflow.graph import Program
from repro.dataflow.serialize import clone_program
from repro.dbms.algebra import _joined_schema
from repro.dbms.catalog import Database
from repro.dbms.expr import Expr
from repro.dbms.parser import parse_expression
from repro.dbms.plan_rewrite import rename_fields, split_conjuncts
from repro.dbms.tuples import Schema
from repro.errors import TiogaError

__all__ = ["optimize", "stored_schema_of", "rename_fields"]

# Boxes a Restrict may cross when the predicate's fields are untouched:
# they keep rows 1:1 (decorators) or commute with filtering.
_CROSSABLE = {
    "SetAttribute": True,
    "AddAttribute": True,
    "CombineDisplays": True,
    "SetRange": True,
    "OrderBy": True,
    "Distinct": True,
    "Rename": True,            # field map handled explicitly
    "ScaleAttribute": True,    # blocked per-field via _modified_fields
    "TranslateAttribute": True,
    "SwapAttributes": True,
    "RemoveAttribute": True,
}
# Explicitly NOT crossable: Sample (per-row RNG sequence changes), Limit
# (filter does not commute with head-N), Switch/T (multiple consumers by
# design), Join (handled by the dedicated join rule), Replicate/Overlay/
# Stitch (composite/group outputs), Encapsulated (opaque).


def stored_schema_of(
    program: Program, box_id: int, port: str, database: Database,
    _memo: dict | None = None,
) -> Schema | None:
    """The stored-row schema on an output port, or None when unknown.

    Static propagation through the boxes whose row schema is derivable
    without evaluation; anything else returns None and blocks rewrites.
    """
    memo = _memo if _memo is not None else {}
    key = (box_id, port)
    if key in memo:
        return memo[key]
    memo[key] = None  # cycle guard (cycles are impossible, but be safe)
    box = program.box(box_id)

    def input_schema(port_name: str = "in") -> Schema | None:
        edge = program.edge_into_port(box_id, port_name)
        if edge is None:
            return None
        return stored_schema_of(program, edge.src_box, edge.src_port,
                                database, memo)

    schema: Schema | None = None
    kind = box.type_name
    if kind == "AddTable":
        table = box.param("table")
        if table and database.has_table(table):
            schema = database.table(table).schema
    elif kind in ("Restrict", "Sample", "SetRange", "OrderBy", "Distinct",
                  "Limit", "Threshold", "SetAttribute", "AddAttribute",
                  "CombineDisplays", "ScaleAttribute", "TranslateAttribute",
                  "SwapAttributes"):
        schema = input_schema()
    elif kind == "Switch":
        schema = input_schema()
    elif kind == "T":
        schema = input_schema()
    elif kind == "Union":
        schema = input_schema("left")
    elif kind == "Project":
        upstream = input_schema()
        fields = box.param("fields")
        if upstream is not None and fields:
            try:
                schema = upstream.project(fields)
            except TiogaError:
                schema = None
    elif kind == "Rename":
        upstream = input_schema()
        old = box.param("old")
        new = box.param("new")
        if upstream is not None and old and new and old in upstream:
            try:
                schema = upstream.rename(old, new)
            except TiogaError:
                schema = None
    elif kind == "RemoveAttribute":
        upstream = input_schema()
        name = box.param("name")
        if upstream is not None:
            schema = upstream.without(name) if name in upstream else upstream
    elif kind == "Join":
        left = input_schema("left")
        right = input_schema("right")
        if left is not None and right is not None:
            schema, __ = _joined_schema(left, right)
    # Everything else (Overlay, Stitch, Replicate, Encapsulated, Viewer,
    # Parameter, ...) stays unknown.
    memo[key] = schema
    return schema


def _modified_fields(box) -> set[str]:
    """Stored fields whose *values* the box may change."""
    kind = box.type_name
    if kind in ("ScaleAttribute", "TranslateAttribute"):
        name = box.param("name")
        return {name} if name else set()
    if kind == "SwapAttributes":
        return {box.param("first"), box.param("second")} - {None}
    return set()


def _plain_restricts(program: Program) -> list[int]:
    """Restrict boxes without overload selection (safe to move)."""
    return [
        box.box_id
        for box in program.boxes_of_type("Restrict")
        if box.param("component") is None and box.param("member") is None
        and box.param("predicate")
    ]


def _sole_consumer(program: Program, box_id: int, port: str) -> bool:
    consumers = [
        edge for edge in program.edges()
        if edge.src_box == box_id and edge.src_port == port
    ]
    return len(consumers) == 1


def _merge_adjacent_restricts(program: Program, log: list[str]) -> bool:
    for restrict_id in _plain_restricts(program):
        edge = program.edge_into_port(restrict_id, "in")
        if edge is None:
            continue
        upstream = program.box(edge.src_box)
        if upstream.type_name != "Restrict":
            continue
        if upstream.param("component") is not None or \
                upstream.param("member") is not None:
            continue
        if not _sole_consumer(program, edge.src_box, edge.src_port):
            continue
        a = upstream.param("predicate")
        b = program.box(restrict_id).param("predicate")
        if not a or not b:
            continue
        upstream.set_param("predicate", f"({a}) and ({b})")
        program.delete_box(restrict_id)  # 1-in/1-out same type: splices
        log.append(
            f"merged Restrict #{restrict_id} into #{upstream.box_id}: "
            f"({a}) and ({b})"
        )
        return True
    return False


def _push_past_decorator(
    program: Program, database: Database, log: list[str]
) -> bool:
    for restrict_id in _plain_restricts(program):
        edge = program.edge_into_port(restrict_id, "in")
        if edge is None:
            continue
        upstream = program.box(edge.src_box)
        if not _CROSSABLE.get(upstream.type_name):
            continue
        if upstream.param("component") is not None or \
                upstream.param("member") is not None:
            continue
        if not _sole_consumer(program, edge.src_box, edge.src_port):
            continue
        upstream_in = program.edge_into_port(upstream.box_id, "in")
        if upstream_in is None:
            continue
        memo: dict = {}
        schema_above = stored_schema_of(
            program, upstream_in.src_box, upstream_in.src_port, database, memo
        )
        if schema_above is None:
            continue
        restrict = program.box(restrict_id)
        try:
            predicate = parse_expression(restrict.param("predicate"))
        except TiogaError:
            continue
        if upstream.type_name == "Rename":
            # Below the Rename the field carries the new name; above it, the
            # old one.  Map before the schema check (values are unchanged).
            predicate = rename_fields(
                predicate,
                {upstream.param("new"): upstream.param("old")},
            )
        fields = predicate.fields_used()
        if not fields <= set(schema_above.names):
            continue
        if fields & _modified_fields(upstream):
            continue
        if upstream.type_name == "Rename":
            restrict.set_param("predicate", str(predicate))
        # Rewire: source -> Restrict -> decorator -> (old consumers).
        downstream = program.edges_from(restrict_id)
        program.disconnect(edge)                      # decorator -> restrict
        program.disconnect(upstream_in)               # source -> decorator
        for consumer in downstream:
            program.disconnect(consumer)
        program.connect(upstream_in.src_box, upstream_in.src_port,
                        restrict_id, "in")
        program.connect(restrict_id, "out", upstream.box_id, "in")
        for consumer in downstream:
            program.connect(upstream.box_id, edge.src_port,
                            consumer.dst_box, consumer.dst_port)
        log.append(
            f"pushed Restrict #{restrict_id} above "
            f"{upstream.type_name} #{upstream.box_id}"
        )
        return True
    return False


_conjuncts = split_conjuncts


def _push_below_join(
    program: Program, database: Database, log: list[str]
) -> bool:
    from repro.dataflow.boxes_db import RestrictBox

    for restrict_id in _plain_restricts(program):
        edge = program.edge_into_port(restrict_id, "in")
        if edge is None:
            continue
        join = program.box(edge.src_box)
        if join.type_name != "Join":
            continue
        if not _sole_consumer(program, join.box_id, "out"):
            continue
        left_edge = program.edge_into_port(join.box_id, "left")
        right_edge = program.edge_into_port(join.box_id, "right")
        if left_edge is None or right_edge is None:
            continue
        memo: dict = {}
        left_schema = stored_schema_of(
            program, left_edge.src_box, left_edge.src_port, database, memo
        )
        right_schema = stored_schema_of(
            program, right_edge.src_box, right_edge.src_port, database, memo
        )
        if left_schema is None or right_schema is None:
            continue
        __, renames = _joined_schema(left_schema, right_schema)
        restrict = program.box(restrict_id)
        try:
            predicate = parse_expression(restrict.param("predicate"))
        except TiogaError:
            continue
        right_joined_names = {
            renames.get(name, name) for name in right_schema.names
        }
        left_only = set(left_schema.names) - right_joined_names
        reverse = {joined: original for original, joined in renames.items()}

        # Classify each top-level conjunct by the side that supplies all of
        # its fields; any unclassifiable conjunct blocks the whole rewrite.
        left_parts: list[Expr] = []
        right_parts: list[Expr] = []
        blocked = False
        for conjunct in _conjuncts(predicate):
            fields = conjunct.fields_used()
            if fields <= left_only:
                left_parts.append(conjunct)
            elif fields <= right_joined_names and not (fields & left_only):
                right_parts.append(rename_fields(conjunct, reverse))
            else:
                blocked = True
                break
        if blocked or (not left_parts and not right_parts):
            continue

        def conjoin(parts: list[Expr]) -> str:
            source = str(parts[0])
            for part in parts[1:]:
                source = f"({source}) and ({part})"
            return source

        consumers = program.edges_from(restrict_id)
        program.disconnect(edge)  # join -> restrict
        for consumer in consumers:
            program.disconnect(consumer)

        def insert_side(side: str, side_edge, parts: list[Expr],
                        reuse: int | None) -> int:
            program.disconnect(side_edge)
            if reuse is not None:
                box_id = reuse
                program.box(box_id).set_param("predicate", conjoin(parts))
            else:
                box_id = program.add_box(
                    RestrictBox(predicate=conjoin(parts))
                )
            program.connect(side_edge.src_box, side_edge.src_port,
                            box_id, "in")
            program.connect(box_id, "out", join.box_id, side)
            log.append(
                f"pushed Restrict #{box_id} into the {side} input of "
                f"Join #{join.box_id}"
            )
            return box_id

        reuse: int | None = restrict_id
        if left_parts:
            insert_side("left", left_edge, left_parts, reuse)
            reuse = None
        if right_parts:
            insert_side("right", right_edge, right_parts, reuse)
            reuse = None
        if reuse is not None:  # pragma: no cover - guarded above
            raise TiogaError("join pushdown classified no conjuncts")
        for consumer in consumers:
            program.connect(join.box_id, "out",
                            consumer.dst_box, consumer.dst_port)
        return True
    return False


def optimize(
    program: Program, database: Database, max_passes: int = 50
) -> tuple[Program, list[str]]:
    """Apply rewrite rules to a copy of ``program`` until fixpoint.

    Returns (optimized copy, rewrite log).  With no applicable rewrites the
    copy is structurally identical and the log empty.
    """
    optimized = clone_program(program)
    optimized.name = program.name
    log: list[str] = []
    for __ in range(max_passes):
        changed = (
            _merge_adjacent_restricts(optimized, log)
            or _push_below_join(optimized, database, log)
            or _push_past_decorator(optimized, database, log)
        )
        if not changed:
            break
    return optimized, log
