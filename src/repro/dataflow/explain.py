"""EXPLAIN for dataflow programs: per-operator execution profiles.

Boxes fire by emitting physical-plan fragments (:mod:`repro.dbms.plan`);
demanding an output executes the fragment and leaves per-node counters
behind — rows in/out, batch count, buffered state, wall time.  This module
surfaces those counters: :func:`explain` demands every (connected) box
output of a program, then prints each output's plan tree annotated with its
counters plus the engine's per-box fire/cache accounting.

This is the debugging story for "no distinction between constructing,
modifying, and using a program" (§1.2): the same incremental evaluation
that drives the display also reports exactly what each edit recomputed.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.dataflow.engine import Engine, _all_required_inputs_connected
from repro.dataflow.graph import Program
from repro.dbms.catalog import Database
from repro.dbms.plan import LazyRowSet, explain_plan
from repro.display.displayable import Composite, DisplayableRelation, Group
from repro.errors import TiogaError

__all__ = ["explain", "output_plans"]


def output_plans(value: Any) -> Iterator[tuple[str, LazyRowSet]]:
    """Yield ``(what, lazy)`` for every plan-backed row set inside a value.

    ``what`` names the slot within the output (the relation's name, with
    group members prefixed); containers are walked the way the renderer
    walks them.
    """
    if isinstance(value, LazyRowSet):
        yield value.label or "rows", value
    elif isinstance(value, DisplayableRelation):
        if isinstance(value.rows, LazyRowSet):
            yield value.name, value.rows
    elif isinstance(value, Composite):
        for entry in value.entries:
            yield from output_plans(entry.relation)
    elif isinstance(value, Group):
        for member_name, member in value.members:
            for what, lazy in output_plans(member):
                yield f"{member_name}.{what}", lazy


def explain(
    program: Program,
    database: Database | None = None,
    *,
    engine: Engine | None = None,
    box_id: int | None = None,
) -> str:
    """Demand a program's outputs and report every operator's counters.

    Pass an existing ``engine`` to profile its current (possibly warm)
    state — cache hits then show as ``Cache[..., hot]`` leaves and engine
    hits; otherwise a fresh engine is built over ``database`` and every
    fire is cold.  ``box_id`` limits the report to one box's outputs.
    """
    if engine is None:
        if database is None:
            raise TiogaError("explain needs a database or an engine")
        engine = Engine(program, database)

    box_ids = [box_id] if box_id is not None else program.topological_order()
    lines: list[str] = []
    for bid in box_ids:
        box = program.box(bid)
        if not box.outputs:
            continue
        if not _all_required_inputs_connected(program, box):
            lines.append(f"-- {box.describe()}: inputs not connected, skipped")
            continue
        for port in box.outputs:
            header = f"== {box.describe()} .{port.name} =="
            try:
                value = engine.output_of(bid, port.name)
            except TiogaError as exc:
                lines.append(header)
                lines.append(f"error: {exc}")
                continue
            lines.append(header)
            plans = list(output_plans(value))
            if not plans:
                lines.append(f"(materialized: {value!r})")
            for what, lazy in plans:
                if len(plans) > 1 or what != (lazy.label or "rows"):
                    lines.append(f"-- {what}")
                lines.append(explain_plan(lazy.plan))
    lines.append(engine.stats.summary())
    return "\n".join(lines)
