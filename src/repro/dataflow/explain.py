"""EXPLAIN for dataflow programs: per-operator execution profiles.

Boxes fire by emitting physical-plan fragments (:mod:`repro.dbms.plan`);
demanding an output executes the fragment and leaves per-node counters
behind — rows in/out, batch count, buffered state, wall time.  This module
surfaces those counters: :func:`explain` demands every (connected) box
output of a program, then prints each output's plan tree annotated with its
counters plus the engine's per-box fire/cache accounting.

This is the debugging story for "no distinction between constructing,
modifying, and using a program" (§1.2): the same incremental evaluation
that drives the display also reports exactly what each edit recomputed.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator

from repro.dataflow.engine import Engine, _all_required_inputs_connected
from repro.dataflow.graph import Program
from repro.dbms.catalog import Database
from repro.dbms.plan import LazyRowSet, PlanNode, explain_plan
from repro.display.displayable import Composite, DisplayableRelation, Group
from repro.errors import TiogaError

__all__ = ["explain", "explain_data", "output_plans", "deterministic_order"]


def deterministic_order(program: Program) -> list[int]:
    """Topological order with ties broken by ascending box id.

    ``Program.topological_order`` is deterministic for a given construction
    history but depends on edge insertion order; EXPLAIN output must be
    stable across equivalent programs (serialization round-trips reorder
    edges), so ties are resolved by id.
    """
    indegree = {box_id: 0 for box_id in
                (box.box_id for box in program.boxes())}
    for edge in program.edges():
        indegree[edge.dst_box] += 1
    ready = [box_id for box_id, degree in indegree.items() if degree == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        current = heapq.heappop(ready)
        order.append(current)
        for edge in program.edges_from(current):
            indegree[edge.dst_box] -= 1
            if indegree[edge.dst_box] == 0:
                heapq.heappush(ready, edge.dst_box)
    return order


def output_plans(value: Any) -> Iterator[tuple[str, LazyRowSet]]:
    """Yield ``(what, lazy)`` for every plan-backed row set inside a value.

    ``what`` names the slot within the output (the relation's name, with
    group members prefixed); containers are walked the way the renderer
    walks them.
    """
    if isinstance(value, LazyRowSet):
        yield value.label or "rows", value
    elif isinstance(value, DisplayableRelation):
        if isinstance(value.rows, LazyRowSet):
            yield value.name, value.rows
    elif isinstance(value, Composite):
        for entry in value.entries:
            yield from output_plans(entry.relation)
    elif isinstance(value, Group):
        for member_name, member in value.members:
            for what, lazy in output_plans(member):
                yield f"{member_name}.{what}", lazy


def explain(
    program: Program,
    database: Database | None = None,
    *,
    engine: Engine | None = None,
    box_id: int | None = None,
) -> str:
    """Demand a program's outputs and report every operator's counters.

    Pass an existing ``engine`` to profile its current (possibly warm)
    state — cache hits then show as ``Cache[..., hot]`` leaves and engine
    hits; otherwise a fresh engine is built over ``database`` and every
    fire is cold.  ``box_id`` limits the report to one box's outputs.
    """
    if engine is None:
        if database is None:
            raise TiogaError("explain needs a database or an engine")
        engine = Engine(program, database)

    box_ids = [box_id] if box_id is not None else deterministic_order(program)
    lines: list[str] = []
    for bid in box_ids:
        box = program.box(bid)
        if not box.outputs:
            continue
        if not _all_required_inputs_connected(program, box):
            lines.append(f"-- {box.describe()}: inputs not connected, skipped")
            continue
        for port in box.outputs:
            header = f"== {box.describe()} .{port.name} =="
            try:
                value = engine.output_of(bid, port.name)
            except TiogaError as exc:
                lines.append(header)
                lines.append(f"error: {exc}")
                continue
            lines.append(header)
            plans = list(output_plans(value))
            if not plans:
                lines.append(f"(materialized: {value!r})")
            for what, lazy in plans:
                if len(plans) > 1 or what != (lazy.label or "rows"):
                    lines.append(f"-- {what}")
                if lazy.cache_status is not None:
                    lines.append(f"-- result cache: {lazy.cache_status}")
                lines.append(explain_plan(lazy.plan))
    lines.append(engine.stats.summary())
    return "\n".join(lines)


def _plan_to_dict(node: PlanNode, counter: list[int]) -> dict[str, Any]:
    """One plan node as a JSON-ready dict; ids are preorder positions, so
    they are stable for a given tree shape."""
    node_id = counter[0]
    counter[0] += 1
    stats = node.stats
    entry: dict[str, Any] = {
        "id": node_id,
        "op": node.label,
        "describe": node.describe(),
        "stats": {
            "rows_in": stats.rows_in,
            "rows_out": stats.rows_out,
            "batches": stats.batches,
            "opens": stats.opens,
            "rows_buffered": stats.rows_buffered,
            "wall_ms": round(stats.wall_s * 1000.0, 3),
        },
        "notes": list(stats.notes),
        "children": [_plan_to_dict(child, counter) for child in node.children],
    }
    entry["backend"] = getattr(node, "backend", "row")
    parallel = getattr(node, "parallel_info", None)
    if parallel is not None:
        entry["parallel"] = parallel
    proof = getattr(node, "proof", None)
    if proof is not None:
        entry["proof"] = proof
    return entry


def explain_data(
    program: Program,
    database: Database | None = None,
    *,
    engine: Engine | None = None,
    box_id: int | None = None,
) -> dict[str, Any]:
    """Machine-readable EXPLAIN: the dict behind :func:`explain`.

    Boxes appear in topological order with ties broken by box id
    (:func:`deterministic_order`); plan nodes carry their counters *and*
    their free-form notes — including the hash-join → nested-loop
    degradation warning — so tooling need not parse the human text.
    """
    if engine is None:
        if database is None:
            raise TiogaError("explain needs a database or an engine")
        engine = Engine(program, database)

    box_ids = [box_id] if box_id is not None else deterministic_order(program)
    boxes: list[dict[str, Any]] = []
    for bid in box_ids:
        box = program.box(bid)
        if not box.outputs:
            continue
        entry: dict[str, Any] = {"box": bid, "type": box.type_name,
                                 "outputs": []}
        if not _all_required_inputs_connected(program, box):
            entry["skipped"] = "inputs not connected"
            boxes.append(entry)
            continue
        for port in box.outputs:
            output: dict[str, Any] = {"port": port.name, "plans": []}
            try:
                value = engine.output_of(bid, port.name)
            except TiogaError as exc:
                output["error"] = str(exc)
                entry["outputs"].append(output)
                continue
            for what, lazy in output_plans(value):
                counter = [0]
                output["plans"].append(
                    {
                        "what": what,
                        "cache": lazy.cache_status,
                        "tree": _plan_to_dict(lazy.plan, counter),
                    }
                )
            entry["outputs"].append(output)
        boxes.append(entry)
    return {
        "program": program.name,
        "boxes": boxes,
        "engine": engine.stats.to_dict(),
    }
