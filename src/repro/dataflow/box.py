"""The Box base class: a primitive procedure with typed inputs and outputs.

"A box is a primitive procedure with some number of inputs and outputs. ...
When data is present on all of a box's inputs, the box can 'fire', producing
results on one or more outputs." (Section 2)

Boxes carry their parameters (a predicate source string, a field list, a
sampling probability, …) as a JSON-serializable ``params`` dict, so programs
round-trip through the database (Save Program / Load Program).  Changing a
parameter bumps the box's version stamp, which invalidates downstream caches
in the lazy engine — the mechanism behind incremental programming.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.dataflow.ports import Port
from repro.errors import GraphError

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataflow.engine import FireContext

__all__ = ["Box"]


class Box:
    """Base class for all primitive procedures in a boxes-and-arrows program.

    Subclasses set ``type_name`` (the registry key used by Apply Box and
    serialization), build their port lists in ``__init__``, and implement
    :meth:`fire`.  ``overloadable`` marks R-level (or C-level) boxes that
    accept higher displayable types via component selection (§2).
    """

    type_name: str = "box"
    overloadable: bool = False

    def __init__(self, params: dict[str, Any] | None = None):
        self.params: dict[str, Any] = dict(params or {})
        self.inputs: list[Port] = []
        self.outputs: list[Port] = []
        self.version = 0
        self.box_id: int | None = None  # assigned when added to a Program
        self.label: str | None = None

    # -- ports ------------------------------------------------------------

    def input_port(self, name: str) -> Port:
        for port in self.inputs:
            if port.name == name:
                return port
        raise GraphError(
            f"box {self.describe()} has no input {name!r}; "
            f"inputs: {[p.name for p in self.inputs]}"
        )

    def output_port(self, name: str) -> Port:
        for port in self.outputs:
            if port.name == name:
                return port
        raise GraphError(
            f"box {self.describe()} has no output {name!r}; "
            f"outputs: {[p.name for p in self.outputs]}"
        )

    # -- parameters --------------------------------------------------------

    def set_param(self, name: str, value: Any) -> None:
        """Change a parameter; bumps the version so caches invalidate."""
        self.params[name] = value
        self.version += 1

    def param(self, name: str, default: Any = None) -> Any:
        return self.params.get(name, default)

    def require_param(self, name: str) -> Any:
        value = self.params.get(name)
        if value is None:
            raise GraphError(
                f"box {self.describe()} is missing required parameter {name!r}"
            )
        return value

    # -- firing -------------------------------------------------------------

    def fire(self, inputs: dict[str, Any], context: "FireContext") -> dict[str, Any]:
        """Compute all outputs from all inputs.

        ``inputs`` maps input port names to values; the result maps output
        port names to values.  ``context`` gives access to the database and
        engine services (e.g. nested evaluation for encapsulated boxes).
        """
        raise NotImplementedError

    # -- description ---------------------------------------------------------

    def describe(self) -> str:
        ident = f"#{self.box_id}" if self.box_id is not None else "(detached)"
        label = f" {self.label!r}" if self.label else ""
        return f"{self.type_name}{label} {ident}"

    def signature(self, database: Any) -> tuple:
        """Extra cache-key material beyond version and input signatures.

        Source boxes override this to include e.g. the source table's
        version, so a database update invalidates everything downstream.
        """
        del database
        return ()

    def __repr__(self) -> str:
        ins = ", ".join(f"{p.name}:{p.type}" for p in self.inputs)
        outs = ", ".join(f"{p.name}:{p.type}" for p in self.outputs)
        return f"<{self.describe()} [{ins}] -> [{outs}]>"
