"""Encapsulation: user-defined boxes with optional holes (Section 4.1).

"**Encapsulate** permits the user to define new boxes.  The user specifies a
portion of the program to be encapsulated by drawing a closed curve around a
region of the program.  Edges cut by the curve are the inputs and outputs of
the new box. ... The user draws additional closed areas within the program
region to be encapsulated.  These areas become 'holes' — they are not
included in the encapsulated box, and edges cut by a hole are unconnected.
To use an encapsulated box with holes, the user must specify a box — with
compatible types — that can be plugged into each hole."

Holes make encapsulated boxes higher-order: graphical macros/procedures
(§1.2 principle 5).  The closed curve is represented by the set of box ids it
encloses.
"""

from __future__ import annotations

from typing import Any

from repro.dataflow.box import Box
from repro.dataflow.graph import Edge, Program
from repro.dataflow.ports import Port, PortType
from repro.dataflow.registry import instantiate, register_box_class
from repro.dataflow.serialize import program_from_dict, program_to_dict
from repro.errors import GraphError, TypeCheckError

__all__ = ["ConstBox", "HoleBox", "EncapsulatedBox", "encapsulate", "collapse"]


class ConstBox(Box):
    """Internal source box carrying a runtime value into a nested program.

    Used only while firing an encapsulated box; never part of a saved
    program (its value is not serializable by design).
    """

    type_name = "_Const"

    def __init__(self, kind: str = "R"):
        super().__init__({"kind": kind})
        self.outputs = [Port("out", PortType.parse(kind))]
        self._value: Any = None
        self._has_value = False

    def set_value(self, value: Any) -> None:
        self._value = value
        self._has_value = True
        self.version += 1

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        if not self._has_value:
            raise GraphError("internal constant box fired without a value")
        return {"out": self._value}


class HoleBox(Box):
    """A placeholder with a declared interface; firing one is an error.

    ``input_ports`` / ``output_ports`` are lists of ``[name, type_text]``
    pairs mirroring the interface of whatever box will be plugged in.
    """

    type_name = "Hole"

    def __init__(
        self,
        hole_name: str | None = None,
        input_ports: list[list[str]] | None = None,
        output_ports: list[list[str]] | None = None,
    ):
        super().__init__(
            {
                "hole_name": hole_name,
                "input_ports": input_ports or [],
                "output_ports": output_ports or [],
            }
        )
        self.inputs = [Port(name, PortType.parse(t)) for name, t in (input_ports or [])]
        self.outputs = [
            Port(name, PortType.parse(t)) for name, t in (output_ports or [])
        ]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        raise GraphError(
            f"hole {self.param('hole_name')!r} has not been plugged; "
            "plug a compatible box before using this encapsulated box"
        )


register_box_class(ConstBox)
register_box_class(HoleBox)


class EncapsulatedBox(Box):
    """A user-defined box wrapping an inner boxes-and-arrows program.

    Fires by instantiating the inner program, feeding the boundary inputs
    through constant boxes, and demanding the boundary outputs with a nested
    lazy engine.  Serializable: the inner program rides along as a dict.
    """

    type_name = "Encapsulated"

    def __init__(
        self,
        name: str | None = None,
        program: dict[str, Any] | None = None,
        boundary_inputs: list[list[Any]] | None = None,
        boundary_outputs: list[list[Any]] | None = None,
    ):
        super().__init__(
            {
                "name": name,
                "program": program,
                "boundary_inputs": boundary_inputs or [],
                "boundary_outputs": boundary_outputs or [],
            }
        )
        self.inputs = [
            Port(f"in{i + 1}", PortType.parse(type_text))
            for i, (__, __port, type_text) in enumerate(boundary_inputs or [])
        ]
        self.outputs = [
            Port(f"out{i + 1}", PortType.parse(type_text))
            for i, (__, __port, type_text) in enumerate(boundary_outputs or [])
        ]

    # ------------------------------------------------------------------

    def hole_names(self) -> list[str]:
        """Names of unplugged holes in the inner program."""
        inner = program_from_dict(self.require_param("program"))
        return [
            box.param("hole_name")
            for box in inner.boxes()
            if isinstance(box, HoleBox)
        ]

    def plug(self, hole_name: str, replacement: Box) -> "EncapsulatedBox":
        """A new encapsulated box with one hole replaced by ``replacement``.

        The replacement's ports must be compatible with the hole's connected
        edges (checked by :meth:`Program.replace_box`).
        """
        inner = program_from_dict(self.require_param("program"))
        hole_id = None
        for box in inner.boxes():
            if isinstance(box, HoleBox) and box.param("hole_name") == hole_name:
                hole_id = box.box_id
                break
        if hole_id is None:
            raise GraphError(
                f"encapsulated box {self.param('name')!r} has no hole "
                f"{hole_name!r}; holes: {self.hole_names()}"
            )
        inner.replace_box(hole_id, replacement)
        return EncapsulatedBox(
            name=self.param("name"),
            program=program_to_dict(inner),
            boundary_inputs=self.param("boundary_inputs"),
            boundary_outputs=self.param("boundary_outputs"),
        )

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        from repro.dataflow.engine import Engine

        runtime = program_from_dict(self.require_param("program"))
        unplugged = [
            box.param("hole_name")
            for box in runtime.boxes()
            if isinstance(box, HoleBox)
        ]
        if unplugged:
            raise GraphError(
                f"encapsulated box {self.param('name')!r} has unplugged holes: "
                f"{', '.join(map(str, unplugged))}"
            )
        for i, (box_id, port_name, type_text) in enumerate(
            self.require_param("boundary_inputs")
        ):
            const = ConstBox(type_text)
            const_id = runtime.add_box(const)
            const.set_value(inputs[f"in{i + 1}"])
            runtime.connect(const_id, "out", box_id, port_name)
        engine = Engine(runtime, context.database)
        outputs: dict[str, Any] = {}
        for i, (box_id, port_name, __) in enumerate(
            self.require_param("boundary_outputs")
        ):
            outputs[f"out{i + 1}"] = engine.output_of(box_id, port_name)
        return outputs


register_box_class(EncapsulatedBox)


def _region_subprogram(
    program: Program, region: set[int], holes: list[set[int]]
) -> tuple[Program, list[list[Any]], list[list[Any]]]:
    """Build the inner program plus boundary input/output descriptors."""
    hole_ids = {box_id for hole in holes for box_id in hole}
    body = region - hole_ids
    if not body:
        raise GraphError("encapsulation region contains no boxes outside holes")
    for box_id in region:
        program.box(box_id)  # validate existence

    inner = Program("encapsulated")
    for box_id in sorted(body):
        original = program.box(box_id)
        clone = instantiate(original.type_name, original.params)
        inner.add_box(clone, label=original.label, box_id=box_id)

    boundary_inputs: list[list[Any]] = []
    boundary_outputs: list[list[Any]] = []
    seen_outputs: set[tuple[int, str]] = set()

    # Hole boxes: one per closed hole area, with ports for each cut edge.
    # Ports take the names of the carved-out boxes' own ports (deduped), so
    # a box with the same interface plugs in directly.  Edges that cross both
    # the hole and the outer curve (outside ↔ hole) become boundary ports of
    # the encapsulated box, wired to the hole.
    for pos, hole in enumerate(holes):
        hole_name = f"hole{pos + 1}"
        input_ports: list[list[str]] = []
        output_ports: list[list[str]] = []
        # (edge, port name, into_hole, crosses_outer_curve)
        rewires: list[tuple[Edge, str, bool, bool]] = []

        def unique(name: str, taken: list[list[str]]) -> str:
            existing = {entry[0] for entry in taken}
            if name not in existing:
                return name
            suffix = 2
            while f"{name}_{suffix}" in existing:
                suffix += 1
            return f"{name}_{suffix}"

        for edge in program.edges():
            src_in = edge.src_box in hole
            dst_in = edge.dst_box in hole
            if src_in and dst_in:
                continue
            if dst_in:
                port_type = program.box(edge.dst_box).input_port(edge.dst_port).type
                name = unique(edge.dst_port, input_ports)
                input_ports.append([name, str(port_type)])
                rewires.append((edge, name, True, edge.src_box not in body))
            elif src_in:
                port_type = program.box(edge.src_box).output_port(edge.src_port).type
                name = unique(edge.src_port, output_ports)
                output_ports.append([name, str(port_type)])
                rewires.append((edge, name, False, edge.dst_box not in body))
        hole_box = HoleBox(hole_name, input_ports, output_ports)
        hole_box_id = inner.add_box(hole_box)
        for edge, port_name, into_hole, crosses in rewires:
            if into_hole:
                if crosses:
                    port_type = program.box(edge.dst_box).input_port(edge.dst_port).type
                    boundary_inputs.append([hole_box_id, port_name, str(port_type)])
                else:
                    inner.connect(edge.src_box, edge.src_port, hole_box_id, port_name)
            else:
                if crosses:
                    port_type = program.box(edge.src_box).output_port(edge.src_port).type
                    boundary_outputs.append([hole_box_id, port_name, str(port_type)])
                    seen_outputs.add((hole_box_id, port_name))
                else:
                    inner.connect(hole_box_id, port_name, edge.dst_box, edge.dst_port)

    for edge in program.edges():
        src_in = edge.src_box in body
        dst_in = edge.dst_box in body
        if src_in and dst_in:
            inner.connect(edge.src_box, edge.src_port, edge.dst_box, edge.dst_port)
        elif dst_in and edge.src_box not in hole_ids:
            port_type = program.box(edge.dst_box).input_port(edge.dst_port).type
            boundary_inputs.append([edge.dst_box, edge.dst_port, str(port_type)])
        elif src_in and edge.dst_box not in hole_ids:
            key = (edge.src_box, edge.src_port)
            if key not in seen_outputs:
                seen_outputs.add(key)
                port_type = program.box(edge.src_box).output_port(edge.src_port).type
                boundary_outputs.append([edge.src_box, edge.src_port, str(port_type)])

    # Outputs of region boxes that are connected to nothing at all also
    # become boundary outputs: the paper's "everything is always
    # visualizable" applies to the new box's results just as it did to the
    # dangling edge before encapsulation.
    connected_outputs = {
        (edge.src_box, edge.src_port) for edge in program.edges()
    }
    for box_id in sorted(body):
        for port in program.box(box_id).outputs:
            key = (box_id, port.name)
            if key not in connected_outputs and key not in seen_outputs:
                seen_outputs.add(key)
                boundary_outputs.append([box_id, port.name, str(port.type)])
    return inner, boundary_inputs, boundary_outputs


def encapsulate(
    program: Program,
    region: set[int] | list[int],
    name: str,
    holes: list[set[int] | list[int]] | None = None,
) -> EncapsulatedBox:
    """Build a new box from the program region enclosed by the user's curve.

    ``region`` is the set of box ids inside the closed curve; each entry of
    ``holes`` is the set of box ids inside one inner closed area.  The new
    box can be registered in the catalog and "used like any other primitive
    box."
    """
    region_set = set(region)
    hole_sets = [set(h) for h in (holes or [])]
    for hole in hole_sets:
        if not hole <= region_set:
            raise GraphError("holes must lie inside the encapsulation region")
    inner, boundary_inputs, boundary_outputs = _region_subprogram(
        program, region_set, hole_sets
    )
    inner.name = name
    return EncapsulatedBox(
        name=name,
        program=program_to_dict(inner),
        boundary_inputs=boundary_inputs,
        boundary_outputs=boundary_outputs,
    )


def collapse(
    program: Program, region: set[int] | list[int], name: str
) -> tuple[int, EncapsulatedBox]:
    """Encapsulate a region *and* replace it in the program by the new box.

    Cut edges are reconnected to the new box's boundary ports.  Returns the
    new box's id and the box itself.
    """
    region_set = set(region)
    box = encapsulate(program, region_set, name)
    incoming = [
        edge
        for edge in program.edges()
        if edge.dst_box in region_set and edge.src_box not in region_set
    ]
    outgoing = [
        edge
        for edge in program.edges()
        if edge.src_box in region_set and edge.dst_box not in region_set
    ]
    for edge in incoming + outgoing:
        program.disconnect(edge)
    for edge in [e for e in program.edges() if e.src_box in region_set]:
        program.disconnect(edge)
    for box_id in region_set:
        inner_box = program.box(box_id)
        for edge in program.edges_into(box_id) + program.edges_from(box_id):
            program.disconnect(edge)
        del program._boxes[box_id]
        inner_box.box_id = None
    new_id = program.add_box(box, label=name)
    for i, (dst_box, dst_port, __) in enumerate(box.param("boundary_inputs")):
        for edge in incoming:
            if edge.dst_box == dst_box and edge.dst_port == dst_port:
                program.connect(edge.src_box, edge.src_port, new_id, f"in{i + 1}")
    for i, (src_box, src_port, __) in enumerate(box.param("boundary_outputs")):
        for edge in outgoing:
            if edge.src_box == src_box and edge.src_port == src_port:
                program.connect(new_id, f"out{i + 1}", edge.dst_box, edge.dst_port)
    program.version += 1
    return new_id, box
