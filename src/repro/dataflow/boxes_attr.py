"""Location and display attribute boxes (Figure 5).

====================  ========  ==========================================
Operation             Box type  Effect
====================  ========  ==========================================
Add Attribute         R → R'    add an attribute; user gives its definition
Remove Attribute      R → R'    remove one; never x, y, or display
Set Attribute         R → R'    change an attribute's value/definition
Swap Attributes       R → R'    interchange two same-typed attributes
Scale Attribute       R → R'    multiply a numeric attribute by a constant
Translate Attribute   R → R'    add a constant to a numeric attribute
Combine Displays      R → R'    combine two display attributes (§5.3)
====================  ========  ==========================================

Definitions are written in the query language and "may depend only on other
attributes of the relation" (§5.3); they are parsed and type-checked against
the relation's extended schema (stored fields + earlier computed attributes +
the ambient ``tioga_seq``).  Every box here is overloadable per Section 2.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.dataflow.box import Box
from repro.dataflow.overload import apply_to_relation
from repro.dataflow.ports import Port
from repro.dbms import types as T
from repro.dbms.expr import Binary, Literal
from repro.dbms.parser import parse_expression
from repro.dbms.relation import Method, MethodSet, RowSet
from repro.dbms.tuples import Tuple
from repro.display.displayable import DisplayableRelation
from repro.errors import DisplayError, GraphError, TypeCheckError

__all__ = [
    "AddAttributeBox",
    "RemoveAttributeBox",
    "SetAttributeBox",
    "SwapAttributesBox",
    "ScaleAttributeBox",
    "TranslateAttributeBox",
    "CombineDisplaysBox",
]

_PROTECTED = ("x", "y", "display")


class _AttrBox(Box):
    """Shared scaffolding: one R input/output plus overload selection."""

    overloadable = True

    def __init__(self, params: dict[str, Any]):
        super().__init__(params)
        self.inputs = [Port("in", "R")]
        self.outputs = [Port("out", "R")]

    def _apply(self, value: Any, op: Callable[[DisplayableRelation], DisplayableRelation]):
        return {
            "out": apply_to_relation(
                value, op, self.param("component"), self.param("member")
            )
        }


def _parse_definition(
    relation: DisplayableRelation, source: str, declared: str | None
) -> tuple[Any, T.AtomicType]:
    """Parse an attribute definition and resolve its type."""
    schema = relation.methods.reference_schema()
    expr = parse_expression(source, schema)
    inferred = expr.infer(schema)
    if declared is None:
        return expr, inferred
    atomic = T.type_by_name(declared)
    compatible = atomic is inferred or (T.numeric(atomic) and T.numeric(inferred))
    if not compatible:
        raise TypeCheckError(
            f"definition {source!r} has type {inferred}, declared {atomic}"
        )
    return expr, atomic


class AddAttributeBox(_AttrBox):
    """Add a computed attribute; ``location=True`` also registers it as a
    slider dimension, adding a dimension to the visualization (§5.3)."""

    type_name = "AddAttribute"

    def __init__(
        self,
        name: str | None = None,
        definition: str | None = None,
        declared_type: str | None = None,
        location: bool = False,
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__(
            {
                "name": name,
                "definition": definition,
                "declared_type": declared_type,
                "location": location,
                "component": component,
                "member": member,
            }
        )

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        name = self.require_param("name")
        definition = self.require_param("definition")

        def op(rel: DisplayableRelation) -> DisplayableRelation:
            expr, atomic = _parse_definition(
                rel, definition, self.param("declared_type")
            )
            result = rel.with_method_added(Method(name, atomic, expr))
            if self.param("location"):
                if not T.numeric(atomic):
                    raise DisplayError(
                        f"location attribute {name!r} must be numeric, got {atomic}"
                    )
                if name not in ("x", "y"):
                    result = result.with_slider_added(name)
            return result

        return self._apply(inputs["in"], op)


class RemoveAttributeBox(_AttrBox):
    """Remove an attribute; "cannot remove attributes x, y, or display"."""

    type_name = "RemoveAttribute"

    def __init__(
        self,
        name: str | None = None,
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__({"name": name, "component": component, "member": member})

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        name = self.require_param("name")
        if name in _PROTECTED:
            raise GraphError(
                f"cannot remove attribute {name!r}: x, y, and display are "
                "required for a valid visualization (Fig 5)"
            )

        def op(rel: DisplayableRelation) -> DisplayableRelation:
            if name in rel.slider_dims:
                rel = rel.with_slider_dims(
                    d for d in rel.slider_dims if d != name
                )
            if name in rel.methods:
                methods = rel.methods.copy()
                methods.remove(name)
                return rel.with_methods(methods)
            if name in rel.rows.schema:
                from repro.dbms.algebra import project

                keep = [f for f in rel.rows.schema.names if f != name]
                return rel.with_rows(project(rel.rows, keep))
            raise GraphError(f"relation {rel.name!r} has no attribute {name!r}")

        return self._apply(inputs["in"], op)


class SetAttributeBox(_AttrBox):
    """Change (or first establish) an attribute's definition (§5.3).

    Setting ``x``/``y``/``display`` for the first time replaces the default
    location/display — this is how Figure 4 maps (longitude, latitude) onto
    the canvas.  Stored fields cannot be redefined (their values live in the
    database; use an update, or Add Attribute under a new name).
    """

    type_name = "SetAttribute"

    def __init__(
        self,
        name: str | None = None,
        definition: str | None = None,
        declared_type: str | None = None,
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__(
            {
                "name": name,
                "definition": definition,
                "declared_type": declared_type,
                "component": component,
                "member": member,
            }
        )

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        name = self.require_param("name")
        definition = self.require_param("definition")

        def op(rel: DisplayableRelation) -> DisplayableRelation:
            if name in rel.rows.schema:
                raise GraphError(
                    f"{name!r} is a stored field; Set Attribute redefines "
                    "computed attributes only"
                )
            expr, atomic = _parse_definition(
                rel, definition, self.param("declared_type")
            )
            method = Method(name, atomic, expr)
            if name in rel.methods:
                return rel.with_method_replaced(method)
            return rel.with_method_added(method)

        return self._apply(inputs["in"], op)


class SwapAttributesBox(_AttrBox):
    """Interchange two attributes of the same type (§5.3).

    Swapping two location attributes "rotates" the canvas; swapping
    ``display`` with an alternative display changes the visualization — the
    magnifying-glass construction of Figure 9 uses exactly this.
    """

    type_name = "SwapAttributes"

    def __init__(
        self,
        first: str | None = None,
        second: str | None = None,
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__(
            {"first": first, "second": second, "component": component, "member": member}
        )

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        first = self.require_param("first")
        second = self.require_param("second")
        if first == second:
            raise GraphError("Swap Attributes needs two distinct attributes")

        def op(rel: DisplayableRelation) -> DisplayableRelation:
            in_methods = first in rel.methods, second in rel.methods
            in_stored = first in rel.rows.schema, second in rel.rows.schema
            if all(in_methods):
                return rel.with_methods(_swap_methods(rel.methods, first, second))
            if all(in_stored):
                return rel.with_rows(_swap_columns(rel.rows, first, second))
            raise GraphError(
                f"cannot swap {first!r} and {second!r}: both must be computed "
                "attributes or both stored fields"
            )

        return self._apply(inputs["in"], op)


def _swap_methods(methods: MethodSet, first: str, second: str) -> MethodSet:
    a = methods.get(first)
    b = methods.get(second)
    if a.type is not b.type and not (T.numeric(a.type) and T.numeric(b.type)):
        raise TypeCheckError(
            f"cannot swap attributes of different types: {first!r} is "
            f"{a.type}, {second!r} is {b.type}"
        )
    swapped = MethodSet(methods.base_schema, ambient=methods.ambient)
    for method in methods:
        if method.name == first:
            swapped.add(_renamed_method(b, first))
        elif method.name == second:
            swapped.add(_renamed_method(a, second))
        else:
            swapped.add(method)
    return swapped


def _renamed_method(method: Method, new_name: str) -> Method:
    if method.expr is not None:
        return Method(new_name, method.type, method.expr)
    return Method(
        new_name, method.type, method.compute, depends=method.depends
    )


def _swap_columns(rows: RowSet, first: str, second: str) -> RowSet:
    schema = rows.schema
    a = schema.type_of(first)
    b = schema.type_of(second)
    if a is not b:
        raise TypeCheckError(
            f"cannot swap stored fields of different types: {first!r} is "
            f"{a}, {second!r} is {b}"
        )
    swapped = [
        row.replace(**{first: row[second], second: row[first]}) for row in rows
    ]
    return RowSet(schema, swapped)


class _NumericAdjustBox(_AttrBox):
    """Shared logic for Scale/Translate Attribute (numeric only, §5.3)."""

    _operator = "*"

    def __init__(
        self,
        name: str | None = None,
        amount: float | None = None,
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__(
            {"name": name, "amount": amount, "component": component, "member": member}
        )

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        name = self.require_param("name")
        amount = float(self.require_param("amount"))
        operator = self._operator

        def op(rel: DisplayableRelation) -> DisplayableRelation:
            if name in rel.methods:
                old = rel.methods.get(name)
                if not T.numeric(old.type):
                    raise TypeCheckError(
                        f"attribute {name!r} is {old.type}; Scale/Translate "
                        "apply to numeric attributes only"
                    )
                if old.expr is not None:
                    new_expr = Binary(operator, old.expr, Literal(amount))
                    return rel.with_method_replaced(
                        Method(name, T.FLOAT, new_expr)
                    )
                compute = old.compute
                adjusted = (
                    (lambda row: compute(row) * amount)
                    if operator == "*"
                    else (lambda row: compute(row) + amount)
                )
                return rel.with_method_replaced(
                    Method(name, T.FLOAT, adjusted, depends=old.depends)
                )
            if name in rel.rows.schema:
                atomic = rel.rows.schema.type_of(name)
                if not T.numeric(atomic):
                    raise TypeCheckError(
                        f"stored field {name!r} is {atomic}; Scale/Translate "
                        "apply to numeric attributes only"
                    )
                adjust = (
                    (lambda v: v * amount) if operator == "*" else (lambda v: v + amount)
                )
                rows = RowSet(
                    rel.rows.schema,
                    (_adjust_row(row, name, adjust) for row in rel.rows),
                )
                return rel.with_rows(rows)
            raise GraphError(f"relation {rel.name!r} has no attribute {name!r}")

        return self._apply(inputs["in"], op)


def _adjust_row(row: Tuple, name: str, adjust: Callable[[Any], Any]) -> Tuple:
    atomic = row.schema.type_of(name)
    value = adjust(row[name])
    if atomic is T.INT and isinstance(value, float):
        # Stored int columns stay int when the adjustment lands on an integer;
        # otherwise the value genuinely needs a float column, which stored
        # fields cannot change to — surface that clearly.
        if not value.is_integer():
            raise TypeCheckError(
                f"adjusting stored int field {name!r} produced non-integer "
                f"{value}; use Add Attribute to derive a float attribute instead"
            )
        value = int(value)
    return row.replace(**{name: value})


class ScaleAttributeBox(_NumericAdjustBox):
    """Multiply a numerical attribute by a number (Fig 5)."""

    type_name = "ScaleAttribute"
    _operator = "*"


class TranslateAttributeBox(_NumericAdjustBox):
    """Add a number to a numerical attribute (Fig 5)."""

    type_name = "TranslateAttribute"
    _operator = "+"


class CombineDisplaysBox(_AttrBox):
    """Combine two display attributes into a new one (§5.3).

    "The user positions the displays on top of one another graphically to
    establish the relative position; alternatively, an explicit offset of one
    display to the other can be entered.  The combined display becomes a new
    display attribute."  The second display is shifted by ``offset`` and
    painted after (on top of) the first.
    """

    type_name = "CombineDisplays"

    def __init__(
        self,
        first: str | None = None,
        second: str | None = None,
        target: str = "display",
        offset_x: float = 0.0,
        offset_y: float = 0.0,
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__(
            {
                "first": first,
                "second": second,
                "target": target,
                "offset_x": offset_x,
                "offset_y": offset_y,
                "component": component,
                "member": member,
            }
        )

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        first = self.require_param("first")
        second = self.require_param("second")
        target = self.param("target", "display")
        dx = float(self.param("offset_x", 0.0))
        dy = float(self.param("offset_y", 0.0))

        def op(rel: DisplayableRelation) -> DisplayableRelation:
            schema = rel.extended_schema
            for name in (first, second):
                if name not in schema:
                    raise GraphError(
                        f"relation {rel.name!r} has no display attribute {name!r}"
                    )
                if schema.type_of(name) is not T.DRAWABLES:
                    raise TypeCheckError(
                        f"attribute {name!r} is {schema.type_of(name)}; Combine "
                        "Displays requires drawable-list attributes"
                    )

            def combined(row: Mapping[str, Any]) -> list:
                base = list(row[first])
                top = [d.with_offset(dx, dy) for d in row[second]]
                return base + top

            method = Method(
                target, T.DRAWABLES, combined, depends={first, second}
            )
            if target in rel.methods:
                return rel.with_method_replaced(method)
            return rel.with_method_added(method)

        return self._apply(inputs["in"], op)
