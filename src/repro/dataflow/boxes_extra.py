"""Big-programmer boxes beyond the paper's minimal catalog (§1.2 principle 5).

"It is expected that big programmers will still construct additional Tioga-2
boxes as in the original Tioga system."  These are exactly such boxes —
registered through the same registry, usable from Apply Box, serializable —
demonstrating that the primitive set is extensible without touching the
engine: aggregation, ordering, duplicate elimination, limiting, renaming,
union, and scalar runtime parameters.

:class:`ParameterBox` realizes the Section-2 remark that "a box input or
output may be a scalar value (e.g., a runtime parameter supplied by the
user)": it emits a typed scalar, and :class:`RestrictBox` (and
:class:`ThresholdBox` here) consume scalar inputs referenced from predicate
text as the ambient name ``param``.
"""

from __future__ import annotations

from typing import Any

from repro.dataflow.box import Box
from repro.dataflow.overload import apply_to_relation
from repro.dataflow.ports import Port, PortType, scalar
from repro.dataflow.registry import register_box_class
from repro.dbms import plan as P
from repro.dbms import types as T
from repro.dbms.parser import parse_expression
from repro.dbms.plan import LazyRowSet, source_plan
from repro.dbms.relation import RowSet
from repro.dbms.tuples import Field, Schema
from repro.display.displayable import DisplayableRelation
from repro.errors import GraphError, TypeCheckError

__all__ = [
    "AggregateBox",
    "OrderByBox",
    "DistinctBox",
    "LimitBox",
    "RenameBox",
    "UnionBox",
    "ParameterBox",
    "ThresholdBox",
]


class AggregateBox(Box):
    """Group-by aggregation: R → R'.

    ``aggregations`` is a list of ``[agg, field, output_name]`` with ``agg``
    one of count/sum/avg/min/max.  The output starts from the default
    display (its schema is new), preserving the §5.2 guarantee.
    """

    type_name = "Aggregate"
    overloadable = True

    def __init__(
        self,
        keys: list[str] | None = None,
        aggregations: list[list[str]] | None = None,
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__(
            {
                "keys": keys,
                "aggregations": aggregations,
                "component": component,
                "member": member,
            }
        )
        self.inputs = [Port("in", "R")]
        self.outputs = [Port("out", "R")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        keys = self.require_param("keys")
        aggregations = [tuple(spec) for spec in self.require_param("aggregations")]

        def op(rel: DisplayableRelation) -> DisplayableRelation:
            node = P.GroupByNode(source_plan(rel.rows, rel.name), keys, aggregations)
            name = f"{rel.name}_agg"
            return DisplayableRelation(LazyRowSet(node, label=name), name=name)

        return {
            "out": apply_to_relation(
                inputs["in"], op, self.param("component"), self.param("member")
            )
        }


class OrderByBox(Box):
    """Sort a relation; the default display's tuple sequence follows suit,
    so ordering directly reorders the terminal-monitor listing."""

    type_name = "OrderBy"
    overloadable = True

    def __init__(
        self,
        fields: list[str] | None = None,
        descending: bool = False,
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__(
            {
                "fields": fields,
                "descending": descending,
                "component": component,
                "member": member,
            }
        )
        self.inputs = [Port("in", "R")]
        self.outputs = [Port("out", "R")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        fields = self.require_param("fields")
        descending = bool(self.param("descending", False))

        def op(rel: DisplayableRelation) -> DisplayableRelation:
            node = P.OrderByNode(source_plan(rel.rows, rel.name), fields, descending)
            return rel.with_rows(LazyRowSet(node, label=rel.name))

        return {
            "out": apply_to_relation(
                inputs["in"], op, self.param("component"), self.param("member")
            )
        }


class DistinctBox(Box):
    """Remove duplicate tuples (first occurrence wins)."""

    type_name = "Distinct"
    overloadable = True

    def __init__(self, component: str | None = None, member: str | None = None):
        super().__init__({"component": component, "member": member})
        self.inputs = [Port("in", "R")]
        self.outputs = [Port("out", "R")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        return {
            "out": apply_to_relation(
                inputs["in"],
                lambda rel: rel.with_rows(
                    LazyRowSet(
                        P.DistinctNode(source_plan(rel.rows, rel.name)),
                        label=rel.name,
                    )
                ),
                self.param("component"),
                self.param("member"),
            )
        }


class LimitBox(Box):
    """Keep the first N tuples — handy for taming the default table view."""

    type_name = "Limit"
    overloadable = True

    def __init__(
        self,
        count: int | None = None,
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__({"count": count, "component": component, "member": member})
        self.inputs = [Port("in", "R")]
        self.outputs = [Port("out", "R")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        count = int(self.require_param("count"))
        return {
            "out": apply_to_relation(
                inputs["in"],
                lambda rel: rel.with_rows(
                    LazyRowSet(
                        P.LimitNode(source_plan(rel.rows, rel.name), count),
                        label=rel.name,
                    )
                ),
                self.param("component"),
                self.param("member"),
            )
        }


class RenameBox(Box):
    """Rename a stored field; computed attributes referencing the old name
    are re-checked (and fail loudly) rather than silently breaking."""

    type_name = "Rename"
    overloadable = True

    def __init__(
        self,
        old: str | None = None,
        new: str | None = None,
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__(
            {"old": old, "new": new, "component": component, "member": member}
        )
        self.inputs = [Port("in", "R")]
        self.outputs = [Port("out", "R")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        old = self.require_param("old")
        new = self.require_param("new")

        def op(rel: DisplayableRelation) -> DisplayableRelation:
            node = P.RenameNode(source_plan(rel.rows, rel.name), old, new)
            return rel.with_rows(LazyRowSet(node, label=rel.name))

        return {
            "out": apply_to_relation(
                inputs["in"], op, self.param("component"), self.param("member")
            )
        }


class UnionBox(Box):
    """Bag union of two schema-identical relations (R × R → R).

    The left input's visualization spec (methods, sliders, range) carries
    over; the right contributes rows only.
    """

    type_name = "Union"

    def __init__(self):
        super().__init__({})
        self.inputs = [Port("left", "R"), Port("right", "R")]
        self.outputs = [Port("out", "R")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        left = inputs["left"]
        right = inputs["right"]
        if not isinstance(left, DisplayableRelation) or not isinstance(
            right, DisplayableRelation
        ):
            raise GraphError("Union takes two relations (R); select components first")
        node = P.UnionNode(
            source_plan(left.rows, left.name), source_plan(right.rows, right.name)
        )
        return {"out": left.with_rows(LazyRowSet(node, label=left.name))}


class ParameterBox(Box):
    """A runtime parameter supplied by the user: ∅ → scalar (§2).

    The UI would render this as an entry widget; programmatically the value
    lives in ``value`` and editing it (set_param) invalidates consumers.
    """

    type_name = "Parameter"

    def __init__(self, value_type: str = "float", value: Any = None):
        super().__init__({"value_type": value_type, "value": value})
        self.outputs = [Port("out", scalar(value_type))]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        atomic = T.type_by_name(self.require_param("value_type"))
        value = self.require_param("value")
        return {"out": atomic.coerce(value)}


class ThresholdBox(Box):
    """Restrict driven by a scalar input: R × scalar → R.

    The predicate text may reference the ambient name ``param`` — e.g.
    ``altitude < param`` — whose value arrives on the scalar input at fire
    time.  This is the runtime-parameter pattern of §2 made concrete.
    """

    type_name = "Threshold"
    overloadable = True

    def __init__(
        self,
        predicate: str | None = None,
        value_type: str = "float",
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__(
            {
                "predicate": predicate,
                "value_type": value_type,
                "component": component,
                "member": member,
            }
        )
        self.inputs = [Port("in", "R"), Port("param", scalar(value_type))]
        self.outputs = [Port("out", "R")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        source = self.require_param("predicate")
        atomic = T.type_by_name(self.param("value_type", "float"))
        value = inputs["param"]

        def op(rel: DisplayableRelation) -> DisplayableRelation:
            schema = rel.methods.reference_schema()
            if "param" not in schema:
                schema = schema.extend(Field("param", atomic))
            expr = parse_expression(source, schema)
            if expr.infer(schema) is not T.BOOL:
                raise TypeCheckError(
                    f"Threshold predicate {source!r} must be boolean"
                )
            kept = []
            for seq, row in enumerate(rel.rows):
                view = rel.methods.row_view(
                    row, extra={"tioga_seq": seq, "param": value}
                )
                if bool(expr.evaluate(view)):
                    kept.append(row)
            return rel.with_rows(RowSet(rel.rows.schema, kept))

        return {
            "out": apply_to_relation(
                inputs["in"], op, self.param("component"), self.param("member")
            )
        }


for _cls in (
    AggregateBox,
    OrderByBox,
    DistinctBox,
    LimitBox,
    RenameBox,
    UnionBox,
    ParameterBox,
    ThresholdBox,
):
    register_box_class(_cls)
