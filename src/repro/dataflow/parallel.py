"""Engine-side integration of parallel execution and the result cache.

:func:`prepare_value` is the parallel-aware counterpart of the engine's
plain forcing walk: it descends demanded values (displayable relations,
composites, groups) and materializes every :class:`LazyRowSet` through
the machinery in :mod:`repro.dbms.plan_parallel` —

1. **Cache probe.**  If the config enables caching and the lazy set's plan
   has a fingerprint, a process-wide :class:`ResultCache` lookup may satisfy
   the demand instantly (``lazy.adopt``); slaved viewers and repeated
   renders share one materialization this way.  ``lazy.cache_status``
   records "hit"/"miss" for EXPLAIN.
2. **Parallelize.**  On a miss (or with caching off) the plan is rewritten
   by :func:`parallelize_plan` — same rows, same order, morsel-parallel
   where safe — before forcing.
3. **Publish.**  The materialized rows are stored back under the
   fingerprint, tagged with the storage epoch read *before* execution, so
   a concurrent update can never be masked by a stale entry.

Plans that have already started streaming (a downstream consumer pulled
through a CacheNode first) are left untouched: rewriting or adopting into
a half-filled shared buffer would corrupt other consumers.
"""

from __future__ import annotations

from typing import Any

from repro.dbms.columnar import ColumnarConfig
from repro.dbms.plan import LazyRowSet
from repro.dbms.plan_parallel import (
    ParallelConfig,
    parallelize_plan,
    plan_fingerprint,
    plan_read_set,
    result_cache,
    resolve_config,
    storage_epoch,
)
from repro.dbms.relation import table_epochs
from repro.display.displayable import Composite, DisplayableRelation, Group

__all__ = ["prepare_value", "force_lazy", "resolve_config", "ParallelConfig"]


def force_lazy(
    lazy: LazyRowSet,
    config: ParallelConfig | None,
    columnar: ColumnarConfig | None = None,
) -> LazyRowSet:
    """Materialize one lazy row set under a parallel/columnar config.

    Plan fingerprints are computed on the *pre-rewrite* plan and the
    rewrites are backend-transparent, so cache entries are shared between
    row, columnar, and parallel executions of the same logical plan.
    """
    if lazy.is_materialized:
        return lazy

    key = None
    pins: tuple = ()
    epoch = None
    if config is not None and config.cache and not lazy.has_started:
        fingerprint = plan_fingerprint(lazy.plan)
        if fingerprint is not None:
            key, pins = fingerprint
            cached = result_cache().lookup(key)
            if cached is not None:
                rows, _meta = cached
                lazy.adopt(rows)
                lazy.cache_status = "hit"
                return lazy
            lazy.cache_status = "miss"
            tables = plan_read_set(lazy.plan)
            epoch = (table_epochs(tables) if tables is not None
                     else storage_epoch())

    if not lazy.has_started:
        new_root = lazy.plan
        if config is not None and config.parallel:
            new_root, _log = parallelize_plan(new_root, config,
                                              columnar=columnar)
        if columnar is not None:
            from repro.dbms.plan_rewrite import columnarize_plan

            new_root, _log = columnarize_plan(new_root, columnar)
        if new_root is not lazy.plan:
            lazy.replace_plan(new_root)

    rows = lazy.force()
    if key is not None and epoch is not None:
        result_cache().store(key, rows, pins, epoch)
    return lazy


def prepare_value(
    value: Any,
    config: ParallelConfig | None,
    columnar: ColumnarConfig | None = None,
) -> Any:
    """Materialize lazy row sets inside a demanded value, backend-aware.

    Mirrors the engine's serial forcing walk over displayable containers.
    """
    if isinstance(value, LazyRowSet):
        force_lazy(value, config, columnar)
    elif isinstance(value, DisplayableRelation):
        prepare_value(value.rows, config, columnar)
    elif isinstance(value, Composite):
        for entry in value.entries:
            prepare_value(entry.relation, config, columnar)
    elif isinstance(value, Group):
        for __, member in value.members:
            prepare_value(member, config, columnar)
    return value
