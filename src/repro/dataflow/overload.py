"""Operator overloading over displayable types (Section 2).

"Given a group G input to Restrict, Tioga-2 asks the user for the composite
within the group, and the relation within that composite, to which the
Restrict applies.  After applying the Restrict to the selected relation,
Tioga-2 reassembles the composite and the group in the obvious way."

:func:`select_relation` and :func:`select_composite` implement the selection
and return a *rebuild* closure performing the reassembly.  Selection is by
name (``member`` within a group, ``component`` within a composite); when the
container has exactly one choice the selection may be omitted — otherwise a
:class:`GraphError` asks for it, which the UI surfaces as the point-and-click
prompt.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.display.displayable import Composite, DisplayableRelation, Group
from repro.errors import GraphError

__all__ = ["select_relation", "select_composite", "apply_to_relation"]

RelationRebuild = Callable[[DisplayableRelation], Any]
CompositeRebuild = Callable[[Composite], Any]


def _sole(names: list[str], what: str, owner: str) -> str:
    if len(names) == 1:
        return names[0]
    raise GraphError(
        f"{owner} has {len(names)} {what}s ({', '.join(names)}); "
        f"specify which {what} the operation applies to"
    )


def select_composite(
    value: Composite | Group | DisplayableRelation, member: str | None = None
) -> tuple[Composite, CompositeRebuild]:
    """Resolve a composite-level operation's target within ``value``.

    Returns the selected composite and a rebuild closure that reassembles a
    value of the original kind around a replacement composite.
    """
    if isinstance(value, DisplayableRelation):
        composite = Composite([value])
        return composite, lambda new: new
    if isinstance(value, Composite):
        return value, lambda new: new
    if isinstance(value, Group):
        name = member if member is not None else _sole(
            value.member_names(), "member", "group"
        )
        composite = value.member(name)
        return composite, lambda new: value.replace_member(name, new)
    raise GraphError(f"value of type {type(value).__name__} is not a displayable")


def select_relation(
    value: DisplayableRelation | Composite | Group,
    component: str | None = None,
    member: str | None = None,
) -> tuple[DisplayableRelation, RelationRebuild]:
    """Resolve an R-level operation's target within ``value``.

    Returns the selected relation and a rebuild closure producing a value of
    the original kind with the relation replaced.
    """
    if isinstance(value, DisplayableRelation):
        return value, lambda new: new
    composite, rebuild_container = select_composite(value, member)
    name = component if component is not None else _sole(
        composite.component_names(), "component", "composite"
    )
    relation = composite.entry_named(name).relation

    def rebuild(new: DisplayableRelation) -> Any:
        return rebuild_container(composite.replace_component(name, new))

    return relation, rebuild


def apply_to_relation(
    value: DisplayableRelation | Composite | Group,
    op: Callable[[DisplayableRelation], DisplayableRelation],
    component: str | None = None,
    member: str | None = None,
) -> Any:
    """Apply an R → R operation to ``value`` of any displayable kind.

    The workhorse behind overloadable boxes: select, apply, reassemble.
    A plain R input yields a plain R output (no spurious wrapping).
    """
    relation, rebuild = select_relation(value, component, member)
    return rebuild(op(relation))
