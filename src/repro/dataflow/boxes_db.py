"""Database-operation boxes (Figure 3) plus T and Switch.

====================  ===============  =====================================
Operation             Box type         Effect
====================  ===============  =====================================
Add Table             ∅ → R            the tuples of a named relation
Project               R → R'           keep named fields
Restrict              R → R            keep tuples satisfying a predicate
Sample                R → R            Bernoulli sample for interactivity
Join                  R × R' → R''     equi- or theta-join
T                     X → X × X        pass input unchanged to both outputs
Switch                R → R × R        route tuples by predicate (§1.1 (3))
====================  ===============  =====================================

All R-level boxes are *overloadable*: fed a composite or group, the optional
``component``/``member`` parameters select the relation the operation applies
to, and the container is reassembled around the result (Section 2).
"""

from __future__ import annotations

from typing import Any

from repro.dataflow.box import Box
from repro.dataflow.overload import apply_to_relation
from repro.dataflow.ports import Port, PortType
from repro.dbms import plan as P
from repro.dbms.expr import Unary
from repro.dbms.parser import parse_predicate
from repro.dbms.plan import LazyRowSet, source_plan
from repro.dbms.relation import RowSet
from repro.display.defaults import default_displayable
from repro.display.displayable import DisplayableRelation
from repro.errors import EvaluationError, GraphError

__all__ = [
    "AddTableBox",
    "ProjectBox",
    "RestrictBox",
    "SampleBox",
    "JoinBox",
    "TBox",
    "SwitchBox",
]


class AddTableBox(Box):
    """Source box producing a named table with the default display (§4.2).

    "For every relation known to the Tioga-2 system there is a box of the
    same name that takes no inputs and produces as output the tuples of the
    relation."  The cache signature includes the table's version stamp, so a
    Section-8 update refreshes every demanded visualization.
    """

    type_name = "AddTable"

    def __init__(self, table: str | None = None):
        super().__init__({"table": table})
        self.outputs = [Port("out", "R")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        del inputs
        table = context.database.table(self.require_param("table"))
        return {"out": default_displayable(table)}

    def signature(self, database) -> tuple:
        name = self.require_param("table")
        if not database.has_table(name):
            return ("missing",)
        return ("table", name, database.table(name).version)


def _lazy(node: P.PlanNode, label: str) -> LazyRowSet:
    """Wrap a plan fragment so downstream boxes extend it instead of
    materializing it; the engine forces only at demanded outputs."""
    return LazyRowSet(node, label=label)


def _filtered(
    relation: DisplayableRelation, predicate_source: str, negate: bool = False
) -> DisplayableRelation:
    """Restrict over stored *or computed* attributes.

    Plain stored-field predicates become a streaming Restrict plan node over
    the upstream fragment; predicates that mention computed attributes are
    evaluated over the extended row views.
    """
    predicate = parse_predicate(predicate_source, relation.extended_schema)
    if predicate.fields_used() <= set(relation.rows.schema.names):
        if negate:
            predicate = Unary("not", predicate)
        node = P.RestrictNode(
            source_plan(relation.rows, relation.name), predicate
        )
        return relation.with_rows(_lazy(node, relation.name))
    keep = (lambda value: not value) if negate else bool
    kept = [
        view.base for view in relation.views() if keep(predicate.evaluate(view))
    ]
    return relation.with_rows(RowSet(relation.rows.schema, kept))


class RestrictBox(Box):
    """Filter a relation to tuples satisfying a predicate (Fig 3)."""

    type_name = "Restrict"
    overloadable = True

    def __init__(
        self,
        predicate: str | None = None,
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__(
            {"predicate": predicate, "component": component, "member": member}
        )
        self.inputs = [Port("in", "R")]
        self.outputs = [Port("out", "R")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        predicate = self.require_param("predicate")
        return {
            "out": apply_to_relation(
                inputs["in"],
                lambda rel: _filtered(rel, predicate),
                self.param("component"),
                self.param("member"),
            )
        }


class ProjectBox(Box):
    """Standard database projection; "user is prompted for fields" (Fig 3).

    Computed attributes survive as long as their definitions only reference
    kept fields; a projection that breaks a location/display attribute is a
    type error, keeping the output validly displayable.
    """

    type_name = "Project"
    overloadable = True

    def __init__(
        self,
        fields: list[str] | None = None,
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__({"fields": fields, "component": component, "member": member})
        self.inputs = [Port("in", "R")]
        self.outputs = [Port("out", "R")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        fields = self.require_param("fields")

        def op(rel: DisplayableRelation) -> DisplayableRelation:
            node = P.ProjectNode(source_plan(rel.rows, rel.name), fields)
            return rel.with_rows(_lazy(node, rel.name))

        return {
            "out": apply_to_relation(
                inputs["in"], op, self.param("component"), self.param("member")
            )
        }


class SampleBox(Box):
    """Random Bernoulli sample (Fig 3): "useful for improving interactive
    response by reducing the size of data sets to be processed"."""

    type_name = "Sample"
    overloadable = True

    def __init__(
        self,
        probability: float | None = None,
        seed: int | None = None,
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__(
            {
                "probability": probability,
                "seed": seed,
                "component": component,
                "member": member,
            }
        )
        self.inputs = [Port("in", "R")]
        self.outputs = [Port("out", "R")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        probability = float(self.require_param("probability"))
        seed = self.param("seed")

        def op(rel: DisplayableRelation) -> DisplayableRelation:
            node = P.SampleNode(source_plan(rel.rows, rel.name), probability, seed)
            return rel.with_rows(_lazy(node, rel.name))

        return {
            "out": apply_to_relation(
                inputs["in"], op, self.param("component"), self.param("member")
            )
        }


class JoinBox(Box):
    """Join of two relations (Fig 3); the user supplies an equi-join key pair
    or a theta predicate over the concatenated schema.

    The joined relation starts from the default display and location (its
    schema is new), per the §5.2 guarantee that every box output is validly
    displayable.
    """

    type_name = "Join"

    def __init__(
        self,
        left_key: str | None = None,
        right_key: str | None = None,
        predicate: str | None = None,
        strategy: str = "hash",
    ):
        super().__init__(
            {
                "left_key": left_key,
                "right_key": right_key,
                "predicate": predicate,
                "strategy": strategy,
            }
        )
        self.inputs = [Port("left", "R"), Port("right", "R")]
        self.outputs = [Port("out", "R")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        left: DisplayableRelation = _as_relation(inputs["left"], "Join left input")
        right: DisplayableRelation = _as_relation(inputs["right"], "Join right input")
        left_plan = source_plan(left.rows, left.name)
        right_plan = source_plan(right.rows, right.name)
        predicate = self.param("predicate")
        if predicate is not None:
            node: P.PlanNode = P.ThetaJoinNode(left_plan, right_plan, predicate)
        else:
            left_key = self.require_param("left_key")
            right_key = self.require_param("right_key")
            strategy = self.param("strategy", "hash")
            if strategy == "hash":
                node = P.HashJoinNode(left_plan, right_plan, left_key, right_key)
            elif strategy == "nested_loop":
                node = P.NestedLoopJoinNode(
                    left_plan, right_plan, left_key, right_key
                )
            else:
                raise EvaluationError(f"unknown join strategy {strategy!r}")
        name = f"{left.name}_join_{right.name}"
        return {"out": DisplayableRelation(_lazy(node, name), name=name)}


def _as_relation(value: Any, what: str) -> DisplayableRelation:
    if not isinstance(value, DisplayableRelation):
        raise GraphError(
            f"{what} must be a relation (R); got {type(value).__name__}. "
            "Select the component first (operator overloading applies to "
            "single-input boxes)."
        )
    return value


class TBox(Box):
    """T (Fig 2): "simply passes its input unchanged to both outputs, and
    allows another box, for example a viewer, to be connected to the T"."""

    type_name = "T"

    def __init__(self, kind: str = "R"):
        super().__init__({"kind": kind})
        port_type = PortType.parse(kind)
        self.inputs = [Port("in", port_type)]
        self.outputs = [Port("out1", port_type), Port("out2", port_type)]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        return {"out1": inputs["in"], "out2": inputs["in"]}


class SwitchBox(Box):
    """Conditional routing — the paper's motivating multi-output example:

        "if condition then deliver data to box i else deliver data to box j"

    Tuples satisfying the predicate flow out of ``true``; the rest out of
    ``false``.  Boxes with multiple outputs "allow control flow to be
    introduced into a Tioga-2 program" (§1.2 principle 5).
    """

    type_name = "Switch"
    overloadable = True

    def __init__(
        self,
        predicate: str | None = None,
        component: str | None = None,
        member: str | None = None,
    ):
        super().__init__(
            {"predicate": predicate, "component": component, "member": member}
        )
        self.inputs = [Port("in", "R")]
        self.outputs = [Port("true", "R"), Port("false", "R")]

    def fire(self, inputs: dict[str, Any], context) -> dict[str, Any]:
        source = self.require_param("predicate")
        true_out = apply_to_relation(
            inputs["in"],
            lambda rel: _filtered(rel, source),
            self.param("component"),
            self.param("member"),
        )
        false_out = apply_to_relation(
            inputs["in"],
            lambda rel: _inverse_filtered(rel, source),
            self.param("component"),
            self.param("member"),
        )
        return {"true": true_out, "false": false_out}


def _inverse_filtered(
    relation: DisplayableRelation, predicate_source: str
) -> DisplayableRelation:
    return _filtered(relation, predicate_source, negate=True)
