"""Request log: per-request span trees, latency SLOs, slow-request capture.

The tracer answers "what spans ran"; this module answers "what *requests*
ran, how long did each take, and show me the slow one".  A
:class:`RequestLog` attaches to a :class:`~repro.obs.trace.Tracer` as a
sink, buckets completed spans by their ``trace_id``, and finalizes one
:class:`RequestRecord` per request when the request's **root** span (the
span with a trace id and no parent — ``server.dispatch`` on the server,
``request.<kind>`` in-process) completes.  Records live in a bounded ring,
so a long-lived server retains the recent-request table the ``/debug``
endpoints serve without growing.

Latency SLOs are per command kind (:data:`DEFAULT_SLO_MS`, overridable per
log).  A request that blows its threshold is marked ``slow`` and — when the
log has a ``capture_dir`` — auto-dumped to JSONL (schema
``repro.slowreq/1``): the request record, its full span tree, the
profiler's samples for the request's time window, and the flight-recorder
ring that led up to it.  That file is the "why was this request slow"
answer, the request-level sibling of the pixel-level *why* of PR 8.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict, deque
from pathlib import Path
from typing import Any, Callable

from repro.obs.trace import Span, TraceEvent, Tracer

__all__ = [
    "RequestLog",
    "RequestRecord",
    "DEFAULT_SLO_MS",
    "SLOWREQ_SCHEMA",
]

SLOWREQ_SCHEMA = "repro.slowreq/1"
"""Schema tag heading every slow-request capture file."""

#: Per-command-kind latency SLO thresholds (milliseconds).  Renders carry
#: the rasterizer and get the widest budget; provenance walks and EXPLAIN
#: are bounded analytical work; view-state demands should be instant.
DEFAULT_SLO_MS: dict[str, float] = {
    "open_program": 2_000.0,
    "add_viewer": 1_000.0,
    "render": 2_000.0,
    "why": 1_000.0,
    "pick": 500.0,
    "explain": 1_000.0,
    "stats": 1_000.0,
    "pan": 250.0,
    "pan_to": 250.0,
    "zoom": 250.0,
    "set_elevation": 250.0,
    "set_slider": 250.0,
}

#: Fallback for command kinds without an explicit threshold.
DEFAULT_SLO_FALLBACK_MS = 1_000.0


def _span_dict(span: Span) -> dict[str, Any]:
    attrs = {
        key: value if isinstance(value, (str, int, float, bool))
        or value is None else repr(value)
        for key, value in span.attrs.items()
    }
    return {
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "trace_id": span.trace_id,
        "thread": span.thread_id,
        "thread_name": span.thread_name,
        "start_ns": span.start_ns,
        "end_ns": span.end_ns,
        "duration_ms": round(span.duration_ms, 6),
        "attrs": attrs,
    }


class RequestRecord:
    """One finished request: identity, timing, status, and its span tree."""

    __slots__ = ("trace_id", "session", "command", "start_ns", "end_ns",
                 "duration_ms", "status", "slow", "threshold_ms", "spans",
                 "capture_path")

    def __init__(self, trace_id: str, session: str | None,
                 command: str | None, start_ns: int, end_ns: int,
                 status: str, slow: bool, threshold_ms: float,
                 spans: list[dict[str, Any]]):
        self.trace_id = trace_id
        self.session = session
        self.command = command
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.duration_ms = round((end_ns - start_ns) / 1e6, 6)
        self.status = status
        self.slow = slow
        self.threshold_ms = threshold_ms
        self.spans = spans
        self.capture_path: str | None = None

    def as_dict(self, with_spans: bool = False) -> dict[str, Any]:
        out: dict[str, Any] = {
            "trace_id": self.trace_id,
            "session": self.session,
            "command": self.command,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "slow": self.slow,
            "threshold_ms": self.threshold_ms,
            "spans": len(self.spans),
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
        }
        if self.capture_path is not None:
            out["capture"] = self.capture_path
        if with_spans:
            out["spans"] = self.spans
            out["span_count"] = len(self.spans)
        return out

    def __repr__(self) -> str:
        flag = " SLOW" if self.slow else ""
        return (f"RequestRecord({self.command!r}, {self.trace_id!r}, "
                f"{self.duration_ms:.3f}ms{flag})")


class RequestLog:
    """Tracer sink that turns trace-stamped spans into request records.

    Attach with :meth:`attach` (or pass the log to ``Tracer.add_sink``).
    Thread-safe: the server's pool workers complete spans concurrently.

    ``slo_ms`` overrides individual command thresholds on top of
    :data:`DEFAULT_SLO_MS`; ``default_slo_ms`` replaces the fallback.
    ``capture_dir`` enables slow-request JSONL dumps; ``profiler`` and
    ``flight`` contribute their windows to the dump.  ``on_slow`` is called
    with each slow :class:`RequestRecord` (the server counts a metric).
    """

    def __init__(self, capacity: int = 256,
                 slo_ms: dict[str, float] | None = None,
                 default_slo_ms: float = DEFAULT_SLO_FALLBACK_MS,
                 capture_dir: str | Path | None = None,
                 profiler: Any = None,
                 flight: Any = None,
                 on_slow: Callable[[RequestRecord], None] | None = None,
                 max_spans_per_request: int = 2_000):
        self.capacity = capacity
        self.slo_ms = dict(DEFAULT_SLO_MS)
        if slo_ms:
            self.slo_ms.update(slo_ms)
        self.default_slo_ms = default_slo_ms
        self.capture_dir = Path(capture_dir) if capture_dir else None
        self.profiler = profiler
        self.flight = flight
        self.on_slow = on_slow
        self.max_spans_per_request = max_spans_per_request
        self._lock = threading.Lock()
        self._open: OrderedDict[str, list[dict[str, Any]]] = OrderedDict()
        self._records: deque[RequestRecord] = deque(maxlen=capacity)
        self._by_trace: OrderedDict[str, RequestRecord] = OrderedDict()
        self._attached: list[Tracer] = []
        self.total_requests = 0
        self.slow_requests = 0
        self.captures: list[Path] = []

    # -- sink protocol -----------------------------------------------------

    def __call__(self, item: Span | TraceEvent) -> None:
        if not isinstance(item, Span) or item.trace_id is None:
            return
        finished: RequestRecord | None = None
        with self._lock:
            spans = self._open.get(item.trace_id)
            if spans is None:
                spans = self._open[item.trace_id] = []
                # Bound abandoned traces (a root that never completes —
                # crashed worker, cancelled task): evict the oldest once we
                # track twice the record capacity.
                while len(self._open) > 2 * self.capacity:
                    self._open.popitem(last=False)
            if len(spans) < self.max_spans_per_request:
                spans.append(_span_dict(item))
            if item.parent_id is None:
                # The request's root span: children completed first (the
                # with-block nests), so the tree is whole — finalize.
                finished = self._finalize(item, spans)
        if finished is not None:
            self._after_finalize(finished)

    def _finalize(self, root: Span,
                  spans: list[dict[str, Any]]) -> RequestRecord:
        self._open.pop(root.trace_id, None)
        command = root.attrs.get("command")
        if command is None and root.name.startswith("request."):
            command = root.name.split(".", 1)[1]
        session = root.attrs.get("session")
        status = "error" if any(
            span["attrs"].get("error") for span in spans) else "ok"
        threshold = self.slo_ms.get(str(command), self.default_slo_ms)
        duration_ms = (root.end_ns - root.start_ns) / 1e6
        record = RequestRecord(
            trace_id=root.trace_id,
            session=str(session) if session is not None else None,
            command=str(command) if command is not None else None,
            start_ns=root.start_ns,
            end_ns=root.end_ns or root.start_ns,
            status=status,
            slow=duration_ms > threshold,
            threshold_ms=threshold,
            spans=spans,
        )
        self._records.append(record)
        self._by_trace[record.trace_id] = record
        while len(self._by_trace) > self.capacity:
            self._by_trace.popitem(last=False)
        self.total_requests += 1
        if record.slow:
            self.slow_requests += 1
        return record

    def _after_finalize(self, record: RequestRecord) -> None:
        """Outside the lock: capture files and callbacks must not block
        other workers' span completions."""
        if not record.slow:
            return
        if self.capture_dir is not None:
            try:
                record.capture_path = str(self.capture(record))
            except OSError:  # pragma: no cover - unwritable capture dir
                record.capture_path = None
        if self.on_slow is not None:
            self.on_slow(record)

    # -- slow-request capture ----------------------------------------------

    def capture(self, record: RequestRecord) -> Path:
        """Dump one request's full context to JSONL; returns the path.

        Line 1 is a header (schema, identity, timing, threshold); then one
        line per span (``kind: span``), per profiler sample in the
        request's window (``kind: profile``), and per flight-recorder
        record (``kind: flight``).
        """
        assert self.capture_dir is not None
        self.capture_dir.mkdir(parents=True, exist_ok=True)
        path = self.capture_dir / f"slowreq_{record.trace_id}.jsonl"
        header = {
            "schema": SLOWREQ_SCHEMA,
            "trace_id": record.trace_id,
            "session": record.session,
            "command": record.command,
            "duration_ms": record.duration_ms,
            "threshold_ms": record.threshold_ms,
            "status": record.status,
            "spans": len(record.spans),
        }
        lines = [json.dumps(header, sort_keys=True)]
        for span in record.spans:
            lines.append(json.dumps({"kind": "span", **span},
                                    sort_keys=True))
        if self.profiler is not None:
            for sample in self.profiler.slice(
                    record.start_ns, record.end_ns,
                    trace_id=record.trace_id):
                lines.append(json.dumps({"kind": "profile", **sample},
                                        sort_keys=True))
        if self.flight is not None:
            for flight_record in self.flight.records():
                lines.append(json.dumps(
                    {"kind": "flight", "record": flight_record},
                    sort_keys=True, default=str))
        path.write_text("\n".join(lines) + "\n")
        self.captures.append(path)
        return path

    # -- tracer taps -------------------------------------------------------

    def attach(self, tracer: Tracer) -> "RequestLog":
        tracer.add_sink(self)
        self._attached.append(tracer)
        return self

    def detach(self, tracer: Tracer | None = None) -> None:
        targets = [tracer] if tracer is not None else list(self._attached)
        for target in targets:
            target.remove_sink(self)
            if target in self._attached:
                self._attached.remove(target)

    # -- inspection --------------------------------------------------------

    def requests(self, limit: int | None = None) -> list[RequestRecord]:
        """Finished requests, newest first."""
        with self._lock:
            records = list(self._records)
        records.reverse()
        return records[:limit] if limit is not None else records

    def record(self, trace_id: str) -> RequestRecord | None:
        with self._lock:
            return self._by_trace.get(trace_id)

    def trace(self, trace_id: str) -> dict[str, Any] | None:
        """The ``/debug/trace`` document: record summary + full span tree."""
        found = self.record(trace_id)
        if found is None:
            return None
        return {
            "trace_id": trace_id,
            "request": found.as_dict(),
            "spans": found.spans,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __bool__(self) -> bool:
        # Sized, but an empty log is still a log: never let ``if log:``
        # mean "has records".
        return True

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._by_trace.clear()
            self._open.clear()

    def __repr__(self) -> str:
        return (f"RequestLog({len(self)} records, "
                f"{self.slow_requests} slow)")
