"""Flight recorder: a JSONL ring of recent spans/events, dumped on errors.

A :class:`FlightRecorder` keeps the last ``capacity`` telemetry records —
completed spans, instant events, and error notes — in a bounded deque, the
way an aircraft flight recorder keeps the last minutes of instrument data.
It costs one deque append per record, so it can stay attached to a long
session without growing.

Attach it to a tracer (:meth:`FlightRecorder.attach`) to tap every
completed span, or install it process-wide with
:func:`install_flight_recorder` / ``REPRO_FLIGHT=1``.  When an installed
recorder is present, the engine's demand path notifies it of raised
:class:`~repro.errors.TiogaError`\\ s via :func:`note_engine_error`, which
**auto-dumps** the window to a JSONL file (``REPRO_FLIGHT_DUMP`` overrides
the ``flight_recorder.jsonl`` default) — so the telemetry that led up to a
failure survives the crash, ready for post-mortem ingestion (each line is
one JSON record; see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from pathlib import Path
from time import perf_counter_ns
from typing import Any

from repro.obs.trace import Span, TraceEvent, Tracer

__all__ = [
    "FlightRecorder",
    "install_flight_recorder",
    "current_flight_recorder",
    "note_engine_error",
    "FLIGHT_SCHEMA",
]

FLIGHT_SCHEMA = "repro.flight/1"
"""Schema tag stamped into the first line of every flight-recorder dump."""

_DEFAULT_DUMP = "flight_recorder.jsonl"


class FlightRecorder:
    """Bounded ring of recent telemetry records with JSONL export.

    Records are plain dicts with a ``kind`` of ``span``, ``event``, or
    ``error``; :meth:`dump_jsonl` writes one JSON object per line, headed by
    a schema line, so the dump can be re-ingested by the dashboard layer (or
    any line-oriented tool) without a parser.
    """

    def __init__(self, capacity: int = 1024):
        self.capacity = capacity
        self._records: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._attached: list[Tracer] = []
        self.total_records = 0
        self.dumps = 0

    # -- recording --------------------------------------------------------

    def record(self, record: dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)
            self.total_records += 1

    def __call__(self, item: Span | TraceEvent) -> None:
        """Tracer-sink protocol: fold a completed span or event in."""
        if isinstance(item, Span):
            self.record({
                "kind": "span",
                "name": item.name,
                "start_ns": item.start_ns,
                "duration_ms": round(item.duration_ms, 6),
                "thread": item.thread_id,
                "attrs": _safe_attrs(item.attrs),
            })
        else:
            self.record({
                "kind": "event",
                "name": item.name,
                "ts_ns": item.ts_ns,
                "thread": item.thread_id,
                "attrs": _safe_attrs(item.attrs),
            })

    def note_error(self, exc: BaseException, **context: Any) -> None:
        """Record a raised exception (type, message, caller context)."""
        self.record({
            "kind": "error",
            "ts_ns": perf_counter_ns(),
            "error": type(exc).__name__,
            "message": str(exc),
            "context": _safe_attrs(context),
        })

    # -- tracer taps ------------------------------------------------------

    def attach(self, tracer: Tracer) -> "FlightRecorder":
        """Subscribe to a tracer's completed spans and events."""
        tracer.add_sink(self)
        self._attached.append(tracer)
        return self

    def detach(self, tracer: Tracer | None = None) -> None:
        """Unsubscribe from one tracer, or from all attached tracers."""
        targets = [tracer] if tracer is not None else list(self._attached)
        for target in targets:
            target.remove_sink(self)
            if target in self._attached:
                self._attached.remove(target)

    # -- inspection & export ----------------------------------------------

    def records(self, kind: str | None = None) -> list[dict[str, Any]]:
        """Retained records oldest-first, optionally filtered by kind."""
        with self._lock:
            records = list(self._records)
        if kind is None:
            return records
        return [record for record in records if record["kind"] == kind]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def dropped(self) -> int:
        """Records lost to the ring's wraparound."""
        with self._lock:
            return self.total_records - len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def dump_jsonl(self, path: str | Path | None = None) -> Path:
        """Write the retained window as JSON Lines; returns the path.

        The first line is a header object carrying the schema tag and the
        window accounting, then one line per record, oldest first.
        """
        if path is None:
            path = os.environ.get("REPRO_FLIGHT_DUMP", _DEFAULT_DUMP)
        path = Path(path)
        with self._lock:
            records = list(self._records)
            header = {
                "schema": FLIGHT_SCHEMA,
                "records": len(records),
                "dropped": self.total_records - len(records),
            }
        lines = [json.dumps(header)]
        lines.extend(json.dumps(record, sort_keys=True) for record in records)
        path.write_text("\n".join(lines) + "\n")
        self.dumps += 1
        return path

    def __repr__(self) -> str:
        return f"FlightRecorder({len(self)}/{self.capacity} records)"


def _safe_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    return {
        key: value if isinstance(value, (str, int, float, bool)) or
        value is None else repr(value)
        for key, value in attrs.items()
    }


# ---------------------------------------------------------------------------
# Process-wide installation & the engine error hook
# ---------------------------------------------------------------------------

_INSTALLED: FlightRecorder | None = None
_INSTALL_LOCK = threading.Lock()


def install_flight_recorder(
    recorder: FlightRecorder | None = None,
) -> FlightRecorder | None:
    """Install ``recorder`` process-wide (None uninstalls); returns the old.

    While installed, :func:`note_engine_error` — called by the engine's
    demand path on any raised :class:`~repro.errors.TiogaError` — records
    the failure and auto-dumps the window to JSONL.
    """
    global _INSTALLED
    with _INSTALL_LOCK:
        previous = _INSTALLED
        _INSTALLED = recorder
    return previous


def current_flight_recorder() -> FlightRecorder | None:
    return _INSTALLED


def note_engine_error(exc: BaseException, **context: Any) -> None:
    """Engine hook: record and auto-dump when a recorder is installed.

    Deliberately swallow-proof: telemetry must never mask the original
    engine error, so dump failures are ignored.
    """
    recorder = _INSTALLED
    if recorder is None:
        return
    recorder.note_error(exc, **context)
    try:
        recorder.dump_jsonl()
    except OSError:  # pragma: no cover - unwritable dump path
        pass


def install_from_env(environ=None) -> bool:
    """Install a fresh recorder when ``REPRO_FLIGHT=1`` (package init hook)."""
    if environ is None:
        environ = os.environ
    if environ.get("REPRO_FLIGHT") == "1":
        install_flight_recorder(FlightRecorder())
        return True
    return False
