"""Self-hosted telemetry dashboard: Tioga-2 visualizing its own engine.

The paper's compositional claim is that boxes-and-arrows programs can
visualize *any* relational data.  This module dogfoods that claim on the
system's own telemetry: it records a real workload (a figure render) with a
:class:`~repro.obs.timeseries.MetricsRecorder` and an enabled tracer, loads
the recordings into ordinary ``repro.dbms`` tables, and programmatically
constructs a Tioga-2 program whose canvases are the charts —

* ``spans``  — a scatter of span durations over time (one circle per
  completed span, x = start time, y = duration),
* ``cache``  — a bar chart of the PR-4 result-cache counters
  (``cache.hit`` / ``cache.miss`` / ``cache.evict``),
* ``rates``  — a line chart of per-operator throughput (rows/sec derived
  by the recorder's rate series), one polyline per labeled series.

Everything renders headless through the ordinary
:class:`~repro.ui.session.Session` / viewer / canvas stack, so the
dashboard exercises Restrict, SetAttribute, Overlay, and viewers on a
workload the reproduction itself produced.  ``repro dashboard`` is the CLI
front-end and the CI smoke job; ``docs/DASHBOARD.md`` is the walkthrough.
"""

from __future__ import annotations

from typing import Any

from repro.dbms.catalog import Database
from repro.dbms.relation import Table
from repro.dbms.tuples import Schema
from repro.errors import ObservabilityError
from repro.obs.metrics import global_registry
from repro.obs.timeseries import MetricsRecorder
from repro.obs.trace import Tracer, push_tracer

__all__ = [
    "record_figure_telemetry",
    "telemetry_database",
    "build_dashboard_program",
    "build_telemetry_dashboard",
    "render_dashboard",
    "RATE_SERIES_METRICS",
]

#: Counters whose derived per-second rate series become the ``rates`` lines.
RATE_SERIES_METRICS = (
    "render.tuples_rendered",
    "engine.box.fires",
    "parallel.morsels",
)

#: World-coordinate chart box every table is normalized into.
_CHART_W = 360.0
_CHART_H = 220.0

_LINE_COLORS = ("blue", "red", "green", "purple", "orange", "cyan")

SPAN_SCHEMA = Schema([
    ("seq", "int"),
    ("span", "text"),
    ("t_ms", "float"),
    ("duration_ms", "float"),
    ("x_pos", "float"),
    ("y_pos", "float"),
])

CACHE_SCHEMA = Schema([
    ("op", "text"),
    ("slot", "int"),
    ("count", "float"),
    ("x_pos", "float"),
    ("bar_px", "float"),
])

RATE_SCHEMA = Schema([
    ("series", "text"),
    ("seq", "int"),
    ("t_s", "float"),
    ("rate", "float"),
    ("x_pos", "float"),
    ("y_pos", "float"),
    ("dx", "float"),
    ("dy", "float"),
    ("color", "text"),
])

AXES_SCHEMA = Schema([
    ("chart", "text"),
    ("x_pos", "float"),
    ("y_pos", "float"),
    ("dx", "float"),
    ("dy", "float"),
])


# ---------------------------------------------------------------------------
# Recording: run a real workload under recorder + tracer
# ---------------------------------------------------------------------------


def record_figure_telemetry(
    figure: str = "fig4",
    renders: int = 3,
    workers: int = 2,
    recorder: MetricsRecorder | None = None,
) -> tuple[MetricsRecorder, Tracer]:
    """Render a figure scenario ``renders`` times under full telemetry.

    Renders run with the PR-4 parallel config installed (``workers`` > 1)
    and a cold engine on the first pass, so engine fires, morsel counters,
    *and* result-cache hits/misses all move; the recorder samples between
    renders, which is what gives the delta/rate series their time axis.
    Returns the recorder and the tracer holding the spans.
    """
    from repro.core import scenarios as _scenarios
    from repro.data.weather import build_weather_database
    from repro.dbms.plan_parallel import (
        resolve_config,
        result_cache,
        set_default_config,
    )

    builders = {
        "fig1": _scenarios.build_fig1_table_view,
        "fig4": _scenarios.build_fig4_station_map,
        "fig7": _scenarios.build_fig7_overlay,
        "fig8": _scenarios.build_fig8_wormholes,
        "fig9": _scenarios.build_fig9_magnifier,
        "fig10": _scenarios.build_fig10_stitch,
        "fig11": _scenarios.build_fig11_replicate,
    }
    if figure not in builders:
        raise ObservabilityError(
            f"unknown figure {figure!r}; choose from "
            f"{', '.join(sorted(builders))}"
        )
    if renders < 1:
        raise ObservabilityError("need at least one render to record")

    result_cache()  # ensure cache.* counters exist even before first lookup
    tracer = Tracer(enabled=True)
    if recorder is None:
        recorder = MetricsRecorder(global_registry(), tracer=tracer)
    elif recorder.tracer is None:
        recorder.tracer = tracer

    db = build_weather_database(extra_stations=40, every_days=30)
    scenario = builders[figure](db)
    session = scenario.session
    # Engines default to a private stats registry; re-point this one at the
    # process registry so engine.box.fires feeds the recorder's rate series.
    from repro.dataflow.engine import EngineStats

    session.engine.stats = EngineStats(global_registry())
    previous = set_default_config(resolve_config(workers=workers))
    try:
        with push_tracer(tracer):
            recorder.sample()
            session.engine.invalidate()  # cold first pass: real fires
            for _ in range(renders):
                for name in sorted(session.windows):
                    session.window(name).render()
                recorder.sample()
    finally:
        set_default_config(previous)
    return recorder, tracer


# ---------------------------------------------------------------------------
# Ingestion: recordings -> ordinary DBMS tables
# ---------------------------------------------------------------------------


def _normalized(values: list[float], extent: float) -> list[float]:
    """Scale values into ``0..extent`` (constant series map to extent/2)."""
    if not values:
        return []
    lo, hi = min(values), max(values)
    if hi <= lo:
        return [extent / 2.0] * len(values)
    scale = extent / (hi - lo)
    # Clamp: (hi - lo) * scale can land an ulp past extent.
    return [min(extent, max(0.0, (value - lo) * scale)) for value in values]


def _axes_rows(chart: str) -> list[dict[str, Any]]:
    """X/Y axis segments framing one chart's world box."""
    return [
        {"chart": chart, "x_pos": 0.0, "y_pos": 0.0,
         "dx": _CHART_W, "dy": 0.0},
        {"chart": chart, "x_pos": 0.0, "y_pos": 0.0,
         "dx": 0.0, "dy": _CHART_H},
    ]


def telemetry_database(
    recorder: MetricsRecorder,
    tracer: Tracer | None = None,
    max_spans: int = 4000,
) -> Database:
    """Load recorded telemetry into a fresh :class:`Database`.

    Tables: ``SpanSamples`` (one row per completed span), ``CacheOps``
    (latest cache.hit/miss/evict totals), ``OpRates`` (the recorder's
    per-second rate series for :data:`RATE_SERIES_METRICS`, with precomputed
    segment deltas for the line display), and ``DashboardAxes`` (axis
    segments, restricted per chart by the program).  Chart-space ``x_pos``/
    ``y_pos`` columns are normalized at ingestion so the programs stay pure
    attribute mappings.
    """
    db = Database("telemetry")

    # -- SpanSamples ------------------------------------------------------
    spans_table = db.add_table(Table("SpanSamples", SPAN_SCHEMA))
    if tracer is None:
        tracer = recorder.tracer
    if tracer is not None:
        finished = tracer.finished()[:max_spans]
        origin = tracer.origin_ns or 0
        starts = [(span.start_ns - origin) / 1e6 for span in finished]
        durations = [span.duration_ms for span in finished]
        xs = _normalized(starts, _CHART_W)
        ys = _normalized(durations, _CHART_H)
        spans_table.insert_many(
            {
                "seq": index,
                "span": span.name,
                "t_ms": round(starts[index], 3),
                "duration_ms": round(durations[index], 6),
                "x_pos": xs[index],
                "y_pos": ys[index],
            }
            for index, span in enumerate(finished)
        )

    # -- CacheOps ---------------------------------------------------------
    cache_table = db.add_table(Table("CacheOps", CACHE_SCHEMA))
    ops = ("cache.hit", "cache.miss", "cache.evict")
    counts = [recorder.latest(f"{op}|_total") or 0.0 for op in ops]
    peak = max(counts) or 1.0
    cache_table.insert_many(
        {
            "op": op,
            "slot": slot,
            "count": counts[slot],
            "x_pos": 60.0 + slot * 120.0,
            "bar_px": (counts[slot] / peak) * 160.0,
        }
        for slot, op in enumerate(ops)
    )

    # -- OpRates ----------------------------------------------------------
    rates_table = db.add_table(Table("OpRates", RATE_SCHEMA))
    rate_rows: list[dict[str, Any]] = []
    all_times: list[float] = []
    all_rates: list[float] = []
    picked: list[tuple[str, list[tuple[float, float]]]] = []
    for metric in RATE_SERIES_METRICS:
        # One line per metric: the _total aggregate, not per-label series
        # (labeled counters like engine.box.fires would draw one polyline
        # per box id and drown the chart).
        series = recorder.series(f"{metric}|_total|rate")
        points = series.points() if series is not None else []
        if points:
            picked.append((metric, points))
            all_times.extend(t for t, _ in points)
            all_rates.extend(v for _, v in points)
    time_norm = dict(zip(all_times, _normalized(all_times, _CHART_W)))
    rate_norm = dict(zip(all_rates, _normalized(all_rates, _CHART_H)))
    for series_index, (series_name, points) in enumerate(picked):
        color = _LINE_COLORS[series_index % len(_LINE_COLORS)]
        coords = [(time_norm[t], rate_norm[v]) for t, v in points]
        for index, (t, rate) in enumerate(points):
            x, y = coords[index]
            nx, ny = coords[index + 1] if index + 1 < len(coords) else (x, y)
            rate_rows.append({
                "series": series_name,
                "seq": index,
                "t_s": round(t, 6),
                "rate": round(rate, 6),
                "x_pos": x,
                "y_pos": y,
                "dx": nx - x,
                "dy": ny - y,
                "color": color,
            })
    rates_table.insert_many(rate_rows)

    # -- DashboardAxes ----------------------------------------------------
    axes_table = db.add_table(Table("DashboardAxes", AXES_SCHEMA))
    axes_table.insert_many(
        row for chart in ("spans", "cache", "rates")
        for row in _axes_rows(chart)
    )
    return db


# ---------------------------------------------------------------------------
# The dashboard program: boxes and arrows over the telemetry tables
# ---------------------------------------------------------------------------


def _axes_pipeline(session, chart: str) -> int:
    axes = session.add_table("DashboardAxes", label=f"axes-{chart}")
    only = session.add_box("Restrict", {"predicate": f"chart = '{chart}'"})
    session.connect(axes, "out", only, "in")
    set_x = session.add_box("SetAttribute",
                            {"name": "x", "definition": "x_pos"})
    session.connect(only, "out", set_x, "in")
    set_y = session.add_box("SetAttribute",
                            {"name": "y", "definition": "y_pos"})
    session.connect(set_x, "out", set_y, "in")
    display = session.add_box(
        "SetAttribute",
        {"name": "display", "definition": "line_to(dx, dy, 'darkgray')"},
    )
    session.connect(set_y, "out", display, "in")
    return display


def _chart_window(session, tail: int, chart: str, axes_tail: int):
    overlay = session.add_box("Overlay")
    session.connect(axes_tail, "out", overlay, "base")
    session.connect(tail, "out", overlay, "top")
    window = session.add_viewer(overlay, name=chart, width=480, height=320)
    window.viewer._pan_to(_CHART_W / 2.0, _CHART_H / 2.0)
    window.viewer._set_elevation(_CHART_W + 60.0)
    return window


def build_dashboard_program(db: Database):
    """Construct the three-chart dashboard program over a telemetry DB.

    Returns a :class:`~repro.core.scenarios.Scenario` with windows
    ``spans`` (scatter), ``cache`` (bars), and ``rates`` (lines) — each an
    ordinary pipeline of AddTable → Restrict/SetAttribute boxes → Overlay
    with its axes → viewer, exactly the shape of the paper's figures.
    """
    from repro.core.scenarios import Scenario
    from repro.ui.session import Session

    session = Session(db, "telemetry-dashboard")

    # Scatter: one circle per span, labeled charts come from the tables.
    spans = session.add_table("SpanSamples")
    sp_x = session.add_box("SetAttribute",
                           {"name": "x", "definition": "x_pos"})
    session.connect(spans, "out", sp_x, "in")
    sp_y = session.add_box("SetAttribute",
                           {"name": "y", "definition": "y_pos"})
    session.connect(sp_x, "out", sp_y, "in")
    sp_display = session.add_box(
        "SetAttribute",
        {"name": "display", "definition": "filled_circle(2, 'blue')"},
    )
    session.connect(sp_y, "out", sp_display, "in")
    spans_window = _chart_window(
        session, sp_display, "spans", _axes_pipeline(session, "spans")
    )

    # Bars: a filled rect per cache counter, sized at ingestion, labeled.
    cache = session.add_table("CacheOps")
    ca_x = session.add_box("SetAttribute",
                           {"name": "x", "definition": "x_pos"})
    session.connect(cache, "out", ca_x, "in")
    ca_y = session.add_box("SetAttribute",
                           {"name": "y", "definition": "bar_px / 2"})
    session.connect(ca_x, "out", ca_y, "in")
    ca_display = session.add_box(
        "SetAttribute",
        {
            "name": "display",
            "definition": (
                "combine(filled_rect(48, bar_px + 1, 'blue'), "
                "offset(text_of(op), 0, bar_px / 2 + 14), "
                "offset(text_of(count), 0, 0 - (bar_px / 2 + 12)))"
            ),
        },
    )
    session.connect(ca_y, "out", ca_display, "in")
    cache_window = _chart_window(
        session, ca_display, "cache", _axes_pipeline(session, "cache")
    )

    # Lines: per-series polylines via precomputed segment deltas.
    rates = session.add_table("OpRates")
    ra_x = session.add_box("SetAttribute",
                           {"name": "x", "definition": "x_pos"})
    session.connect(rates, "out", ra_x, "in")
    ra_y = session.add_box("SetAttribute",
                           {"name": "y", "definition": "y_pos"})
    session.connect(ra_x, "out", ra_y, "in")
    ra_display = session.add_box(
        "SetAttribute",
        {
            "name": "display",
            "definition": (
                "combine(line_to(dx, dy, color), filled_circle(1, color))"
            ),
        },
    )
    session.connect(ra_y, "out", ra_display, "in")
    rates_window = _chart_window(
        session, ra_display, "rates", _axes_pipeline(session, "rates")
    )

    return Scenario(
        session,
        window=spans_window,
        spans_window=spans_window,
        cache_window=cache_window,
        rates_window=rates_window,
    )


# ---------------------------------------------------------------------------
# One-call convenience + headless rendering
# ---------------------------------------------------------------------------


def build_telemetry_dashboard(
    figure: str = "fig4",
    renders: int = 3,
    workers: int = 2,
    recorder: MetricsRecorder | None = None,
    tracer: Tracer | None = None,
):
    """Record (unless given), ingest, and build: returns ``(db, scenario)``.

    Pass an existing ``recorder``/``tracer`` pair to visualize telemetry
    you already captured; otherwise a fresh fig-render workload is recorded
    via :func:`record_figure_telemetry`.
    """
    if recorder is None or (tracer is None and recorder.tracer is None):
        recorder, tracer = record_figure_telemetry(
            figure=figure, renders=renders, workers=workers,
            recorder=recorder,
        )
    db = telemetry_database(recorder, tracer)
    return db, build_dashboard_program(db)


def render_dashboard(scenario) -> dict[str, Any]:
    """Render every dashboard canvas headless; returns per-chart stats.

    The result maps each chart name to ``{"canvas": Canvas, "draw_ops": n,
    "pixels": n}`` plus a ``"total_draw_ops"`` entry — the smoke-test
    signal that recorded telemetry actually painted something.
    """
    session = scenario.session
    out: dict[str, Any] = {}
    total = 0
    for name in sorted(session.windows):
        canvas = session.window(name).render()
        out[name] = {
            "canvas": canvas,
            "draw_ops": canvas.draw_ops,
            "pixels": canvas.count_nonbackground(),
        }
        total += canvas.draw_ops
    out["total_draw_ops"] = total
    return out
