"""Exporters: Chrome trace JSON, a human-readable span tree, run summaries.

Three consumers, three formats:

* :func:`chrome_trace` — the Chrome ``trace_event`` JSON object format
  (``{"traceEvents": [...]}``) with complete (``ph: "X"``) events for spans
  and instant (``ph: "i"``) events for markers; loads in ``chrome://tracing``
  and Perfetto.  Span attributes ride in ``args``.
* :func:`render_tree` — an indented wall-clock tree for terminals, the
  ``--timing`` output.
* :func:`run_summary` — a stable, JSON-ready dict combining span rollups and
  a metrics snapshot; the benchmark telemetry pipeline aggregates these into
  ``BENCH_obs.json``.

:func:`validate_chrome_trace` and :func:`validate_bench_summary` are the
schema guards used by the tests and the CI telemetry job.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "render_tree",
    "run_summary",
    "empty_run_summary",
    "validate_chrome_trace",
    "validate_bench_summary",
    "validate_parallel_bench",
    "validate_columnar_bench",
    "validate_server_bench",
    "validate_any_bench",
    "BENCH_SCHEMA",
    "PARALLEL_BENCH_SCHEMA",
    "COLUMNAR_BENCH_SCHEMA",
    "SERVER_BENCH_SCHEMA",
]

BENCH_SCHEMA = "repro.bench/1"
"""Schema tag stamped into ``BENCH_obs.json``."""

PARALLEL_BENCH_SCHEMA = "repro.bench.parallel/1"
"""Schema tag stamped into ``BENCH_parallel.json``."""

COLUMNAR_BENCH_SCHEMA = "repro.bench.columnar/1"
"""Schema tag stamped into ``BENCH_columnar.json``."""

SERVER_BENCH_SCHEMA = "repro.bench.server/1"
"""Schema tag stamped into ``BENCH_server.json``."""

_PID = 1  # single-process traces; Chrome requires *a* pid


def _ts_us(tracer: Tracer, ns: int) -> float:
    origin = tracer.origin_ns or 0
    return (ns - origin) / 1000.0


def chrome_trace(tracer: Tracer | None,
                 process_name: str = "repro") -> dict[str, Any]:
    """The Chrome ``trace_event`` JSON object for a tracer's recordings.

    ``tracer=None`` degrades to a valid empty trace (metadata event only) —
    exporters never require the caller to have traced anything.
    """
    if tracer is None:
        return {
            "traceEvents": [
                {"name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
                 "args": {"name": process_name}},
            ],
            "displayTimeUnit": "ms",
            "otherData": {"dropped": 0},
        }
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    # Real thread names on the metadata events: pool workers show up as
    # "tioga-exec_0", not an opaque id, so a request's hop from the asyncio
    # thread to its worker reads directly off the track labels.  Spans from
    # before the thread_name slot existed fall back to the id form.
    finished = tracer.finished()
    names: dict[int, str] = {}
    for span in finished:
        name = getattr(span, "thread_name", None)
        if span.thread_id not in names or name:
            names[span.thread_id] = name or f"thread-{span.thread_id}"
    threads = sorted(
        {span.thread_id for span in finished}
        | {event.thread_id for event in tracer.events}
    )
    tids = {thread_id: index for index, thread_id in enumerate(threads)}
    for thread_id, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": names.get(
                    thread_id, f"thread-{thread_id}")},
            }
        )
    for span in finished:
        args = _json_safe(span.attrs)
        if span.trace_id is not None:
            # Request correlation: Perfetto queries group a request's spans
            # across threads by this arg.
            args.setdefault("trace_id", span.trace_id)
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": _ts_us(tracer, span.start_ns),
                "dur": max(0.0, span.duration_ns / 1000.0),
                "pid": _PID,
                "tid": tids.get(span.thread_id, 0),
                "args": args,
            }
        )
    for event in tracer.events:
        events.append(
            {
                "name": event.name,
                "cat": event.name.split(".", 1)[0],
                "ph": "i",
                "ts": _ts_us(tracer, event.ts_ns),
                "pid": _PID,
                "tid": tids.get(event.thread_id, 0),
                "s": "t",
                "args": _json_safe(event.attrs),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"dropped": tracer.dropped},
    }


def write_chrome_trace(tracer: Tracer, path: str | Path,
                       process_name: str = "repro") -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer, process_name), indent=1))
    return path


def _json_safe(attrs: dict[str, Any]) -> dict[str, Any]:
    safe: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[key] = value
        else:
            safe[key] = repr(value)
    return safe


# ---------------------------------------------------------------------------
# Human-readable tree
# ---------------------------------------------------------------------------


def render_tree(tracer: Tracer | None, min_ms: float = 0.0) -> str:
    """Indented wall-clock tree of the tracer's completed spans.

    Spans cheaper than ``min_ms`` are elided (their time still shows in the
    parent).  Children print in start order.  ``tracer=None`` degrades to
    the empty string.
    """
    if tracer is None:
        return ""
    spans = sorted(tracer.finished(), key=lambda s: (s.start_ns, s.span_id))
    by_parent: dict[int | None, list[Span]] = {}
    known = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in known else None
        by_parent.setdefault(parent, []).append(span)

    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        if span.duration_ms < min_ms:
            return
        attrs = ""
        if span.attrs:
            inner = ", ".join(
                f"{key}={value}" for key, value in sorted(span.attrs.items())
            )
            attrs = f"  ({inner})"
        lines.append(
            f"{'  ' * depth}{span.name}  {span.duration_ms:.3f}ms{attrs}"
        )
        for child in by_parent.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in by_parent.get(None, ()):
        walk(root, 0)
    if tracer.dropped:
        lines.append(f"({tracer.dropped} spans/events dropped at cap)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Run summary
# ---------------------------------------------------------------------------


def empty_run_summary() -> dict[str, Any]:
    """The documented degenerate run summary: no spans, events, or metrics.

    This is exactly what :func:`run_summary` returns when called with no
    tracer and no registry — the shape is pinned so callers (CI scripts,
    the bench pipeline) can rely on every key existing even when telemetry
    was never enabled::

        {"schema": "repro.bench/1", "spans": {}, "events": {},
         "metrics": {}, "dropped": 0}
    """
    return {
        "schema": BENCH_SCHEMA,
        "spans": {},
        "events": {},
        "metrics": {},
        "dropped": 0,
    }


def run_summary(tracer: Tracer | None = None,
                registry: MetricsRegistry | None = None) -> dict[str, Any]:
    """Stable machine-readable summary of one run.

    Span rollups are grouped by span name — count, total/mean wall — so the
    summary's size is bounded by the taxonomy, not the workload.

    Degrades gracefully rather than reaching for implicit globals: with
    ``tracer=None`` the span/event sections are empty, with
    ``registry=None`` the metrics section is empty, and with neither the
    result is exactly :func:`empty_run_summary` — callers that want the
    ambient tracer must pass ``current_tracer()`` explicitly.
    """
    spans_by_name: dict[str, dict[str, Any]] = {}
    events_by_name: dict[str, int] = {}
    dropped = 0
    if tracer is not None:
        for span in tracer.finished():
            entry = spans_by_name.setdefault(
                span.name, {"count": 0, "total_ms": 0.0}
            )
            entry["count"] += 1
            entry["total_ms"] += span.duration_ms
        for entry in spans_by_name.values():
            entry["total_ms"] = round(entry["total_ms"], 3)
            entry["mean_ms"] = round(entry["total_ms"] / entry["count"], 3)
        for event in tracer.events:
            events_by_name[event.name] = events_by_name.get(event.name, 0) + 1
        dropped = tracer.dropped
    return {
        "schema": BENCH_SCHEMA,
        "spans": {name: spans_by_name[name] for name in sorted(spans_by_name)},
        "events": {name: events_by_name[name]
                   for name in sorted(events_by_name)},
        "metrics": registry.snapshot() if registry is not None else {},
        "dropped": dropped,
    }


# ---------------------------------------------------------------------------
# Schema validation (tests + CI)
# ---------------------------------------------------------------------------


def validate_chrome_trace(obj: Any) -> list[dict[str, Any]]:
    """Check an object against the Chrome trace_event object format.

    Returns the event list on success; raises :class:`ObservabilityError`
    naming the first offending event otherwise.
    """
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ObservabilityError(
            "chrome trace must be an object with a 'traceEvents' list"
        )
    events = obj["traceEvents"]
    if not isinstance(events, list):
        raise ObservabilityError("'traceEvents' must be a list")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ObservabilityError(f"traceEvents[{index}] is not an object")
        for key in ("name", "ph", "pid"):
            if key not in event:
                raise ObservabilityError(
                    f"traceEvents[{index}] missing required key {key!r}"
                )
        phase = event["ph"]
        if phase not in ("X", "i", "M", "B", "E", "C"):
            raise ObservabilityError(
                f"traceEvents[{index}] has unsupported phase {phase!r}"
            )
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ObservabilityError(
                        f"traceEvents[{index}] ({event['name']!r}) needs "
                        f"non-negative numeric {key!r}"
                    )
        if "args" in event and not isinstance(event["args"], dict):
            raise ObservabilityError(
                f"traceEvents[{index}] 'args' must be an object"
            )
    return events


def validate_bench_summary(obj: Any) -> dict[str, Any]:
    """Check a ``BENCH_obs.json`` payload; returns it on success."""
    if not isinstance(obj, dict):
        raise ObservabilityError("bench summary must be an object")
    if obj.get("schema") != BENCH_SCHEMA:
        raise ObservabilityError(
            f"bench summary schema must be {BENCH_SCHEMA!r}, "
            f"got {obj.get('schema')!r}"
        )
    benchmarks = obj.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ObservabilityError("bench summary needs a 'benchmarks' list")
    for index, entry in enumerate(benchmarks):
        if not isinstance(entry, dict) or "name" not in entry:
            raise ObservabilityError(
                f"benchmarks[{index}] must be an object with a 'name'"
            )
        timing = entry.get("timing")
        if timing is not None:
            if not isinstance(timing, dict):
                raise ObservabilityError(
                    f"benchmarks[{index}] 'timing' must be an object"
                )
            for key in ("mean_s", "rounds"):
                if key not in timing:
                    raise ObservabilityError(
                        f"benchmarks[{index}] timing missing {key!r}"
                    )
        telemetry = entry.get("telemetry")
        if telemetry is not None and not isinstance(telemetry, dict):
            raise ObservabilityError(
                f"benchmarks[{index}] 'telemetry' must be an object"
            )
    metrics = obj.get("metric_declarations")
    if metrics is not None and not isinstance(metrics, dict):
        raise ObservabilityError("'metric_declarations' must be an object")
    return obj


def validate_parallel_bench(obj: Any) -> dict[str, Any]:
    """Check a ``BENCH_parallel.json`` payload; returns it on success.

    Each benchmark compares timing arms (worker counts) on one workload::

        {"schema": "repro.bench.parallel/1",
         "benchmarks": [
             {"name": "join_slaved_viewers",
              "arms": {"serial": {"workers": 0, "seconds": 0.41},
                       "workers_4": {"workers": 4, "seconds": 0.11}},
              "speedup": 3.7,
              "cache": {"hits": 7, "misses": 1}}]}
    """
    if not isinstance(obj, dict):
        raise ObservabilityError("parallel bench summary must be an object")
    if obj.get("schema") != PARALLEL_BENCH_SCHEMA:
        raise ObservabilityError(
            f"parallel bench schema must be {PARALLEL_BENCH_SCHEMA!r}, "
            f"got {obj.get('schema')!r}"
        )
    benchmarks = obj.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ObservabilityError(
            "parallel bench summary needs a 'benchmarks' list"
        )
    for index, entry in enumerate(benchmarks):
        if not isinstance(entry, dict) or "name" not in entry:
            raise ObservabilityError(
                f"benchmarks[{index}] must be an object with a 'name'"
            )
        arms = entry.get("arms")
        if not isinstance(arms, dict) or not arms:
            raise ObservabilityError(
                f"benchmarks[{index}] needs a non-empty 'arms' object"
            )
        for arm_name, arm in arms.items():
            if not isinstance(arm, dict):
                raise ObservabilityError(
                    f"benchmarks[{index}] arm {arm_name!r} must be an object"
                )
            seconds = arm.get("seconds")
            if not isinstance(seconds, (int, float)) or seconds < 0:
                raise ObservabilityError(
                    f"benchmarks[{index}] arm {arm_name!r} needs "
                    "non-negative numeric 'seconds'"
                )
            workers = arm.get("workers")
            if not isinstance(workers, int) or workers < 0:
                raise ObservabilityError(
                    f"benchmarks[{index}] arm {arm_name!r} needs "
                    "non-negative integer 'workers'"
                )
        speedup = entry.get("speedup")
        if speedup is not None and (
            not isinstance(speedup, (int, float)) or speedup <= 0
        ):
            raise ObservabilityError(
                f"benchmarks[{index}] 'speedup' must be positive"
            )
        cache = entry.get("cache")
        if cache is not None and not isinstance(cache, dict):
            raise ObservabilityError(
                f"benchmarks[{index}] 'cache' must be an object"
            )
    return obj


def validate_columnar_bench(obj: Any) -> dict[str, Any]:
    """Check a ``BENCH_columnar.json`` payload; returns it on success.

    Each benchmark compares timing arms (row vs columnar backend) on one
    workload::

        {"schema": "repro.bench.columnar/1",
         "benchmarks": [
             {"name": "fast_scatter_restrict",
              "arms": {"row": {"seconds": 0.52},
                       "columnar": {"seconds": 0.03}},
              "speedup": 17.3,
              "counters": {"columnar.batches": 12,
                           "columnar.fallback": 0}}]}
    """
    if not isinstance(obj, dict):
        raise ObservabilityError("columnar bench summary must be an object")
    if obj.get("schema") != COLUMNAR_BENCH_SCHEMA:
        raise ObservabilityError(
            f"columnar bench schema must be {COLUMNAR_BENCH_SCHEMA!r}, "
            f"got {obj.get('schema')!r}"
        )
    benchmarks = obj.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ObservabilityError(
            "columnar bench summary needs a 'benchmarks' list"
        )
    for index, entry in enumerate(benchmarks):
        if not isinstance(entry, dict) or "name" not in entry:
            raise ObservabilityError(
                f"benchmarks[{index}] must be an object with a 'name'"
            )
        arms = entry.get("arms")
        if not isinstance(arms, dict) or not arms:
            raise ObservabilityError(
                f"benchmarks[{index}] needs a non-empty 'arms' object"
            )
        for arm_name, arm in arms.items():
            if not isinstance(arm, dict):
                raise ObservabilityError(
                    f"benchmarks[{index}] arm {arm_name!r} must be an object"
                )
            seconds = arm.get("seconds")
            if not isinstance(seconds, (int, float)) or seconds < 0:
                raise ObservabilityError(
                    f"benchmarks[{index}] arm {arm_name!r} needs "
                    "non-negative numeric 'seconds'"
                )
        speedup = entry.get("speedup")
        if speedup is not None and (
            not isinstance(speedup, (int, float)) or speedup <= 0
        ):
            raise ObservabilityError(
                f"benchmarks[{index}] 'speedup' must be positive"
            )
        counters = entry.get("counters")
        if counters is not None and not isinstance(counters, dict):
            raise ObservabilityError(
                f"benchmarks[{index}] 'counters' must be an object"
            )
    return obj


def validate_server_bench(obj: Any) -> dict[str, Any]:
    """Check a ``BENCH_server.json`` payload; returns it on success.

    Each benchmark is one concurrent-viewer load run against a hosted
    program::

        {"schema": "repro.bench.server/1",
         "benchmarks": [
             {"name": "fig4_ws_load",
              "viewers": 50,
              "renders_per_viewer": 6,
              "latency": {"p50_s": 0.011, "p99_s": 0.18,
                          "mean_s": 0.02, "max_s": 0.21},
              "throughput_cps": 410.0,
              "frames": {"delivered": 300, "dropped": 0},
              "cache": {"hits": 620, "misses": 9}}]}
    """
    if not isinstance(obj, dict):
        raise ObservabilityError("server bench summary must be an object")
    if obj.get("schema") != SERVER_BENCH_SCHEMA:
        raise ObservabilityError(
            f"server bench schema must be {SERVER_BENCH_SCHEMA!r}, "
            f"got {obj.get('schema')!r}"
        )
    benchmarks = obj.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ObservabilityError(
            "server bench summary needs a 'benchmarks' list"
        )
    for index, entry in enumerate(benchmarks):
        if not isinstance(entry, dict) or "name" not in entry:
            raise ObservabilityError(
                f"benchmarks[{index}] must be an object with a 'name'"
            )
        viewers = entry.get("viewers")
        if not isinstance(viewers, int) or viewers <= 0:
            raise ObservabilityError(
                f"benchmarks[{index}] needs a positive integer 'viewers'"
            )
        latency = entry.get("latency")
        if not isinstance(latency, dict):
            raise ObservabilityError(
                f"benchmarks[{index}] needs a 'latency' object"
            )
        for quantile in ("p50_s", "p99_s"):
            value = latency.get(quantile)
            if not isinstance(value, (int, float)) or value < 0:
                raise ObservabilityError(
                    f"benchmarks[{index}] latency needs non-negative "
                    f"numeric {quantile!r}"
                )
        throughput = entry.get("throughput_cps")
        if throughput is not None and (
            not isinstance(throughput, (int, float)) or throughput < 0
        ):
            raise ObservabilityError(
                f"benchmarks[{index}] 'throughput_cps' must be non-negative"
            )
        for section in ("frames", "cache"):
            value = entry.get(section)
            if value is not None and not isinstance(value, dict):
                raise ObservabilityError(
                    f"benchmarks[{index}] {section!r} must be an object"
                )
    return obj


def validate_any_bench(obj: Any) -> dict[str, Any]:
    """Validate a bench payload, routing on its own schema tag.

    Used by ``repro stats --validate-bench`` and
    ``repro bench-diff --update-baselines``, which accept any of the four
    ``BENCH_*.json`` artifact kinds.
    """
    schema = obj.get("schema") if isinstance(obj, dict) else None
    if schema == PARALLEL_BENCH_SCHEMA:
        return validate_parallel_bench(obj)
    if schema == COLUMNAR_BENCH_SCHEMA:
        return validate_columnar_bench(obj)
    if schema == SERVER_BENCH_SCHEMA:
        return validate_server_bench(obj)
    return validate_bench_summary(obj)
