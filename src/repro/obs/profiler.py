"""Continuous statistical profiling over ``sys._current_frames()``.

A :class:`Profiler` runs one daemon sampler thread that, ``hz`` times a
second, snapshots every live thread's Python stack and appends a
:class:`ProfileSample` to a bounded ring.  Pure stdlib, no signals, no
native code — it works inside the asyncio server, under the thread pool,
and on any platform the repo runs on.  The cost model is simple: each tick
holds the GIL for one stack walk per thread, so overhead scales with
``hz × threads × stack depth`` and stays well under the documented 3%
budget at the default rate (see ``docs/OBSERVABILITY.md``).

Samples carry per-request attribution: when the sampled thread has adopted
a :class:`~repro.obs.trace.TraceContext` (the server's pool workers do, via
:meth:`Tracer.adopt`), the sample records its ``trace_id`` and ``session``,
which is what lets slow-request capture cut the profile down to *this
request's* time on CPU.

Exports: :meth:`Profiler.collapsed` (folded-stack lines, flamegraph
ready), :meth:`Profiler.chrome_trace` (instant events on named thread
tracks for Perfetto), :meth:`Profiler.snapshot` (JSON, schema
``repro.profile/1``), and :meth:`Profiler.slice` (raw samples in a time
window, the slow-request capture hook).
"""

from __future__ import annotations

import sys
import threading
from collections import Counter as _TallyCounter
from collections import deque
from os.path import basename
from time import perf_counter_ns
from typing import Any, Iterable

from repro.errors import ObservabilityError
from repro.obs.trace import thread_trace_contexts

__all__ = ["Profiler", "ProfileSample", "PROFILE_SCHEMA"]

PROFILE_SCHEMA = "repro.profile/1"
"""Schema tag stamped into :meth:`Profiler.snapshot` payloads."""

_PID = 1  # single-process traces; Chrome requires *a* pid


class ProfileSample:
    """One thread's stack at one sampler tick (root-first frames)."""

    __slots__ = ("ts_ns", "thread_id", "thread_name", "frames", "trace_id",
                 "session")

    def __init__(self, ts_ns: int, thread_id: int, thread_name: str,
                 frames: tuple[str, ...], trace_id: str | None,
                 session: str | None):
        self.ts_ns = ts_ns
        self.thread_id = thread_id
        self.thread_name = thread_name
        self.frames = frames
        self.trace_id = trace_id
        self.session = session

    def as_dict(self) -> dict[str, Any]:
        return {
            "ts_ns": self.ts_ns,
            "thread": self.thread_id,
            "thread_name": self.thread_name,
            "frames": list(self.frames),
            "trace_id": self.trace_id,
            "session": self.session,
        }

    def __repr__(self) -> str:
        leaf = self.frames[-1] if self.frames else "?"
        return f"ProfileSample({self.thread_name!r}, {leaf!r})"


def _frame_label(frame) -> str:
    code = frame.f_code
    return f"{basename(code.co_filename)}:{code.co_name}:{frame.f_lineno}"


class Profiler:
    """Sample every live thread's stack at a fixed rate into a ring.

    ``hz`` is the target sampling rate; ``capacity`` bounds retention
    (oldest samples fall off).  The sampler thread never samples itself.
    Timestamps share the spans' ``perf_counter_ns`` clock, so profiler
    slices line up with span trees without conversion.
    """

    def __init__(self, hz: float = 67.0, capacity: int = 100_000):
        if hz <= 0:
            raise ObservabilityError(
                f"profiler rate must be positive, got {hz}")
        if capacity < 1:
            raise ObservabilityError(
                f"profiler capacity must be >= 1, got {capacity}")
        self.hz = hz
        self.capacity = capacity
        self._samples: deque[ProfileSample] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.ticks = 0
        self.total_samples = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "Profiler":
        """Start the sampler daemon thread (idempotent-hostile: raises if
        already running, so double-starts surface instead of doubling hz)."""
        if self._thread is not None:
            raise ObservabilityError("profiler already started")
        self._stop.clear()
        interval = 1.0 / self.hz

        def loop() -> None:
            while not self._stop.wait(interval):
                self.sample_once()

        self._thread = threading.Thread(
            target=loop, name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sampler (no-op if never started)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "Profiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- sampling ----------------------------------------------------------

    def sample_once(self, now_ns: int | None = None) -> int:
        """Take one tick: snapshot every thread's stack; returns samples
        appended.  Public so tests (and the overhead guard) can measure a
        tick without running the thread."""
        now = perf_counter_ns() if now_ns is None else now_ns
        own = self._thread.ident if self._thread is not None else None
        names = {t.ident: t.name for t in threading.enumerate()}
        contexts = thread_trace_contexts()
        appended = 0
        # sys._current_frames holds the GIL for the dict build; the stack
        # walk below runs on live frames, which is safe (read-only) and the
        # standard stdlib statistical-profiler idiom.
        for tid, frame in sys._current_frames().items():
            if tid == own or tid == threading.get_ident():
                continue
            frames: list[str] = []
            depth = 0
            while frame is not None and depth < 128:
                frames.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            frames.reverse()
            ctx = contexts.get(tid)
            sample = ProfileSample(
                now, tid, names.get(tid, f"thread-{tid}"), tuple(frames),
                ctx.trace_id if ctx is not None else None,
                ctx.session if ctx is not None else None,
            )
            with self._lock:
                self._samples.append(sample)
            self.total_samples += 1
            appended += 1
        self.ticks += 1
        return appended

    # -- access ------------------------------------------------------------

    def samples(self, since_ns: int | None = None,
                until_ns: int | None = None,
                trace_id: str | None = None) -> list[ProfileSample]:
        """Retained samples oldest-first, optionally windowed/filtered."""
        with self._lock:
            out: Iterable[ProfileSample] = list(self._samples)
        if since_ns is not None:
            out = (s for s in out if s.ts_ns >= since_ns)
        if until_ns is not None:
            out = (s for s in out if s.ts_ns <= until_ns)
        if trace_id is not None:
            out = (s for s in out if s.trace_id == trace_id)
        return list(out)

    def slice(self, start_ns: int, end_ns: int,
              trace_id: str | None = None) -> list[dict[str, Any]]:
        """Dict-form samples inside ``[start_ns, end_ns]`` — the
        slow-request capture hook.  ``trace_id`` keeps only samples
        attributed to that request (unattributed samples in the window are
        kept too: they are usually the request's own un-adopted frames)."""
        out = []
        for sample in self.samples(start_ns, end_ns):
            if trace_id is not None and sample.trace_id not in (
                    None, trace_id):
                continue
            out.append(sample.as_dict())
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def __bool__(self) -> bool:
        # Sized, but an empty profiler is still a profiler: never let
        # ``if profiler:`` mean "has samples".
        return True

    @property
    def dropped(self) -> int:
        with self._lock:
            return self.total_samples - len(self._samples)

    def clear(self) -> None:
        with self._lock:
            self._samples.clear()

    # -- export ------------------------------------------------------------

    def collapsed(self, since_ns: int | None = None,
                  trace_id: str | None = None) -> dict[str, int]:
        """Folded stacks → occurrence counts (flamegraph.pl input form):
        frames joined root-first with ``;``."""
        tally: _TallyCounter[str] = _TallyCounter()
        for sample in self.samples(since_ns=since_ns, trace_id=trace_id):
            if sample.frames:
                tally[";".join(sample.frames)] += 1
        return dict(tally)

    def collapsed_text(self, since_ns: int | None = None,
                       trace_id: str | None = None) -> str:
        """``stack count`` lines, most frequent first."""
        folded = self.collapsed(since_ns=since_ns, trace_id=trace_id)
        lines = [f"{stack} {count}" for stack, count in
                 sorted(folded.items(), key=lambda kv: (-kv[1], kv[0]))]
        return "\n".join(lines) + ("\n" if lines else "")

    def chrome_trace(self, process_name: str = "repro-profile"
                     ) -> dict[str, Any]:
        """Chrome ``trace_event`` JSON: one instant event per sample on a
        named per-thread track, trace ids riding in ``args`` so Perfetto
        queries can group a request's samples across threads."""
        samples = self.samples()
        events: list[dict[str, Any]] = [{
            "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
            "args": {"name": process_name},
        }]
        threads: dict[int, str] = {}
        for sample in samples:
            threads.setdefault(sample.thread_id, sample.thread_name)
        tids = {tid: index for index, tid in enumerate(sorted(threads))}
        for tid, index in tids.items():
            events.append({
                "name": "thread_name", "ph": "M", "pid": _PID, "tid": index,
                "args": {"name": threads[tid]},
            })
        origin = samples[0].ts_ns if samples else 0
        for sample in samples:
            leaf = sample.frames[-1] if sample.frames else "?"
            args: dict[str, Any] = {"stack": ";".join(sample.frames)}
            if sample.trace_id is not None:
                args["trace_id"] = sample.trace_id
            if sample.session is not None:
                args["session"] = sample.session
            events.append({
                "name": leaf,
                "cat": "sample",
                "ph": "i",
                "ts": (sample.ts_ns - origin) / 1000.0,
                "pid": _PID,
                "tid": tids[sample.thread_id],
                "s": "t",
                "args": args,
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped": self.dropped},
        }

    def snapshot(self, seconds: float | None = None) -> dict[str, Any]:
        """JSON-ready summary (schema ``repro.profile/1``).

        ``seconds`` keeps only the trailing window — the ``/debug/profile``
        form.  Carries the folded stacks, per-thread sample counts, and the
        raw window size so consumers can normalize to rates.
        """
        since = None
        if seconds is not None:
            since = perf_counter_ns() - int(seconds * 1e9)
        samples = self.samples(since_ns=since)
        by_thread: _TallyCounter[str] = _TallyCounter()
        by_trace: _TallyCounter[str] = _TallyCounter()
        for sample in samples:
            by_thread[sample.thread_name] += 1
            if sample.trace_id is not None:
                by_trace[sample.trace_id] += 1
        return {
            "schema": PROFILE_SCHEMA,
            "hz": self.hz,
            "running": self.running,
            "ticks": self.ticks,
            "samples": len(samples),
            "dropped": self.dropped,
            "window_s": seconds,
            "threads": dict(sorted(by_thread.items())),
            "traces": dict(sorted(by_trace.items())),
            "collapsed": self.collapsed(since_ns=since),
        }

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"Profiler({self.hz}hz, {len(self)} samples, {state})"
