"""Structured JSON logging with trace/session correlation ids.

Ad-hoc prints can't be joined against spans or metrics; these loggers can.
:class:`JsonFormatter` renders every record as one JSON object per line —
timestamp, level, logger, message, any ``extra={...}`` fields — and injects
the active request's ``trace_id`` and ``session`` from the adopted
:class:`~repro.obs.trace.TraceContext`, so a grep for a trace id crosses the
log/span boundary for free.

Library default is silence: :func:`get_logger` hangs everything under the
``repro`` logger, which carries a ``NullHandler`` until an application calls
:func:`configure_logging` (the ``repro serve`` CLI does; tests stay quiet).
The server's access log lives at :data:`ACCESS_LOGGER` — one line per HTTP
request and per executed WebSocket command.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, TextIO

from repro.obs.trace import current_trace_context

__all__ = [
    "ACCESS_LOGGER",
    "JsonFormatter",
    "configure_logging",
    "get_logger",
]

#: The server access log: one record per HTTP request / executed command.
ACCESS_LOGGER = "repro.server.access"

_ROOT = "repro"

#: LogRecord attributes that are plumbing, not payload; anything else bound
#: to a record (``extra={...}``) is emitted as a JSON field.
_RESERVED = frozenset(vars(logging.LogRecord(
    "", 0, "", 0, "", (), None)).keys()) | {
        "message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per record, correlation ids included."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created))
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        ctx = current_trace_context()
        if ctx is not None:
            payload.setdefault("trace_id", ctx.trace_id)
            if ctx.session is not None:
                payload.setdefault("session", ctx.session)
        for key, value in vars(record).items():
            if key in _RESERVED or key in payload:
                continue
            payload[key] = value if isinstance(
                value, (str, int, float, bool)) or value is None else repr(
                value)
        if record.exc_info and record.exc_info[0] is not None:
            payload["error"] = record.exc_info[0].__name__
            payload["error_message"] = str(record.exc_info[1])
        return json.dumps(payload, sort_keys=True)


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (quiet until configured)."""
    root = logging.getLogger(_ROOT)
    if not any(isinstance(h, logging.NullHandler) for h in root.handlers):
        root.addHandler(logging.NullHandler())
    if name is None or name == _ROOT:
        return root
    if not name.startswith(_ROOT + "."):
        name = f"{_ROOT}.{name}"
    return logging.getLogger(name)


def configure_logging(stream: TextIO | None = None,
                      level: int = logging.INFO) -> logging.Handler:
    """Attach one JSON handler to the ``repro`` logger; returns it.

    Idempotent per stream: reconfiguring replaces the previous JSON handler
    rather than stacking duplicates.  Remove the returned handler (or call
    with ``level=logging.CRITICAL + 1``) to quiesce again.
    """
    stream = stream if stream is not None else sys.stderr
    root = get_logger()
    for handler in list(root.handlers):
        if isinstance(handler, _JsonHandler):
            root.removeHandler(handler)
    handler = _JsonHandler(stream)
    handler.setFormatter(JsonFormatter())
    handler.setLevel(level)
    root.addHandler(handler)
    root.setLevel(level)
    return handler


class _JsonHandler(logging.StreamHandler):
    """Marker subclass so reconfiguration can find its own handler."""
