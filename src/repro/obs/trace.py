"""Nested-span tracing: the timeline half of the observability layer.

A :class:`Tracer` records a tree of :class:`Span` records (monotonic clocks,
thread-safe, one tree per execution context via a ``contextvars`` span
stack) plus point :class:`TraceEvent` records.  Instrumented code does::

    tracer = current_tracer()
    if tracer.enabled:
        with tracer.span("engine.fire", box=box_id):
            ...

The ``enabled`` guard is the whole overhead story: a disabled tracer's
``span()`` returns one shared no-op singleton, so hot paths that pre-check
``enabled`` pay a single attribute read and hot paths that don't pay only
the kwargs packing — nothing is recorded, nothing retained, no locks taken.

Request scope: a :class:`TraceContext` names one dispatched command — a
trace id, the span to parent under, the session and command kind.  Context
variables do **not** flow into ``run_in_executor`` threads, so code that
moves a request across threads (the server's thread pool) carries the
context explicitly and re-activates it with :meth:`Tracer.adopt`::

    ctx = current_trace_context()          # on the dispatching thread
    ...                                    # hop to a pool worker
    with tracer.adopt(ctx):                # spans now join the request tree
        session.execute(command)

Every span carries the active ``trace_id``, so exporters (and the
``/debug/trace`` endpoint) can reassemble one connected request tree even
when its spans ran on three different threads.

One process-global tracer (disabled by default) backs ``REPRO_TRACE=1`` env
activation and the CLI; :func:`push_tracer` installs a different tracer for
a scoped region (``Viewer.render(trace=...)``, ``repro trace``,
benchmark telemetry) without touching global state permanently.

The span taxonomy emitted by the instrumented modules is cataloged in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import os
import threading
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter_ns
from typing import Any, Iterator

__all__ = [
    "Span",
    "TraceEvent",
    "TraceContext",
    "Tracer",
    "NULL_SPAN",
    "current_tracer",
    "set_tracer",
    "push_tracer",
    "tracing",
    "install_from_env",
    "current_trace_context",
    "thread_trace_contexts",
]


class TraceContext:
    """The identity of one dispatched request, carried across threads.

    ``trace_id`` is the request's correlation id (hex, client-suppliable on
    the wire); ``parent_span_id`` is the span new work should parent under
    (None at the root); ``session`` and ``command`` are attribution for
    profilers and logs.  Instances are immutable — derive with
    :meth:`child_of`.
    """

    __slots__ = ("trace_id", "parent_span_id", "session", "command")

    def __init__(self, trace_id: str, parent_span_id: int | None = None,
                 session: str | None = None, command: str | None = None):
        object.__setattr__(self, "trace_id", trace_id)
        object.__setattr__(self, "parent_span_id", parent_span_id)
        object.__setattr__(self, "session", session)
        object.__setattr__(self, "command", command)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("TraceContext is immutable")

    @classmethod
    def new(cls, session: str | None = None,
            command: str | None = None) -> "TraceContext":
        """Mint a fresh context with a random trace id."""
        return cls(uuid.uuid4().hex[:16], None, session, command)

    def child_of(self, span: "Span") -> "TraceContext":
        """The context for work dispatched from under ``span``."""
        return TraceContext(self.trace_id, span.span_id,
                            self.session, self.command)

    def to_wire(self) -> dict[str, Any]:
        """JSON-safe dict form (the optional ``trace`` command field)."""
        wire: dict[str, Any] = {"trace_id": self.trace_id}
        if self.parent_span_id is not None:
            wire["parent_span_id"] = self.parent_span_id
        if self.session is not None:
            wire["session"] = self.session
        if self.command is not None:
            wire["command"] = self.command
        return wire

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "TraceContext":
        """Rebuild a context from its dict form; tolerant of extras."""
        trace_id = str(wire.get("trace_id") or uuid.uuid4().hex[:16])
        parent = wire.get("parent_span_id")
        return cls(
            trace_id,
            int(parent) if parent is not None else None,
            wire.get("session"),
            wire.get("command"),
        )

    def __repr__(self) -> str:
        return (f"TraceContext({self.trace_id!r}, parent="
                f"{self.parent_span_id}, session={self.session!r}, "
                f"command={self.command!r})")


#: The open-span stack for the current execution context.  One module-level
#: ContextVar (not per-tracer) so asyncio tasks inherit and isolate stacks
#: naturally; entries remember their tracer, so a pushed benchmark tracer
#: never parents under a foreign tracer's open span.
_SPAN_STACK: ContextVar[tuple["Span", ...]] = ContextVar(
    "repro-span-stack", default=())

#: The adopted request context for the current execution context.
_TRACE_CONTEXT: ContextVar[TraceContext | None] = ContextVar(
    "repro-trace-context", default=None)

#: thread id -> adopted TraceContext, for samplers that only see thread ids
#: (``sys._current_frames``).  Guarded by the GIL-atomic dict ops plus
#: best-effort semantics: the profiler tolerates a stale entry.
_THREAD_CONTEXTS: dict[int, TraceContext] = {}


def current_trace_context() -> TraceContext | None:
    """The request context adopted in this execution context, if any."""
    return _TRACE_CONTEXT.get()


def thread_trace_contexts() -> dict[int, TraceContext]:
    """Snapshot of thread id → adopted request context (profiler hook)."""
    return dict(_THREAD_CONTEXTS)


class Span:
    """One timed region: name, attributes, parent link, monotonic bounds.

    Spans are created by :meth:`Tracer.span` and closed by leaving the
    ``with`` block; ``set()`` attaches attributes (row counts, cache
    verdicts) at any point while the span is open.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "trace_id", "start_ns", "end_ns",
        "attrs", "thread_id", "thread_name", "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        attrs: dict[str, Any],
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id: str | None = None
        self.attrs = attrs
        current = threading.current_thread()
        self.thread_id = current.ident or threading.get_ident()
        self.thread_name = current.name
        self.start_ns = 0
        self.end_ns: int | None = None
        self._tracer = tracer

    # -- protocol ---------------------------------------------------------

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to an open span (chainable)."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return perf_counter_ns() - self.start_ns
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._exit(self)
        return False

    def __repr__(self) -> str:
        state = "open" if self.end_ns is None else f"{self.duration_ms:.3f}ms"
        return f"Span({self.name!r}, #{self.span_id}, {state})"


class _NullSpan:
    """Shared do-nothing span returned by disabled tracers.

    A singleton so the disabled hot path allocates nothing; ``set`` and the
    context protocol are inert.
    """

    __slots__ = ()

    enabled = False
    name = ""
    span_id = 0
    parent_id = None
    trace_id = None
    attrs: dict[str, Any] = {}

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __repr__(self) -> str:
        return "NULL_SPAN"


NULL_SPAN = _NullSpan()


class TraceEvent:
    """A point-in-time marker (Chrome 'instant' event)."""

    __slots__ = ("name", "ts_ns", "attrs", "thread_id", "parent_id")

    def __init__(self, name: str, ts_ns: int, attrs: dict[str, Any],
                 thread_id: int, parent_id: int | None):
        self.name = name
        self.ts_ns = ts_ns
        self.attrs = attrs
        self.thread_id = thread_id
        self.parent_id = parent_id

    def __repr__(self) -> str:
        return f"TraceEvent({self.name!r})"


class Tracer:
    """Collects spans and events for one run.

    ``max_spans`` bounds retention so a tracer attached to a benchmark loop
    cannot grow without limit; completed spans beyond the cap are counted in
    ``dropped`` instead of stored.  All mutation of the finished lists is
    lock-guarded; the open-span stack lives in a ``contextvars`` variable,
    so concurrent threads — and concurrent asyncio tasks on one thread —
    each build their own subtree.  :meth:`adopt` re-activates a request's
    :class:`TraceContext` on a pool worker, which context variables alone
    cannot do (``run_in_executor`` does not propagate context).
    """

    def __init__(self, enabled: bool = True, max_spans: int = 200_000):
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped = 0
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self._lock = threading.Lock()
        self._next_id = 1
        #: perf_counter_ns origin, set lazily on first span/event so all
        #: exported timestamps are small non-negative offsets.
        self.origin_ns: int | None = None
        #: callbacks invoked with each completed Span / recorded TraceEvent
        #: (the flight recorder's tap).  Empty for ordinary tracers, so the
        #: hot path pays one truthiness check.
        self._sinks: list = []

    def add_sink(self, sink) -> None:
        """Subscribe ``sink(record)`` to completed spans and events.

        Sinks see records *after* retention accounting, including ones the
        cap dropped — a flight recorder keeps its own (smaller) window.
        """
        self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    # -- recording --------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span | _NullSpan:
        """Open a span; use as a context manager.

        Returns :data:`NULL_SPAN` when disabled — hot paths that build
        expensive attribute dicts should pre-check ``tracer.enabled``.
        """
        if not self.enabled:
            return NULL_SPAN
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(self, name, span_id, None, attrs)

    # -- request adoption --------------------------------------------------

    def context(self) -> TraceContext | None:
        """The adopted request context in this execution context, if any."""
        return _TRACE_CONTEXT.get()

    @contextmanager
    def adopt(self, ctx: TraceContext | None) -> Iterator[TraceContext | None]:
        """Re-activate a request's context on this thread/task.

        Inside the block, spans with no in-context parent attach under
        ``ctx.parent_span_id`` and inherit ``ctx.trace_id``; the thread is
        registered in :func:`thread_trace_contexts` so samplers can
        attribute its stacks to the request.  ``ctx=None`` is a no-op block
        (callers need not branch).  Nesting restores the previous context.
        """
        if ctx is None:
            yield None
            return
        token = _TRACE_CONTEXT.set(ctx)
        tid = threading.get_ident()
        previous = _THREAD_CONTEXTS.get(tid)
        _THREAD_CONTEXTS[tid] = ctx
        try:
            yield ctx
        finally:
            _TRACE_CONTEXT.reset(token)
            if previous is None:
                _THREAD_CONTEXTS.pop(tid, None)
            else:
                _THREAD_CONTEXTS[tid] = previous

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instant event under the current span."""
        if not self.enabled:
            return
        now = perf_counter_ns()
        current = self.current()
        record = TraceEvent(
            name, now, attrs, threading.get_ident(),
            current.span_id if current is not None else None,
        )
        with self._lock:
            if self.origin_ns is None:
                self.origin_ns = now
            if len(self.events) < self.max_spans:
                self.events.append(record)
            else:
                self.dropped += 1
        if self._sinks:
            for sink in self._sinks:
                sink(record)

    def current(self) -> Span | None:
        """The innermost open span of this tracer in this context, if any."""
        for span in reversed(_SPAN_STACK.get()):
            if span._tracer is self:
                return span
        return None

    # -- span lifecycle (called by Span) ----------------------------------

    def _enter(self, span: Span) -> None:
        stack = _SPAN_STACK.get()
        if span.parent_id is None:
            # Parent under this tracer's innermost open span; a pushed
            # benchmark tracer must not adopt a foreign tracer's tree.
            for open_span in reversed(stack):
                if open_span._tracer is self:
                    span.parent_id = open_span.span_id
                    span.trace_id = open_span.trace_id
                    break
            else:
                ctx = _TRACE_CONTEXT.get()
                if ctx is not None:
                    span.parent_id = ctx.parent_span_id
                    span.trace_id = ctx.trace_id
        _SPAN_STACK.set(stack + (span,))
        span.start_ns = perf_counter_ns()
        if self.origin_ns is None:
            with self._lock:
                if self.origin_ns is None:
                    self.origin_ns = span.start_ns

    def _exit(self, span: Span) -> None:
        span.end_ns = perf_counter_ns()
        stack = _SPAN_STACK.get()
        if stack:
            # Normally a plain pop; generator-driven spans (plan nodes) can
            # finalize out of order, so remove by identity when needed.
            if stack[-1] is span:
                _SPAN_STACK.set(stack[:-1])
            else:
                _SPAN_STACK.set(tuple(
                    open_span for open_span in stack
                    if open_span is not span))
        with self._lock:
            if len(self.spans) < self.max_spans:
                self.spans.append(span)
            else:
                self.dropped += 1
        if self._sinks:
            for sink in self._sinks:
                sink(span)

    # -- inspection -------------------------------------------------------

    def finished(self, name: str | None = None) -> list[Span]:
        """Completed spans, optionally filtered by name."""
        with self._lock:
            spans = list(self.spans)
        if name is None:
            return spans
        return [span for span in spans if span.name == name]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.finished() if s.parent_id == span.span_id]

    def roots(self) -> list[Span]:
        """Completed spans whose parent never completed (tree roots)."""
        spans = self.finished()
        known = {span.span_id for span in spans}
        return [s for s in spans if s.parent_id not in known]

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self.events.clear()
            self.dropped = 0
            self.origin_ns = None

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self.spans)} spans)"


# ---------------------------------------------------------------------------
# The process-global tracer and scoped installation
# ---------------------------------------------------------------------------

_GLOBAL_TRACER = Tracer(enabled=False)
_INSTALL_LOCK = threading.Lock()


def current_tracer() -> Tracer:
    """The tracer instrumented code should record into right now."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global tracer; returns the old one."""
    global _GLOBAL_TRACER
    with _INSTALL_LOCK:
        previous = _GLOBAL_TRACER
        _GLOBAL_TRACER = tracer
    return previous


@contextmanager
def push_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped installation: the global tracer is ``tracer`` inside the block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def tracing(max_spans: int = 200_000) -> Iterator[Tracer]:
    """Convenience: install a fresh enabled tracer for the block."""
    with push_tracer(Tracer(enabled=True, max_spans=max_spans)) as tracer:
        yield tracer


def install_from_env(environ=None) -> bool:
    """Enable the global tracer when ``REPRO_TRACE=1`` (package init hook)."""
    if environ is None:
        environ = os.environ
    if environ.get("REPRO_TRACE") == "1":
        _GLOBAL_TRACER.enabled = True
        return True
    return False
