"""Time-series telemetry: ring-buffer sampling of the metrics registry.

PR 3/PR 4 left the process with rich *point-in-time* telemetry — a
:class:`~repro.obs.metrics.MetricsRegistry` full of counters and a
:class:`~repro.obs.trace.Tracer` full of spans — but no history.  This
module adds the time axis:

* :class:`TimeSeries` — a fixed-capacity ring buffer of ``(t, value)``
  samples.  Appending past capacity overwrites the oldest sample; the
  series always yields its retained points oldest-first.
* :class:`MetricsRecorder` — samples a registry (and optionally a tracer's
  span rollups) into one :class:`TimeSeries` per metric/label, deriving
  per-interval **deltas** and **rates** for counters so cache hit-rate and
  morsel throughput can be watched evolving across a session.  Sampling is
  cheap (a lock-guarded walk of the snapshot dicts) and safe to run from a
  background thread (:meth:`MetricsRecorder.start`) while ``workers=4``
  engines fire concurrently.

Exports: :meth:`MetricsRecorder.snapshot` is a stable JSON-ready dict
(schema ``repro.timeseries/1``, checked by :func:`validate_timeseries`) and
:meth:`MetricsRecorder.prometheus_text` is the Prometheus text exposition
format (``# TYPE`` comments + ``name{label="..."} value`` lines) so the
recorder can back a ``/metrics`` endpoint without new dependencies.

The dashboard layer (``repro.obs.dashboard``) loads these samples into
ordinary DBMS tables and renders them with a Tioga-2 program — the system
visualizing itself.  See ``docs/OBSERVABILITY.md`` and
``docs/DASHBOARD.md``.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter
from typing import Any, Iterator

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.trace import Tracer

__all__ = [
    "TimeSeries",
    "MetricsRecorder",
    "TIMESERIES_SCHEMA",
    "validate_timeseries",
]

TIMESERIES_SCHEMA = "repro.timeseries/1"
"""Schema tag stamped into :meth:`MetricsRecorder.snapshot` exports."""


class TimeSeries:
    """A fixed-capacity ring buffer of ``(t, value)`` samples.

    Appending beyond ``capacity`` overwrites the oldest sample — the series
    retains a sliding window, never grows, and never reallocates after the
    first wrap.  Iteration and :meth:`points` always yield oldest-first.

    The ring is a ``deque(maxlen=capacity)`` — eviction happens in C, which
    keeps :meth:`append` cheap enough for the recorder to touch a hundred
    series per sample inside its overhead budget.
    """

    __slots__ = ("name", "capacity", "_ring", "total_appends")

    def __init__(self, name: str, capacity: int = 240):
        if capacity < 1:
            raise ObservabilityError(
                f"time series {name!r} needs capacity >= 1, got {capacity}"
            )
        self.name = name
        self.capacity = capacity
        self._ring: deque[tuple[float, float]] = deque(maxlen=capacity)
        #: lifetime count, including samples that have been overwritten
        self.total_appends = 0

    def append(self, t: float, value: float) -> None:
        self._ring.append((t, value))
        self.total_appends += 1

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Samples lost to wraparound (lifetime appends minus retained)."""
        return self.total_appends - len(self._ring)

    def points(self) -> list[tuple[float, float]]:
        """Retained ``(t, value)`` pairs, oldest first."""
        return list(self._ring)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(self.points())

    def times(self) -> list[float]:
        return [t for t, _ in self._ring]

    def values(self) -> list[float]:
        return [v for _, v in self._ring]

    def latest(self) -> tuple[float, float] | None:
        if not self._ring:
            return None
        return self._ring[-1]

    def __repr__(self) -> str:
        return (f"TimeSeries({self.name!r}, {len(self._ring)}/"
                f"{self.capacity} samples)")


def _flatten_metric(name: str, snap: dict[str, Any]) -> dict[str, float]:
    """One metric snapshot → {series key: numeric value}.

    Counters contribute their per-label values plus a ``_total``; gauges
    their per-label values; histograms their per-label count/sum/mean.
    """
    kind = snap.get("kind")
    out: dict[str, float] = {}
    if kind == "counter":
        out[f"{name}|_total"] = float(snap.get("total", 0))
        for label, value in snap.get("by_label", {}).items():
            if label != "_total":
                out[f"{name}|{label}"] = float(value)
    elif kind == "gauge":
        for label, value in snap.get("by_label", {}).items():
            out[f"{name}|{label}"] = float(value)
    elif kind == "histogram":
        for label, stats in snap.get("by_label", {}).items():
            count = float(stats.get("count", 0))
            total = float(stats.get("sum", 0.0))
            out[f"{name}|{label}|count"] = count
            out[f"{name}|{label}|sum"] = total
            if count:
                out[f"{name}|{label}|mean"] = total / count
    return out


class MetricsRecorder:
    """Samples a :class:`MetricsRegistry` into ring-buffer time series.

    Each :meth:`sample` walks the registry snapshot and appends the current
    value of every metric/label to its series; for **counters** it also
    derives a ``delta`` series (increase since the previous sample) and a
    ``rate`` series (delta per second of wall time between samples), which is
    what "cache hit-rate over time" and "rows/sec per operator" are made of.

    Series keys are ``metric|label`` (``|_total`` for the counter aggregate,
    ``|label|count``/``sum``/``mean`` for histograms); derived counter series
    append ``|delta`` / ``|rate``.

    All public methods are thread-safe: a recorder started with
    :meth:`start` samples from a daemon thread while ``workers=4`` engines
    increment the same registry, and the underlying metrics guard their own
    updates, so a sample never sees a torn per-label write.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 tracer: Tracer | None = None, capacity: int = 240,
                 clock=perf_counter):
        self.registry = registry if registry is not None else global_registry()
        self.tracer = tracer
        self.capacity = capacity
        self._clock = clock
        self._series: dict[str, TimeSeries] = {}
        self._kinds: dict[str, str] = {}  # metric name -> kind, as sampled
        self._prev_counts: dict[str, float] = {}
        self._derived_keys: dict[str, tuple[str, str]] = {}
        self._prev_t: float | None = None
        self._origin: float | None = None
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.samples_taken = 0

    # -- sampling ---------------------------------------------------------

    def _get_series(self, key: str) -> TimeSeries:
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = TimeSeries(key, self.capacity)
        return series

    def sample(self, t: float | None = None) -> float:
        """Take one sample of every metric; returns the sample time.

        ``t`` is seconds on the recorder's clock (defaults to now); the
        first sample establishes the origin, so exported times start near 0.
        """
        now = self._clock() if t is None else t
        snapshot = self.registry.snapshot()
        with self._lock:
            if self._origin is None:
                self._origin = now
            rel = now - self._origin
            elapsed = None if self._prev_t is None else rel - self._prev_t
            get_series = self._get_series
            prev_counts = self._prev_counts
            derived = self._derived_keys
            for name, snap in snapshot.items():
                kind = snap.get("kind", "counter")
                self._kinds[name] = kind
                is_counter = kind == "counter"
                for key, value in _flatten_metric(name, snap).items():
                    get_series(key).append(rel, value)
                    if is_counter:
                        previous = prev_counts.get(key)
                        delta = value - previous if previous is not None \
                            else value
                        prev_counts[key] = value
                        keys = derived.get(key)
                        if keys is None:
                            keys = derived[key] = (f"{key}|delta",
                                                   f"{key}|rate")
                        get_series(keys[0]).append(rel, delta)
                        if elapsed is not None and elapsed > 0:
                            get_series(keys[1]).append(rel, delta / elapsed)
            if self.tracer is not None:
                for name, roll in _span_rollup(self.tracer).items():
                    self._get_series(f"span.{name}|count").append(
                        rel, roll["count"]
                    )
                    self._get_series(f"span.{name}|total_ms").append(
                        rel, roll["total_ms"]
                    )
            self._prev_t = rel
            self.samples_taken += 1
        return rel

    # -- background sampling ----------------------------------------------

    def start(self, interval_s: float = 0.05) -> "MetricsRecorder":
        """Sample every ``interval_s`` seconds from a daemon thread."""
        if self._thread is not None:
            raise ObservabilityError("recorder already started")
        if interval_s <= 0:
            raise ObservabilityError(
                f"sampling interval must be positive, got {interval_s}"
            )
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                self.sample()

        self._thread = threading.Thread(
            target=loop, name="repro-metrics-recorder", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_sample: bool = True) -> None:
        """Stop the background thread (no-op if never started)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        if final_sample:
            self.sample()

    def __enter__(self) -> "MetricsRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop(final_sample=exc_type is None)
        return False

    def prune_label(self, label: Any) -> int:
        """Drop every retained series (and derived-series state) for a label.

        The recorder-side half of the session-cardinality fix: series keys
        are ``metric|label[|qualifier]``, so pruning matches on the label
        segment and also clears the counter delta/rate bookkeeping
        (``_prev_counts`` / ``_derived_keys``) so a recycled label starts
        from a clean slate.  Returns the number of series removed.
        """
        wanted = str(label)

        def matches(key: str) -> bool:
            parts = key.split("|")
            return len(parts) > 1 and parts[1] == wanted

        with self._lock:
            doomed = [key for key in self._series if matches(key)]
            for key in doomed:
                del self._series[key]
            for table in (self._prev_counts, self._derived_keys):
                for key in [key for key in table if matches(key)]:
                    del table[key]
        return len(doomed)

    # -- access -----------------------------------------------------------

    def series(self, key: str) -> TimeSeries | None:
        with self._lock:
            return self._series.get(key)

    def series_keys(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def latest(self, key: str) -> float | None:
        series = self.series(key)
        if series is None:
            return None
        point = series.latest()
        return point[1] if point is not None else None

    def rate(self, metric: str, label: str = "_total") -> TimeSeries | None:
        """The derived per-second rate series of a counter."""
        return self.series(f"{metric}|{label}|rate")

    def delta(self, metric: str, label: str = "_total") -> TimeSeries | None:
        """The derived per-interval increase series of a counter."""
        return self.series(f"{metric}|{label}|delta")

    # -- export -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Stable JSON-ready dump of every retained series.

        Shape (schema ``repro.timeseries/1``)::

            {"schema": "repro.timeseries/1",
             "samples": <samples taken>,
             "capacity": <ring capacity>,
             "series": {key: {"points": [[t, v], ...], "dropped": n}}}
        """
        with self._lock:
            return {
                "schema": TIMESERIES_SCHEMA,
                "samples": self.samples_taken,
                "capacity": self.capacity,
                "series": {
                    key: {
                        "points": [[round(t, 6), value]
                                   for t, value in series.points()],
                        "dropped": series.dropped,
                    }
                    for key, series in sorted(self._series.items())
                },
            }

    def prometheus_text(self) -> str:
        """Prometheus text exposition of the latest sample of every series.

        Counters expose ``name_total``; derived delta/rate series and span
        rollups expose gauges.  Metric names are sanitized to the
        ``[a-zA-Z_:][a-zA-Z0-9_:]*`` charset; labels ride in ``{label="..."}``.
        """
        # family name -> (kind, [(label, value), ...]); families are emitted
        # contiguously under one # TYPE line, as the exposition format
        # requires.
        families: dict[str, tuple[str, list[tuple[str, float]]]] = {}
        with self._lock:
            for key in sorted(self._series):
                point = self._series[key].latest()
                if point is None:
                    continue
                parts = key.split("|")
                metric, qualifiers = parts[0], parts[1:]
                kind = self._kinds.get(metric)
                label = qualifiers[0] if qualifiers else "_total"
                suffix = "_" + "_".join(qualifiers[1:]) if len(qualifiers) > 1 \
                    else ""
                if kind == "counter" and not suffix:
                    prom_name = _prom_name(metric) + "_total"
                    prom_kind = "counter"
                else:
                    prom_name = _prom_name(metric + suffix)
                    prom_kind = "gauge"
                family = families.setdefault(prom_name, (prom_kind, []))
                family[1].append((label, point[1]))
        lines: list[str] = []
        for prom_name in sorted(families):
            prom_kind, samples = families[prom_name]
            lines.append(f"# TYPE {prom_name} {prom_kind}")
            for label, value in samples:
                rendered = repr(value) if value != int(value) else int(value)
                if label == "_total":
                    lines.append(f"{prom_name} {rendered}")
                else:
                    escaped = label.replace("\\", "\\\\").replace('"', '\\"')
                    lines.append(
                        f'{prom_name}{{label="{escaped}"}} {rendered}'
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:
        return (f"MetricsRecorder({len(self._series)} series, "
                f"{self.samples_taken} samples)")


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric/series key into a Prometheus metric name."""
    safe = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return safe or "_"


def _span_rollup(tracer: Tracer) -> dict[str, dict[str, float]]:
    """Span name → {count, total_ms} for a tracer's completed spans."""
    rollup: dict[str, dict[str, float]] = {}
    for span in tracer.finished():
        entry = rollup.setdefault(span.name, {"count": 0, "total_ms": 0.0})
        entry["count"] += 1
        entry["total_ms"] += span.duration_ms
    return rollup


def validate_timeseries(obj: Any) -> dict[str, Any]:
    """Check a :meth:`MetricsRecorder.snapshot` payload; returns it."""
    if not isinstance(obj, dict):
        raise ObservabilityError("timeseries snapshot must be an object")
    if obj.get("schema") != TIMESERIES_SCHEMA:
        raise ObservabilityError(
            f"timeseries schema must be {TIMESERIES_SCHEMA!r}, "
            f"got {obj.get('schema')!r}"
        )
    series = obj.get("series")
    if not isinstance(series, dict):
        raise ObservabilityError("timeseries snapshot needs a 'series' object")
    for key, entry in series.items():
        points = entry.get("points") if isinstance(entry, dict) else None
        if not isinstance(points, list):
            raise ObservabilityError(f"series {key!r} needs a 'points' list")
        for point in points:
            if (not isinstance(point, list) or len(point) != 2
                    or not all(isinstance(x, (int, float)) for x in point)):
                raise ObservabilityError(
                    f"series {key!r} points must be [t, value] pairs"
                )
    return obj
