"""Metrics: counters, gauges, fixed-bucket histograms with label attribution.

One :class:`MetricsRegistry` holds every metric for a scope (an engine, a
render, a benchmark run).  Each metric is identified by a dotted name and a
kind; re-requesting a name with a different kind is a hard error — that is
the conflict CI guards against — and the process-wide declaration table
(:func:`declare` / :func:`check_declarations`) catches the same clash across
modules that never share a registry.

Attribution is by label: every ``inc``/``set``/``observe`` takes an optional
hashable label (box id, plan node id, viewer pass name), so one metric holds
the whole per-box/per-node breakdown — this is the model that supersedes the
scattered ad-hoc counter dicts.  The per-label dicts are exposed directly
(``Counter.values``), which lets :class:`~repro.dataflow.engine.EngineStats`
stay a thin, dict-compatible view with zero copying.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Hashable, Iterable

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "declare",
    "declarations",
    "check_declarations",
    "global_registry",
]


class _Metric:
    kind = "metric"

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        # Updates must be lock-protected: parallel morsel workers increment
        # counters concurrently, and ``dict.get`` + assignment is not atomic.
        self._update_lock = threading.Lock()

    def reset(self) -> None:
        raise NotImplementedError

    def remove_label(self, label: Hashable) -> bool:
        """Forget one label's series; returns whether anything was removed.

        The cure for per-session label cardinality: a server that labels
        ``inc(label=sid)`` prunes the session's series when it dies, so
        exposition output stops growing without bound.  Counters and
        histograms *fold* the removed series into the unlabeled aggregate
        (``None``) rather than discarding it — totals stay monotone, so
        rate/delta consumers (:class:`~repro.obs.timeseries.MetricsRecorder`)
        never see a counter go backwards.  Gauges are last-write-wins and
        simply drop the series.
        """
        raise NotImplementedError

    def snapshot(self) -> dict[str, Any]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


def _label_key(label: Hashable | None) -> str:
    """Stable JSON-safe rendering of a label for snapshots."""
    if label is None:
        return "_total"
    return str(label)


class Counter(_Metric):
    """A monotonically increasing count, broken down by label."""

    kind = "counter"

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description)
        #: label -> count; exposed raw so views (EngineStats) share storage.
        self.values: dict[Hashable, int | float] = {}

    def inc(self, amount: int | float = 1, label: Hashable = None) -> None:
        with self._update_lock:
            self.values[label] = self.values.get(label, 0) + amount

    def value(self, label: Hashable = None) -> int | float:
        return self.values.get(label, 0)

    def total(self) -> int | float:
        return sum(self.values.values())

    def reset(self) -> None:
        with self._update_lock:
            self.values.clear()

    def remove_label(self, label: Hashable) -> bool:
        with self._update_lock:
            removed = self.values.pop(label, None)
            if removed is None:
                return False
            if label is not None:
                # Fold into the aggregate so total() never regresses.
                self.values[None] = self.values.get(None, 0) + removed
            return True

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "total": self.total(),
            "by_label": {
                _label_key(label): value
                for label, value in sorted(
                    self.values.items(), key=lambda kv: _label_key(kv[0])
                )
            },
        }


class Gauge(_Metric):
    """A last-write-wins value per label (buffer sizes, cache entries)."""

    kind = "gauge"

    def __init__(self, name: str, description: str = ""):
        super().__init__(name, description)
        self.values: dict[Hashable, float] = {}

    def set(self, value: float, label: Hashable = None) -> None:
        with self._update_lock:
            self.values[label] = value

    def value(self, label: Hashable = None) -> float:
        return self.values.get(label, 0.0)

    def reset(self) -> None:
        with self._update_lock:
            self.values.clear()

    def remove_label(self, label: Hashable) -> bool:
        with self._update_lock:
            return self.values.pop(label, None) is not None

    def snapshot(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "by_label": {
                _label_key(label): value
                for label, value in sorted(
                    self.values.items(), key=lambda kv: _label_key(kv[0])
                )
            },
        }


class Histogram(_Metric):
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``buckets`` are the finite upper bounds; an implicit +inf bucket catches
    the rest.  Per label it tracks bucket counts plus count/sum/min/max, so
    snapshots can report means without storing observations.
    """

    kind = "histogram"

    DEFAULT_BUCKETS = (0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0)

    def __init__(self, name: str, description: str = "",
                 buckets: Iterable[float] | None = None):
        super().__init__(name, description)
        bounds = tuple(sorted(buckets if buckets is not None
                              else self.DEFAULT_BUCKETS))
        if not bounds:
            raise ObservabilityError(
                f"histogram {name!r} needs at least one bucket bound"
            )
        self.bounds = bounds
        # label -> [bucket counts..., overflow]
        self._counts: dict[Hashable, list[int]] = {}
        self._stats: dict[Hashable, list[float]] = {}  # count, sum, min, max

    def observe(self, value: float, label: Hashable = None) -> None:
        with self._update_lock:
            counts = self._counts.get(label)
            if counts is None:
                counts = self._counts[label] = [0] * (len(self.bounds) + 1)
                self._stats[label] = [0, 0.0, value, value]
            # Inclusive upper bounds: an observation equal to a bound counts
            # in that bound's bucket.
            counts[bisect_left(self.bounds, value)] += 1
            stats = self._stats[label]
            stats[0] += 1
            stats[1] += value
            if value < stats[2]:
                stats[2] = value
            if value > stats[3]:
                stats[3] = value

    def count(self, label: Hashable = None) -> int:
        stats = self._stats.get(label)
        return int(stats[0]) if stats else 0

    def mean(self, label: Hashable = None) -> float:
        stats = self._stats.get(label)
        if not stats or not stats[0]:
            raise ObservabilityError(
                f"histogram {self.name!r} has no observations for {label!r}"
            )
        return stats[1] / stats[0]

    def reset(self) -> None:
        with self._update_lock:
            self._counts.clear()
            self._stats.clear()

    def remove_label(self, label: Hashable) -> bool:
        with self._update_lock:
            counts = self._counts.pop(label, None)
            stats = self._stats.pop(label, None)
            if counts is None:
                return False
            if label is not None and stats is not None:
                # Fold bucket counts and count/sum/min/max into the
                # aggregate series so distribution totals stay monotone.
                base = self._counts.get(None)
                if base is None:
                    self._counts[None] = list(counts)
                    self._stats[None] = list(stats)
                else:
                    for i, c in enumerate(counts):
                        base[i] += c
                    base_stats = self._stats[None]
                    base_stats[0] += stats[0]
                    base_stats[1] += stats[1]
                    base_stats[2] = min(base_stats[2], stats[2])
                    base_stats[3] = max(base_stats[3], stats[3])
            return True

    def snapshot(self) -> dict[str, Any]:
        by_label: dict[str, Any] = {}
        for label in sorted(self._counts, key=_label_key):
            count, total, low, high = self._stats[label]
            by_label[_label_key(label)] = {
                "count": int(count),
                "sum": total,
                "min": low,
                "max": high,
                "buckets": dict(
                    zip([str(b) for b in self.bounds] + ["+inf"],
                        self._counts[label])
                ),
            }
        return {"kind": self.kind, "bounds": list(self.bounds),
                "by_label": by_label}


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create metric store for one scope.

    ``counter``/``gauge``/``histogram`` are idempotent for a matching kind
    and raise :class:`ObservabilityError` on a kind conflict.  The snapshot
    is a stable, sorted, JSON-ready dict — the machine-readable run summary.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, description: str, **kwargs) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ObservabilityError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, cannot re-register as "
                        f"{cls.kind}"
                    )
                return existing
            declare(name, cls.kind)
            metric = cls(name, description, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get(Gauge, name, description)

    def histogram(self, name: str, description: str = "",
                  buckets: Iterable[float] | None = None) -> Histogram:
        return self._get(Histogram, name, description, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every metric, keeping registrations."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()

    def prune_label(self, label: Hashable) -> int:
        """Remove ``label``'s series from every metric; returns how many
        metrics held it.

        The registry-wide half of the session-cardinality fix: dropping a
        server session prunes its ``server.commands{label=sid}``-style
        series in one call instead of leaking one family row per session
        ever hosted.
        """
        with self._lock:
            metrics = list(self._metrics.values())
        return sum(1 for metric in metrics if metric.remove_label(label))

    def snapshot(self) -> dict[str, Any]:
        """Stable machine-readable dump: {name: {kind, ...}} sorted by name."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


# ---------------------------------------------------------------------------
# Process-wide declaration table (cross-registry conflict detection)
# ---------------------------------------------------------------------------

_DECLARED: dict[str, str] = {}
_DECLARED_LOCK = threading.Lock()


def declare(name: str, kind: str) -> None:
    """Record that ``name`` is a metric of ``kind`` anywhere in the process.

    Raises :class:`ObservabilityError` when the same name was previously
    declared with a different kind — even by a different registry.  This is
    the invariant the CI telemetry job enforces.
    """
    if kind not in _KINDS:
        raise ObservabilityError(
            f"unknown metric kind {kind!r}; known: {', '.join(sorted(_KINDS))}"
        )
    with _DECLARED_LOCK:
        existing = _DECLARED.get(name)
        if existing is not None and existing != kind:
            raise ObservabilityError(
                f"metric {name!r} declared as both {existing!r} and {kind!r}"
            )
        _DECLARED[name] = kind


def declarations() -> dict[str, str]:
    """A copy of the process-wide name → kind declaration table."""
    with _DECLARED_LOCK:
        return dict(_DECLARED)


def check_declarations() -> list[str]:
    """Re-validate the declaration table; returns sorted metric names.

    The table cannot hold a conflict (``declare`` raises on insert), so a
    clean return means every metric name observed by this process so far has
    exactly one kind.
    """
    with _DECLARED_LOCK:
        return sorted(_DECLARED)


_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The default process-wide registry (render/scene counters land here)."""
    return _GLOBAL_REGISTRY
