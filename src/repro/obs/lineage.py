"""Backward lineage capture and the "why this pixel" provenance walk.

Direct manipulation needs an inverse: the renderer maps database tuples to
marks, and a user pointing at a mark is asking which tuples produced it
(Psallidas & Wu, "Provenance for Interactive Visualizations").  This module
supplies that inverse in two halves:

* **Capture.**  While a capture is active (``Engine(lineage=True)``,
  ``REPRO_LINEAGE=1``, or the :func:`lineage_capture` context manager),
  identity-*breaking* physical operators — Project, Rename, GroupBy, the
  joins, Union, and their columnar kernels — record output-tuple →
  input-tuple mappings into a compact per-node :class:`LineageStore`.
  Identity-*preserving* operators (Restrict, Sample, Limit, OrderBy,
  Distinct, the columnar take/take_mask/slice kernels) record nothing:
  their output rows *are* their input rows, so the walk passes straight
  through them.  Stores are ring-capped per node; evictions are tallied in
  the ``lineage.dropped`` counter.  With no capture active the per-operator
  cost is a single module-global read per plan execution — the disabled
  overhead budget (<5% of a render) is enforced by
  ``tests/test_obs_lineage.py``.

* **Walk.**  :func:`why` picks the mark under a pixel
  (:meth:`Viewer.pick`), finds the displayable relation behind it, and
  walks the recorded mappings down the relation's plan to the named
  base-table rows, returning a structured ``repro.lineage/1`` document
  with the per-operator path.  When the plan ran without capture, the walk
  transparently *replays* it under a scoped capture — memoization
  boundaries (:class:`~repro.dbms.plan.CacheNode`) stream their stable
  buffers and Samples are seeded on every cacheable plan, so the replay
  reproduces the original rows and the fresh mappings apply.

Spans ``lineage.capture`` / ``lineage.walk`` and counters
``lineage.mappings`` / ``lineage.walks`` / ``lineage.dropped`` integrate
with the existing registry; see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.metrics import global_registry
from repro.obs.trace import current_tracer

__all__ = [
    "LINEAGE_SCHEMA",
    "LineageConfig",
    "LineageStore",
    "lineage_config_from_env",
    "default_lineage_config",
    "set_default_lineage_config",
    "resolve_lineage_config",
    "install_from_env",
    "lineage_capture",
    "active_lineage",
    "why",
    "render_why",
    "MAPPINGS_COUNTER",
    "DROPPED_COUNTER",
    "WALKS_COUNTER",
]

LINEAGE_SCHEMA = "repro.lineage/1"
"""Schema tag of the document :func:`why` returns (docs/OBSERVABILITY.md)."""

DEFAULT_MAX_MAPPINGS = 1_000_000
"""Per-node ring capacity: a store holding this many mappings evicts its
oldest entry for each new one (counted in ``lineage.dropped``)."""

#: Counter declaration tuples, importable by ``repro stats`` so cold JSON
#: output pre-registers the lineage counters (the PROOFS_COUNTER pattern).
MAPPINGS_COUNTER = (
    "lineage.mappings", "lineage mappings recorded by plan operators")
DROPPED_COUNTER = (
    "lineage.dropped", "lineage mappings evicted by the per-node ring cap")
WALKS_COUNTER = ("lineage.walks", "why-provenance walks performed")


class LineageConfig:
    """Knobs for lineage capture (mirrors ``ColumnarConfig``)."""

    __slots__ = ("max_mappings",)

    def __init__(self, max_mappings: int = DEFAULT_MAX_MAPPINGS):
        self.max_mappings = max(1, int(max_mappings))

    def __repr__(self) -> str:
        return f"LineageConfig(max_mappings={self.max_mappings})"


def lineage_config_from_env(environ=None) -> LineageConfig | None:
    """Read ``REPRO_LINEAGE`` / ``REPRO_LINEAGE_MAX``.

    Unset, empty, or ``0`` means off (``None``); anything else enables
    capture with the (optionally overridden) per-node ring capacity.
    """
    env = os.environ if environ is None else environ
    raw = env.get("REPRO_LINEAGE", "")
    if raw in ("", "0"):
        return None
    try:
        max_mappings = int(
            env.get("REPRO_LINEAGE_MAX", str(DEFAULT_MAX_MAPPINGS)))
    except ValueError:
        max_mappings = DEFAULT_MAX_MAPPINGS
    return LineageConfig(max_mappings=max_mappings)


_DEFAULT_CONFIG: LineageConfig | None = None


def default_lineage_config() -> LineageConfig | None:
    """The process-wide lineage config (``None`` = capture off)."""
    return _DEFAULT_CONFIG


def set_default_lineage_config(
        config: LineageConfig | None) -> LineageConfig | None:
    """Install a process default; returns the previous one (for restore)."""
    global _DEFAULT_CONFIG
    previous = _DEFAULT_CONFIG
    _DEFAULT_CONFIG = config
    return previous


def resolve_lineage_config(lineage=None) -> LineageConfig | None:
    """Resolve the ``Engine(lineage=...)`` knob against the process default.

    ``None`` inherits the default; ``False`` forces capture off; ``True``
    enables capture (reusing the default's cap when one is installed); a
    :class:`LineageConfig` passes through.
    """
    if lineage is None:
        return default_lineage_config()
    if isinstance(lineage, LineageConfig):
        return lineage
    if lineage:
        return default_lineage_config() or LineageConfig()
    return None


class _CaptureState:
    """One active capture: a config plus recording tallies.

    Tallies are plain ints bumped without a lock — morsel workers may race
    on them, which can undercount a metric but never corrupt a store (each
    morsel's rebuilt nodes own private stores, merged on the main thread).
    """

    __slots__ = ("config", "recorded", "dropped")

    def __init__(self, config: LineageConfig):
        self.config = config
        self.recorded = 0
        self.dropped = 0

    def publish(self) -> None:
        """Flush the tallies into the registry counters (capture exit)."""
        registry = global_registry()
        if self.recorded:
            registry.counter(*MAPPINGS_COUNTER).inc(self.recorded)
        if self.dropped:
            registry.counter(*DROPPED_COUNTER).inc(self.dropped)
        self.recorded = 0
        self.dropped = 0


#: The active capture, or None.  A single global read is the entire
#: disabled-path cost (the tracer's ``enabled`` pattern).
_ACTIVE: _CaptureState | None = None


def active_lineage() -> _CaptureState | None:
    """The active capture state, if any (hot-path check for operators)."""
    return _ACTIVE


def install_from_env() -> bool:
    """Adopt ``REPRO_LINEAGE`` as a process-wide always-on capture."""
    global _ACTIVE
    config = lineage_config_from_env()
    if config is None:
        return False
    set_default_lineage_config(config)
    _ACTIVE = _CaptureState(config)
    return True


@contextmanager
def lineage_capture(config: LineageConfig | bool | None = True):
    """Activate lineage capture for the duration of the block.

    Plans executed inside record per-node mappings; the capture's tallies
    are flushed to the ``lineage.*`` counters at exit.  Yields the capture
    state (or None when the resolved config disables capture).
    """
    global _ACTIVE
    resolved = resolve_lineage_config(config)
    if resolved is None:
        yield None
        return
    state = _CaptureState(resolved)
    previous = _ACTIVE
    _ACTIVE = state
    tracer = current_tracer()
    span = None
    if tracer.enabled:
        span = tracer.span("lineage.capture",
                           max_mappings=resolved.max_mappings)
        span.__enter__()
    try:
        yield state
    finally:
        _ACTIVE = previous
        if span is not None:
            span.set(mappings=state.recorded, dropped=state.dropped)
            span.__exit__(None, None, None)
        state.publish()


class LineageStore:
    """Per-operator backward mappings: output tuple → input tuple(s).

    Keys are output-tuple *identities* (``id``); entries pin the output
    object strongly so an id can never be reused while its mapping lives.
    The store is a FIFO ring of at most ``config.max_mappings`` entries —
    recording past capacity evicts the oldest mapping and counts it in the
    capture's ``dropped`` tally.  ``tag`` carries operator-specific routing
    (Union stores the child index the row streamed from).
    """

    __slots__ = ("state", "_map")

    def __init__(self, state: _CaptureState):
        self.state = state
        # id(out) -> (out, inputs, tag); dicts preserve insertion order,
        # which is all the FIFO ring needs.
        self._map: dict[int, tuple[Any, tuple, Any]] = {}

    def __len__(self) -> int:
        return len(self._map)

    def record(self, out: Any, inputs: tuple, tag: Any = None) -> None:
        """Map one output tuple to the input tuple(s) that produced it."""
        state = self.state
        if len(self._map) >= state.config.max_mappings:
            self._map.pop(next(iter(self._map)))
            state.dropped += 1
        self._map[id(out)] = (out, inputs, tag)
        state.recorded += 1

    def lookup(self, row: Any) -> tuple[tuple, Any] | None:
        """The recorded ``(inputs, tag)`` for ``row``, matched by identity."""
        entry = self._map.get(id(row))
        if entry is None or entry[0] is not row:
            return None
        return entry[1], entry[2]

    def merge(self, other: "LineageStore") -> None:
        """Fold another store's mappings in (parallel morsel fold-back)."""
        self._map.update(other._map)


# ---------------------------------------------------------------------------
# The why-provenance walk
# ---------------------------------------------------------------------------


class _Incomplete(Exception):
    """The walk hit an operator with no recorded mapping for its row."""


def _has_unseeded_sample(node) -> bool:
    from repro.dbms.plan import CacheNode, SampleNode

    if isinstance(node, SampleNode) and node._seed is None:
        return True
    if isinstance(node, CacheNode):
        return _has_unseeded_sample(node._source.plan)
    return any(_has_unseeded_sample(child) for child in node.children)


class _Walker:
    """Walks one picked row backward through a plan's lineage stores."""

    def __init__(self) -> None:
        #: Base-table rows reached, deduplicated by tuple identity.
        self.rows: list[tuple[str | None, Any]] = []
        self._seen: set[int] = set()
        self.named_all = True
        self.replayed = False

    def _add_base(self, table: str | None, row) -> None:
        if id(row) in self._seen:
            return
        self._seen.add(id(row))
        self.rows.append((table, row))
        if table is None:
            self.named_all = False

    def walk_lazy(self, lazy, row) -> dict[str, Any]:
        """Walk a row of a LazyRowSet; replays under capture if needed."""
        try:
            return self.walk(lazy.plan, row)
        except _Incomplete:
            if _has_unseeded_sample(lazy.plan):
                raise
            # Replay: re-execute the same plan nodes under a scoped
            # capture.  Cache leaves stream their stable buffers and every
            # Sample is seeded, so the replay emits the same row sequence;
            # the picked row's position identifies its fresh twin.
            index = None
            for pos, buffered in enumerate(lazy.force()):
                if buffered is row:
                    index = pos
                    break
            if index is None:
                raise
            with lineage_capture(True):
                replayed = list(lazy.plan.rows_iter())
            if index >= len(replayed):
                raise
            self.replayed = True
            return self.walk(lazy.plan, replayed[index])

    def walk(self, node, row) -> dict[str, Any]:
        from repro.dbms import plan as P
        from repro.dbms import plan_parallel as PP

        path: dict[str, Any] = {"op": node.label, "detail": node.describe()}

        if isinstance(node, P.ScanNode):
            self._add_base(node._name, row)
            path["table"] = node._name
            return path

        if isinstance(node, P.CacheNode):
            path["children"] = [self.walk_lazy(node._source, row)]
            return path

        # Identity-preserving operators: the output row IS an input row.
        if isinstance(node, (
            P.RestrictNode, P.SampleNode, P.LimitNode, P.OrderByNode,
            P.DistinctNode, P.ToColumnsNode, P.ToRowsNode,
            P.ColumnarRestrictNode, P.ColumnarLimitNode,
            P.ColumnarDistinctNode, P.ColumnarOrderByNode,
            PP.ParallelMapNode,
        )):
            path["children"] = [self.walk(node.children[0], row)]
            return path

        if isinstance(node, P.UnionNode):
            store = node.lineage
            entry = store.lookup(row) if store is not None else None
            if entry is None:
                raise _Incomplete(node.describe())
            inputs, tag = entry
            path["children"] = [self.walk(node.children[tag], inputs[0])]
            return path

        if isinstance(node, (
            P.ProjectNode, P.RenameNode, P.GroupByNode,
            P.ColumnarProjectNode, P.ColumnarRenameNode,
            P.ColumnarGroupByNode,
        )):
            store = node.lineage
            entry = store.lookup(row) if store is not None else None
            if entry is None:
                raise _Incomplete(node.describe())
            inputs, __ = entry
            path["children"] = [
                self.walk(node.children[0], source) for source in inputs
            ]
            return path

        if isinstance(node, (
            P.HashJoinNode, P.NestedLoopJoinNode, P.ThetaJoinNode,
            P.CrossProductNode, P.ColumnarHashJoinNode,
        )):
            store = node.lineage
            entry = store.lookup(row) if store is not None else None
            if entry is None:
                raise _Incomplete(node.describe())
            (lrow, rrow), __ = entry
            path["children"] = [
                self.walk(node.children[0], lrow),
                self.walk(node.children[1], rrow),
            ]
            return path

        # Unknown operator: no identity guarantee, no recorded mapping.
        raise _Incomplete(node.describe())


def _find_relation(displayable, name: str):
    """Locate a DisplayableRelation by name inside a displayable value."""
    from repro.display.displayable import (
        Composite, DisplayableRelation, Group)

    if isinstance(displayable, DisplayableRelation):
        return displayable if displayable.name == name else None
    if isinstance(displayable, Composite):
        for entry in displayable.entries:
            if entry.relation.name == name:
                return entry.relation
        return None
    if isinstance(displayable, Group):
        for __, member in displayable.members:
            found = _find_relation(member, name)
            if found is not None:
                return found
    return None


def _row_doc(table: str | None, row) -> dict[str, Any]:
    return {
        "table": table,
        "values": dict(zip(row.schema.names, row.values)),
    }


def why(viewer, px: float, py: float) -> dict[str, Any]:
    """Pick the mark at ``(px, py)`` and trace it to base-table rows.

    ``viewer`` is a :class:`~repro.viewer.viewer.Viewer` or anything
    carrying one as a ``.viewer`` attribute (a ``CanvasWindow``).  Returns
    a ``repro.lineage/1`` document; ``picked`` is False when no mark is
    under the pixel, ``complete`` is True when every reached leaf is a
    named base table and every mapping on the path was resolved.
    """
    from repro.dbms.plan import LazyRowSet

    viewer = getattr(viewer, "viewer", viewer)
    global_registry().counter(*WALKS_COUNTER).inc()
    tracer = current_tracer()
    with tracer.span("lineage.walk", canvas=viewer.name, px=px, py=py) as span:
        doc: dict[str, Any] = {
            "schema": LINEAGE_SCHEMA,
            "canvas": viewer.name,
            "pixel": [float(px), float(py)],
            "picked": False,
            "mark": None,
            "path": None,
            "rows": [],
            "complete": False,
            "replayed": False,
        }
        item = viewer.pick(px, py)
        if item is None:
            span.set(picked=False)
            return doc
        doc["picked"] = True
        doc["mark"] = {
            "relation": item.relation_name,
            "source_table": item.source_table,
            "kind": item.drawable_kind,
            "tuple_index": item.tuple_index,
        }
        relation = _find_relation(viewer.displayable(), item.relation_name)
        rows = relation.rows if relation is not None else None

        if not isinstance(rows, LazyRowSet):
            # Materialized relation: the mark's tuple is the base row.
            doc["path"] = {
                "op": "Scan",
                "detail": f"Scan[{item.source_table}]"
                if item.source_table else "Scan",
                "table": item.source_table,
            }
            doc["rows"] = [_row_doc(item.source_table, item.row)]
            doc["complete"] = item.source_table is not None
            span.set(picked=True, rows=1, complete=doc["complete"])
            return doc

        walker = _Walker()
        try:
            doc["path"] = walker.walk_lazy(rows, item.row)
        except _Incomplete as exc:
            doc["incomplete_at"] = str(exc)
            span.set(picked=True, rows=0, complete=False)
            return doc
        doc["rows"] = [_row_doc(table, row) for table, row in walker.rows]
        doc["replayed"] = walker.replayed
        doc["complete"] = walker.named_all and bool(walker.rows)
        span.set(picked=True, rows=len(doc["rows"]),
                 complete=doc["complete"], replayed=walker.replayed)
        return doc


def render_why(doc: dict[str, Any]) -> str:
    """Human-readable tree form of a ``repro.lineage/1`` document."""
    lines: list[str] = []
    px, py = doc.get("pixel", (0, 0))
    if not doc.get("picked"):
        lines.append(f"no mark at ({px:g}, {py:g}) on {doc.get('canvas')}")
        return "\n".join(lines)
    mark = doc.get("mark") or {}
    lines.append(
        f"mark at ({px:g}, {py:g}) on {doc.get('canvas')}: "
        f"{mark.get('kind')} from relation {mark.get('relation')!r} "
        f"(tuple #{mark.get('tuple_index')})"
    )

    def walk(node: dict[str, Any], prefix: str, tail: str) -> None:
        line = tail + node.get("detail", node.get("op", "?"))
        if node.get("table") is not None:
            line += f"  <- table {node['table']!r}"
        lines.append(line)
        kids = node.get("children") or []
        for pos, child in enumerate(kids):
            last = pos == len(kids) - 1
            walk(child,
                 prefix + ("   " if last else "│  "),
                 prefix + ("└─ " if last else "├─ "))

    path = doc.get("path")
    if path is not None:
        walk(path, "", "")
    if doc.get("incomplete_at"):
        lines.append(f"! lineage incomplete at {doc['incomplete_at']}")
    rows = doc.get("rows", [])
    lines.append(f"{len(rows)} base row(s)"
                 + (" [replayed]" if doc.get("replayed") else ""))
    for entry in rows:
        values = ", ".join(
            f"{name}={value!r}" for name, value in entry["values"].items())
        lines.append(f"  {entry['table'] or '<unnamed>'}: {values}")
    if not doc.get("complete"):
        lines.append("(provenance incomplete)")
    return "\n".join(lines)
