"""Bench regression diffing: compare two ``BENCH_*.json`` files.

The benchmark suite writes two artifact kinds — ``BENCH_obs.json``
(``repro.bench/1``: per-test pytest-benchmark timings + span rollups) and
``BENCH_parallel.json`` (``repro.bench.parallel/1``: timing arms per worker
count + speedups).  :func:`diff_bench` routes on the payload's own schema
tag and compares the metrics that matter for each:

* ``repro.bench.parallel/1`` — every arm's ``seconds`` (wall time, higher
  is worse) and the headline ``speedup`` (higher is better).
* ``repro.bench/1`` — every benchmark's ``timing.mean_s``.

A comparison regresses when it moves past its metric's threshold (default
25%, :data:`DEFAULT_THRESHOLDS`); wall times under ``min_seconds`` are
skipped as noise (micro-benchmarks jitter far more than 25% between runs).
The CLI front-end is ``repro bench-diff`` — the CI observability job runs
it against the committed ``benchmarks/baselines/`` snapshots, which is the
gate that keeps the recorded 5–7x parallel speedups from silently
regressing.  See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ObservabilityError
from repro.obs.export import (
    BENCH_SCHEMA,
    COLUMNAR_BENCH_SCHEMA,
    PARALLEL_BENCH_SCHEMA,
    SERVER_BENCH_SCHEMA,
)

__all__ = [
    "diff_bench",
    "diff_bench_files",
    "render_diff",
    "DIFF_SCHEMA",
    "DEFAULT_THRESHOLDS",
]

DIFF_SCHEMA = "repro.benchdiff/1"
"""Schema tag stamped into :func:`diff_bench` reports."""

DEFAULT_THRESHOLDS = {
    "seconds": 0.25,
    "mean_s": 0.25,
    "speedup": 0.25,
    "p50_s": 0.5,
    "p99_s": 0.5,
    "throughput_cps": 0.5,
}
"""Per-metric relative-change thresholds beyond which a change is a
regression (and, symmetrically, an improvement)."""

#: Wall-clock floor: timings where both sides are under this many seconds
#: are compared informationally but never flagged — micro-timings jitter.
DEFAULT_MIN_SECONDS = 0.005

#: Metrics where *higher* is better (everything else: lower is better).
_HIGHER_IS_BETTER = {"speedup", "throughput_cps"}


def _by_name(payload: dict[str, Any]) -> dict[str, dict[str, Any]]:
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise ObservabilityError("bench payload needs a 'benchmarks' list")
    return {entry["name"]: entry for entry in benchmarks
            if isinstance(entry, dict) and "name" in entry}


def _compare(name: str, metric: str, base: float, curr: float,
             threshold: float, flaggable: bool) -> dict[str, Any]:
    ratio = curr / base if base else (1.0 if not curr else float("inf"))
    status = "ok"
    if flaggable:
        if metric in _HIGHER_IS_BETTER:
            if curr < base * (1.0 - threshold):
                status = "regression"
            elif curr > base * (1.0 + threshold):
                status = "improvement"
        else:
            if curr > base * (1.0 + threshold):
                status = "regression"
            elif curr < base * (1.0 - threshold):
                status = "improvement"
    return {
        "name": name,
        "metric": metric,
        "baseline": base,
        "current": curr,
        "ratio": round(ratio, 4),
        "threshold": threshold,
        "status": status,
    }


def _parallel_rows(name: str, base: dict, curr: dict, thresholds: dict,
                   min_seconds: float) -> list[dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    base_arms = base.get("arms") or {}
    curr_arms = curr.get("arms") or {}
    for arm_name in sorted(set(base_arms) & set(curr_arms)):
        base_s = base_arms[arm_name].get("seconds")
        curr_s = curr_arms[arm_name].get("seconds")
        if not isinstance(base_s, (int, float)) or \
                not isinstance(curr_s, (int, float)):
            continue
        flaggable = max(base_s, curr_s) >= min_seconds
        rows.append(_compare(f"{name}[{arm_name}]", "seconds",
                             float(base_s), float(curr_s),
                             thresholds["seconds"], flaggable))
    base_speedup = base.get("speedup")
    curr_speedup = curr.get("speedup")
    if isinstance(base_speedup, (int, float)) and \
            isinstance(curr_speedup, (int, float)):
        rows.append(_compare(name, "speedup", float(base_speedup),
                             float(curr_speedup), thresholds["speedup"],
                             True))
    return rows


def _server_rows(name: str, base: dict, curr: dict, thresholds: dict,
                 min_seconds: float) -> list[dict[str, Any]]:
    rows: list[dict[str, Any]] = []
    base_latency = base.get("latency") or {}
    curr_latency = curr.get("latency") or {}
    for quantile in ("p50_s", "p99_s"):
        base_q = base_latency.get(quantile)
        curr_q = curr_latency.get(quantile)
        if not isinstance(base_q, (int, float)) or \
                not isinstance(curr_q, (int, float)):
            continue
        flaggable = max(base_q, curr_q) >= min_seconds
        rows.append(_compare(name, quantile, float(base_q), float(curr_q),
                             thresholds[quantile], flaggable))
    base_tp = base.get("throughput_cps")
    curr_tp = curr.get("throughput_cps")
    if isinstance(base_tp, (int, float)) and isinstance(curr_tp, (int, float)):
        rows.append(_compare(name, "throughput_cps", float(base_tp),
                             float(curr_tp), thresholds["throughput_cps"],
                             True))
    return rows


def _obs_rows(name: str, base: dict, curr: dict, thresholds: dict,
              min_seconds: float) -> list[dict[str, Any]]:
    base_timing = base.get("timing") or {}
    curr_timing = curr.get("timing") or {}
    base_mean = base_timing.get("mean_s")
    curr_mean = curr_timing.get("mean_s")
    if not isinstance(base_mean, (int, float)) or \
            not isinstance(curr_mean, (int, float)):
        return []
    flaggable = max(base_mean, curr_mean) >= min_seconds
    return [_compare(name, "mean_s", float(base_mean), float(curr_mean),
                     thresholds["mean_s"], flaggable)]


def diff_bench(baseline: dict[str, Any], current: dict[str, Any],
               threshold: float | None = None,
               thresholds: dict[str, float] | None = None,
               min_seconds: float = DEFAULT_MIN_SECONDS) -> dict[str, Any]:
    """Compare two bench payloads of the same schema; returns a report.

    ``threshold`` overrides every per-metric threshold at once;
    ``thresholds`` overrides individual metrics on top of
    :data:`DEFAULT_THRESHOLDS`.  The report (schema ``repro.benchdiff/1``)
    carries every comparison plus the ``regressions`` subset, benchmarks
    ``missing`` from the current run, and newly ``added`` ones.
    """
    for side, payload in (("baseline", baseline), ("current", current)):
        if not isinstance(payload, dict) or "schema" not in payload:
            raise ObservabilityError(
                f"{side} bench payload must be an object with a 'schema' tag"
            )
    base_schema = baseline["schema"]
    if base_schema != current["schema"]:
        raise ObservabilityError(
            f"cannot diff schemas {base_schema!r} and "
            f"{current['schema']!r}; compare like with like"
        )
    if base_schema in (PARALLEL_BENCH_SCHEMA, COLUMNAR_BENCH_SCHEMA):
        # Columnar bench files share the arms-plus-speedup shape; the same
        # row comparison applies (arm seconds, headline speedup).
        row_fn = _parallel_rows
    elif base_schema == SERVER_BENCH_SCHEMA:
        row_fn = _server_rows
    elif base_schema == BENCH_SCHEMA:
        row_fn = _obs_rows
    else:
        raise ObservabilityError(
            f"unknown bench schema {base_schema!r}; known: "
            f"{BENCH_SCHEMA!r}, {PARALLEL_BENCH_SCHEMA!r}, "
            f"{COLUMNAR_BENCH_SCHEMA!r}, {SERVER_BENCH_SCHEMA!r}"
        )
    effective = dict(DEFAULT_THRESHOLDS)
    if threshold is not None:
        effective = {metric: threshold for metric in effective}
    if thresholds:
        effective.update(thresholds)

    base_by_name = _by_name(baseline)
    curr_by_name = _by_name(current)
    comparisons: list[dict[str, Any]] = []
    for name in sorted(set(base_by_name) & set(curr_by_name)):
        comparisons.extend(
            row_fn(name, base_by_name[name], curr_by_name[name],
                   effective, min_seconds)
        )
    regressions = [row for row in comparisons if row["status"] == "regression"]
    return {
        "schema": DIFF_SCHEMA,
        "bench_schema": base_schema,
        "thresholds": effective,
        "min_seconds": min_seconds,
        "comparisons": comparisons,
        "regressions": regressions,
        "improvements": [row for row in comparisons
                         if row["status"] == "improvement"],
        "missing": sorted(set(base_by_name) - set(curr_by_name)),
        "added": sorted(set(curr_by_name) - set(base_by_name)),
    }


def diff_bench_files(baseline_path: str | Path, current_path: str | Path,
                     **kwargs: Any) -> dict[str, Any]:
    """:func:`diff_bench` over two JSON files on disk."""
    baseline = json.loads(Path(baseline_path).read_text())
    current = json.loads(Path(current_path).read_text())
    return diff_bench(baseline, current, **kwargs)


def render_diff(report: dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`diff_bench` report."""
    lines = [f"bench diff ({report['bench_schema']}): "
             f"{len(report['comparisons'])} comparisons, "
             f"{len(report['regressions'])} regressions, "
             f"{len(report['improvements'])} improvements"]
    marks = {"regression": "✗", "improvement": "✓", "ok": " "}
    for row in report["comparisons"]:
        direction = ("higher-is-better" if row["metric"] in _HIGHER_IS_BETTER
                     else "")
        lines.append(
            f"  {marks[row['status']]} {row['name']:<44} {row['metric']:<8} "
            f"{row['baseline']:.6g} -> {row['current']:.6g} "
            f"(x{row['ratio']:.3g}) {direction}".rstrip()
        )
    for name in report["missing"]:
        lines.append(f"  ! missing from current run: {name}")
    for name in report["added"]:
        lines.append(f"  + new benchmark: {name}")
    return "\n".join(lines)
