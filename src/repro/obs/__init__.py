"""``repro.obs`` — the unified tracing & metrics subsystem.

Zero-dependency observability for the whole stack: nested spans
(:class:`Tracer`), labeled counters/gauges/histograms
(:class:`MetricsRegistry`), and exporters (Chrome ``trace_event`` JSON,
human-readable trees, machine-readable run summaries).  The span and metric
taxonomy the instrumented modules emit is documented in
``docs/OBSERVABILITY.md``.

Activation: tracing is off by default and costs one attribute read per hook
when off.  Turn it on for a region with :func:`tracing` /
:func:`push_tracer`, per render with ``Viewer.render(trace=...)``, per CLI
run with ``repro trace`` / ``--timing``, or process-wide with
``REPRO_TRACE=1``.
"""

from repro.errors import ObservabilityError
from repro.obs.export import (
    BENCH_SCHEMA,
    PARALLEL_BENCH_SCHEMA,
    chrome_trace,
    render_tree,
    run_summary,
    validate_bench_summary,
    validate_chrome_trace,
    validate_parallel_bench,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    check_declarations,
    declarations,
    declare,
    global_registry,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    TraceEvent,
    Tracer,
    current_tracer,
    install_from_env,
    push_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "BENCH_SCHEMA",
    "PARALLEL_BENCH_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "ObservabilityError",
    "Span",
    "TraceEvent",
    "Tracer",
    "check_declarations",
    "chrome_trace",
    "current_tracer",
    "declarations",
    "declare",
    "global_registry",
    "install_from_env",
    "push_tracer",
    "render_tree",
    "run_summary",
    "set_tracer",
    "tracing",
    "validate_bench_summary",
    "validate_parallel_bench",
    "validate_chrome_trace",
    "write_chrome_trace",
]
