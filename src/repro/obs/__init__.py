"""``repro.obs`` — the unified tracing & metrics subsystem.

Zero-dependency observability for the whole stack: nested spans
(:class:`Tracer`), labeled counters/gauges/histograms
(:class:`MetricsRegistry`), and exporters (Chrome ``trace_event`` JSON,
human-readable trees, machine-readable run summaries).  The span and metric
taxonomy the instrumented modules emit is documented in
``docs/OBSERVABILITY.md``.

Activation: tracing is off by default and costs one attribute read per hook
when off.  Turn it on for a region with :func:`tracing` /
:func:`push_tracer`, per render with ``Viewer.render(trace=...)``, per CLI
run with ``repro trace`` / ``--timing``, or process-wide with
``REPRO_TRACE=1``.
"""

from repro.errors import ObservabilityError
from repro.obs.benchdiff import (
    DIFF_SCHEMA,
    diff_bench,
    diff_bench_files,
    render_diff,
)
from repro.obs.export import (
    BENCH_SCHEMA,
    COLUMNAR_BENCH_SCHEMA,
    PARALLEL_BENCH_SCHEMA,
    SERVER_BENCH_SCHEMA,
    chrome_trace,
    empty_run_summary,
    render_tree,
    run_summary,
    validate_any_bench,
    validate_bench_summary,
    validate_chrome_trace,
    validate_columnar_bench,
    validate_parallel_bench,
    validate_server_bench,
    write_chrome_trace,
)
from repro.obs.flightrec import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    current_flight_recorder,
    install_flight_recorder,
    note_engine_error,
)
from repro.obs.lineage import (
    LINEAGE_SCHEMA,
    LineageConfig,
    LineageStore,
    active_lineage,
    default_lineage_config,
    lineage_capture,
    lineage_config_from_env,
    render_why,
    resolve_lineage_config,
    set_default_lineage_config,
    why,
)
from repro.obs.log import (
    ACCESS_LOGGER,
    JsonFormatter,
    configure_logging,
    get_logger,
)
from repro.obs.profiler import (
    PROFILE_SCHEMA,
    Profiler,
    ProfileSample,
)
from repro.obs.requests import (
    DEFAULT_SLO_MS,
    SLOWREQ_SCHEMA,
    RequestLog,
    RequestRecord,
)
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA,
    MetricsRecorder,
    TimeSeries,
    validate_timeseries,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    check_declarations,
    declarations,
    declare,
    global_registry,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    TraceContext,
    TraceEvent,
    Tracer,
    current_trace_context,
    current_tracer,
    install_from_env,
    push_tracer,
    set_tracer,
    thread_trace_contexts,
    tracing,
)

__all__ = [
    "ACCESS_LOGGER",
    "BENCH_SCHEMA",
    "COLUMNAR_BENCH_SCHEMA",
    "DEFAULT_SLO_MS",
    "DIFF_SCHEMA",
    "FLIGHT_SCHEMA",
    "LINEAGE_SCHEMA",
    "PARALLEL_BENCH_SCHEMA",
    "PROFILE_SCHEMA",
    "SERVER_BENCH_SCHEMA",
    "SLOWREQ_SCHEMA",
    "TIMESERIES_SCHEMA",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "LineageConfig",
    "LineageStore",
    "MetricsRecorder",
    "MetricsRegistry",
    "NULL_SPAN",
    "ObservabilityError",
    "ProfileSample",
    "Profiler",
    "RequestLog",
    "RequestRecord",
    "Span",
    "TimeSeries",
    "TraceContext",
    "TraceEvent",
    "Tracer",
    "active_lineage",
    "check_declarations",
    "chrome_trace",
    "configure_logging",
    "current_flight_recorder",
    "current_trace_context",
    "current_tracer",
    "declarations",
    "declare",
    "default_lineage_config",
    "diff_bench",
    "diff_bench_files",
    "empty_run_summary",
    "get_logger",
    "global_registry",
    "install_flight_recorder",
    "install_from_env",
    "lineage_capture",
    "lineage_config_from_env",
    "note_engine_error",
    "push_tracer",
    "render_diff",
    "render_tree",
    "render_why",
    "resolve_lineage_config",
    "run_summary",
    "set_default_lineage_config",
    "set_tracer",
    "thread_trace_contexts",
    "tracing",
    "why",
    "validate_any_bench",
    "validate_bench_summary",
    "validate_columnar_bench",
    "validate_parallel_bench",
    "validate_server_bench",
    "validate_chrome_trace",
    "validate_timeseries",
    "write_chrome_trace",
]
