"""Default displays (Section 5.2).

"To guarantee that boxes produce relations with initial valid displays,
Tioga-2 provides default location and display attributes.  There is a default
display for each atomic type.  The default display for a relation renders
each field in the tuple, side by side, using the default display for each
column type.  The default space has two dimensions: the x-location is 0 and
the y-location is the sequence number of the tuple."

This produces the familiar *terminal monitor* listing: one row of text per
tuple, fields side by side.  The default location is implemented in
:meth:`DisplayableRelation.location_of` (x=0, y=``tioga_seq``); this module
builds the default drawable list for one tuple and wraps tables/row sets into
default displayables for Add Table.
"""

from __future__ import annotations

from repro.dbms import types as T
from repro.dbms.relation import RowSet, Table, VirtualRow
from repro.dbms.tuples import Schema
from repro.display.displayable import DisplayableRelation
from repro.display.drawables import Drawable, Text

__all__ = ["default_field_texts", "default_display_list", "default_displayable"]

_COLUMN_WIDTH = 14
"""Characters allotted per field in the side-by-side default rendering."""


def default_field_texts(view: VirtualRow, schema: Schema) -> list[str]:
    """Each stored field rendered with its type's default display, padded."""
    texts = []
    for field in schema:
        rendered = field.type.default_display(view[field.name])
        if len(rendered) > _COLUMN_WIDTH:
            rendered = rendered[: _COLUMN_WIDTH - 1] + "~"
        texts.append(rendered.ljust(_COLUMN_WIDTH))
    return texts


def default_display_list(view: VirtualRow, schema: Schema) -> list[Drawable]:
    """The default drawable list for one tuple: fields side by side.

    Text drawables are centered on their anchor, so each column's label is
    offset to lay the fields out left-to-right from the tuple position.
    """
    drawables: list[Drawable] = []
    cursor = 0.0
    for text in default_field_texts(view, schema):
        width = len(text) * Text.CHAR_WIDTH
        drawables.append(Text(text.rstrip(), offset=(cursor + width / 2.0, 0.0)))
        cursor += width
    return drawables


def default_displayable(source: Table | RowSet, name: str | None = None) -> DisplayableRelation:
    """Wrap a table or row set as a displayable with all defaults (§5.2).

    This is what the Add Table box emits: "every Add Table operation
    introduces a box that produces a relation with the default display and
    location."
    """
    if isinstance(source, Table):
        rows = source.snapshot()
        return DisplayableRelation(
            rows, name=name or source.name, source_table=source.name
        )
    return DisplayableRelation(source, name=name or "relation")
