"""The three displayable types (Section 2).

::

    G = Group(C1, ..., Cn)
    C = Composite(R1, ..., Rn)
    R = relations with attributes x, y, display

A :class:`DisplayableRelation` is an extended relation: a materialized row
set plus computed location/display attributes and an elevation range.  A
:class:`Composite` overlays same-space relations with a drawing order; a
:class:`Group` arranges composites side-by-side / top-to-bottom / tabularly.
The type equivalences R = Composite(R) and C = Group(C) are provided by
:func:`ensure_composite` and :func:`ensure_group`.

Displayable values flow along dataflow edges; all operations here are
copy-on-write so boxes stay pure.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.dbms import types as T
from repro.dbms.relation import Method, MethodSet, RowSet, VirtualRow
from repro.display.elevation import ElevationMap, ElevationRange
from repro.errors import DisplayError

__all__ = [
    "SEQ_FIELD",
    "DisplayableRelation",
    "CompositeEntry",
    "Composite",
    "Group",
    "Displayable",
    "ensure_composite",
    "ensure_group",
    "LAYOUTS",
]

SEQ_FIELD = "tioga_seq"
"""Ambient attribute: the 0-based sequence number of a tuple within its
relation.  The default display uses it as the y location (§5.2)."""

_RESERVED = ("x", "y", "display")

LAYOUTS = ("horizontal", "vertical", "tabular")


class DisplayableRelation:
    """An extended relation R: rows + computed attributes + elevation range.

    The relation "knows how to display itself": if it defines ``x``/``y``
    attributes (stored or computed) they position each tuple; otherwise the
    default location applies (x = 0, y = sequence number).  If it defines a
    ``display`` attribute (of drawable-list type) that renders each tuple;
    otherwise the default side-by-side field rendering applies.  Additional
    numeric attributes named in ``slider_dims`` add visualization dimensions
    beyond the two screen dimensions.
    """

    def __init__(
        self,
        rows: RowSet,
        methods: MethodSet | None = None,
        name: str = "relation",
        slider_dims: Iterable[str] = (),
        elevation_range: ElevationRange | None = None,
        source_table: str | None = None,
        update_command: Callable[..., Any] | None = None,
    ):
        self.rows = rows
        if methods is None:
            methods = MethodSet(rows.schema, ambient={SEQ_FIELD: T.INT})
        if methods.base_schema != rows.schema:
            methods = methods.rebase(rows.schema)
        self.methods = methods
        self.name = name
        self.slider_dims = tuple(slider_dims)
        self.elevation_range = elevation_range or ElevationRange()
        self.source_table = source_table
        self.update_command = update_command
        self._validate()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        schema = self.extended_schema
        for dim in self.slider_dims:
            if dim in _RESERVED:
                raise DisplayError(f"{dim!r} cannot be a slider dimension")
            if dim not in schema:
                raise DisplayError(
                    f"slider dimension {dim!r} is not an attribute of {self.name!r}"
                )
            if not T.numeric(schema.type_of(dim)):
                raise DisplayError(
                    f"slider dimension {dim!r} must be numeric, "
                    f"got {schema.type_of(dim)}"
                )
        if len(set(self.slider_dims)) != len(self.slider_dims):
            raise DisplayError("duplicate slider dimensions")
        for axis in ("x", "y"):
            if axis in schema and not T.numeric(schema.type_of(axis)):
                raise DisplayError(
                    f"location attribute {axis!r} must be numeric, "
                    f"got {schema.type_of(axis)}"
                )
        if "display" in schema and schema.type_of("display") is not T.DRAWABLES:
            raise DisplayError(
                f"attribute 'display' must be of drawable-list type, "
                f"got {schema.type_of('display')}"
            )

    @property
    def extended_schema(self):
        """Stored fields plus computed attributes."""
        return self.methods.extended_schema

    @property
    def dimension(self) -> int:
        """Number of location attributes: 2 screen dims + sliders (§2)."""
        return 2 + len(self.slider_dims)

    @property
    def location_attrs(self) -> tuple[str, ...]:
        return ("x", "y", *self.slider_dims)

    @property
    def has_custom_location(self) -> bool:
        return "x" in self.extended_schema and "y" in self.extended_schema

    @property
    def has_custom_display(self) -> bool:
        return "display" in self.extended_schema

    def alternate_displays(self) -> tuple[str, ...]:
        """Names of drawable-list attributes other than ``display`` (§5.1:
        "There may be additional display attributes to provide alternative
        visualizations")."""
        return tuple(
            field.name
            for field in self.extended_schema
            if field.type is T.DRAWABLES and field.name != "display"
        )

    def __len__(self) -> int:
        return len(self.rows)

    # ------------------------------------------------------------------
    # Row views and tuple-wise visualization (§2: "the visualization of a
    # relation R is the sum of the visualizations of each tuple of R")
    # ------------------------------------------------------------------

    def views(self) -> Iterator[VirtualRow]:
        """Lazy extended views of each tuple, with the sequence number ambient."""
        for seq, row in enumerate(self.rows):
            yield self.methods.row_view(row, extra={SEQ_FIELD: seq})

    def view_at(self, index: int) -> VirtualRow:
        return self.methods.row_view(self.rows[index], extra={SEQ_FIELD: index})

    def location_of(self, view: VirtualRow) -> tuple[float, ...]:
        """The tuple's position in n-space: (x, y, l1, ..., l_{n-2})."""
        if self.has_custom_location:
            base = (float(view["x"]), float(view["y"]))
        else:
            base = (0.0, float(view[SEQ_FIELD]))
        return base + tuple(float(view[dim]) for dim in self.slider_dims)

    def display_of(self, view: VirtualRow) -> list:
        """The tuple's drawable list under the active display attribute."""
        if self.has_custom_display:
            return list(view["display"])
        from repro.display.defaults import default_display_list

        return default_display_list(view, self.rows.schema)

    # ------------------------------------------------------------------
    # Copy-on-write modifiers
    # ------------------------------------------------------------------

    def _clone(self, **overrides: Any) -> "DisplayableRelation":
        state = {
            "rows": self.rows,
            "methods": self.methods,
            "name": self.name,
            "slider_dims": self.slider_dims,
            "elevation_range": self.elevation_range,
            "source_table": self.source_table,
            "update_command": self.update_command,
        }
        state.update(overrides)
        return DisplayableRelation(**state)

    def with_rows(self, rows: RowSet) -> "DisplayableRelation":
        """Same visualization spec over different rows (Restrict/Sample)."""
        return self._clone(rows=rows, methods=self.methods.rebase(rows.schema))

    def with_methods(self, methods: MethodSet) -> "DisplayableRelation":
        return self._clone(methods=methods)

    def with_method_added(self, method: Method) -> "DisplayableRelation":
        methods = self.methods.copy()
        methods.add(method)
        return self._clone(methods=methods)

    def with_method_replaced(self, method: Method) -> "DisplayableRelation":
        methods = self.methods.copy()
        methods.replace(method)
        return self._clone(methods=methods)

    def with_range(self, minimum: float, maximum: float) -> "DisplayableRelation":
        """Set Range (§6.1)."""
        return self._clone(elevation_range=ElevationRange(minimum, maximum))

    def with_name(self, name: str) -> "DisplayableRelation":
        return self._clone(name=name)

    def with_slider_dims(self, slider_dims: Iterable[str]) -> "DisplayableRelation":
        return self._clone(slider_dims=tuple(slider_dims))

    def with_slider_added(self, dim: str) -> "DisplayableRelation":
        """Adding a location attribute adds a dimension (§5.3)."""
        if dim in self.slider_dims:
            raise DisplayError(f"{dim!r} is already a slider dimension")
        return self._clone(slider_dims=(*self.slider_dims, dim))

    def with_update_command(
        self, command: Callable[..., Any] | None
    ) -> "DisplayableRelation":
        """Install a custom update command (§8)."""
        return self._clone(update_command=command)

    def with_source_table(self, table_name: str | None) -> "DisplayableRelation":
        return self._clone(source_table=table_name)

    def __repr__(self) -> str:
        return (
            f"DisplayableRelation({self.name!r}, {len(self.rows)} rows, "
            f"dim={self.dimension}, range={self.elevation_range!r})"
        )


class CompositeEntry:
    """One component of a composite: a relation plus an n-dim overlay offset.

    ``offset`` maps dimension names ('x', 'y', or a slider name) to shifts in
    world units — the result of dragging one canvas over another, or of an
    explicit offset (§6.1).
    """

    __slots__ = ("relation", "offset")

    def __init__(
        self, relation: DisplayableRelation, offset: dict[str, float] | None = None
    ):
        self.relation = relation
        self.offset = {k: float(v) for k, v in (offset or {}).items()}

    def offset_for(self, dim: str) -> float:
        return self.offset.get(dim, 0.0)

    def __repr__(self) -> str:
        return f"CompositeEntry({self.relation.name!r}, offset={self.offset})"


class Composite:
    """An overlay of relations in the same viewing space (Section 2).

    "A composite visualization is the overlay of each of the composite's
    components — the visualizations are simply superimposed. ... the order of
    the relations specifies the drawing order."  Entry 0 paints first
    (bottom); the last entry paints on top.

    Constituents should share the composite's dimension; on mismatch the
    paper *warns* and then treats lower-dimensional relations as "invariant
    in the extra dimensions" (§6.1) — warnings are recorded on the composite
    for the UI to surface.
    """

    def __init__(self, entries: Iterable[CompositeEntry | DisplayableRelation] = ()):
        self.entries: list[CompositeEntry] = []
        self.warnings: list[str] = []
        for entry in entries:
            if isinstance(entry, DisplayableRelation):
                entry = CompositeEntry(entry)
            self._add_entry(entry)

    # -- structure ------------------------------------------------------

    @property
    def dimension(self) -> int:
        """The composite's dimension: the maximum over its components."""
        if not self.entries:
            return 2
        return max(entry.relation.dimension for entry in self.entries)

    @property
    def slider_dims(self) -> tuple[str, ...]:
        """Ordered union of component slider dimensions."""
        seen: list[str] = []
        for entry in self.entries:
            for dim in entry.relation.slider_dims:
                if dim not in seen:
                    seen.append(dim)
        return tuple(seen)

    def component_names(self) -> list[str]:
        return [entry.relation.name for entry in self.entries]

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[CompositeEntry]:
        return iter(self.entries)

    def _unique_name(self, name: str) -> str:
        taken = set(self.component_names())
        if name not in taken:
            return name
        suffix = 2
        while f"{name}_{suffix}" in taken:
            suffix += 1
        return f"{name}_{suffix}"

    def _add_entry(self, entry: CompositeEntry) -> None:
        unique = self._unique_name(entry.relation.name)
        if unique != entry.relation.name:
            entry = CompositeEntry(entry.relation.with_name(unique), entry.offset)
        if self.entries and entry.relation.dimension != self.dimension:
            self.warnings.append(
                f"dimension mismatch: composite is {self.dimension}-dimensional, "
                f"{entry.relation.name!r} is {entry.relation.dimension}-dimensional; "
                "the lower-dimensional relations are treated as invariant in the "
                "extra dimensions"
            )
        self.entries.append(entry)

    def entry_named(self, name: str) -> CompositeEntry:
        for entry in self.entries:
            if entry.relation.name == name:
                return entry
        known = ", ".join(self.component_names()) or "(none)"
        raise DisplayError(f"no component {name!r} in composite; have: {known}")

    def index_of(self, name: str) -> int:
        for pos, entry in enumerate(self.entries):
            if entry.relation.name == name:
                return pos
        raise DisplayError(f"no component {name!r} in composite")

    # -- operations (Overlay / Shuffle / Set Range, §6.1) -----------------

    def copy(self) -> "Composite":
        clone = Composite()
        clone.entries = [CompositeEntry(e.relation, e.offset) for e in self.entries]
        clone.warnings = list(self.warnings)
        return clone

    def overlay(
        self,
        other: "Composite | DisplayableRelation",
        offset: dict[str, float] | None = None,
    ) -> "Composite":
        """Overlay ``other`` on top of this composite (returns a new one).

        ``offset`` applies to every component of ``other``, combining with
        any offsets those components already carry.
        """
        other = ensure_composite(other)
        result = self.copy()
        for entry in other.entries:
            merged = dict(entry.offset)
            for dim, shift in (offset or {}).items():
                merged[dim] = merged.get(dim, 0.0) + float(shift)
            result._add_entry(CompositeEntry(entry.relation, merged))
        return result

    def shuffle_to_top(self, name: str) -> None:
        """Move a component to the top of the drawing order (paints last)."""
        pos = self.index_of(name)
        entry = self.entries.pop(pos)
        self.entries.append(entry)

    def move_to_order(self, name: str, order: int) -> None:
        if not 0 <= order < len(self.entries):
            raise DisplayError(
                f"order {order} out of range for {len(self.entries)} components"
            )
        pos = self.index_of(name)
        entry = self.entries.pop(pos)
        self.entries.insert(order, entry)

    def replace_component(self, name: str, relation: DisplayableRelation) -> "Composite":
        """A new composite with one component's relation replaced (used by the
        overload machinery to reassemble after an R-level operation, §2)."""
        result = self.copy()
        pos = result.index_of(name)
        old = result.entries[pos]
        result.entries[pos] = CompositeEntry(
            relation.with_name(name) if relation.name != name else relation,
            old.offset,
        )
        return result

    def set_component_range(self, name: str, minimum: float, maximum: float) -> None:
        entry = self.entry_named(name)
        entry.relation = entry.relation.with_range(minimum, maximum)

    def elevation_map(self) -> ElevationMap:
        """The elevation-map model for this composite (§6.1)."""
        return ElevationMap(self)

    def __repr__(self) -> str:
        return f"Composite([{', '.join(self.component_names())}])"


class Group:
    """A layout of composites in distinct viewing spaces (Section 2).

    "A group visualization is just the visualization of each of the
    composites arranged either side-by-side, top-to-bottom, or in a tabular
    fashion according to the user's specification."  Each member keeps its
    own pan/zoom position in the viewer.
    """

    def __init__(
        self,
        members: Iterable[tuple[str, "Composite | DisplayableRelation"]] = (),
        layout: str = "horizontal",
        table_shape: tuple[int, int] | None = None,
    ):
        if layout not in LAYOUTS:
            raise DisplayError(f"layout must be one of {LAYOUTS}, got {layout!r}")
        self.layout = layout
        self.members: list[tuple[str, Composite]] = []
        for name, member in members:
            self.add_member(name, member)
        if layout == "tabular":
            if table_shape is None:
                raise DisplayError("tabular layout requires a table_shape")
            rows, cols = table_shape
            if rows < 1 or cols < 1:
                raise DisplayError(f"illegal table shape {table_shape}")
        self.table_shape = table_shape

    def add_member(self, name: str, member: "Composite | DisplayableRelation") -> None:
        if any(existing == name for existing, __ in self.members):
            raise DisplayError(f"group already has a member named {name!r}")
        self.members.append((name, ensure_composite(member)))

    def member(self, name: str) -> Composite:
        for member_name, composite in self.members:
            if member_name == name:
                return composite
        known = ", ".join(name for name, __ in self.members) or "(none)"
        raise DisplayError(f"no group member {name!r}; have: {known}")

    def member_names(self) -> list[str]:
        return [name for name, __ in self.members]

    def replace_member(self, name: str, composite: "Composite") -> "Group":
        """A new group with one member replaced (overload reassembly, §2)."""
        if name not in self.member_names():
            raise DisplayError(f"no group member {name!r}")
        clone = Group(layout=self.layout, table_shape=self.table_shape)
        for member_name, member in self.members:
            clone.add_member(member_name, composite if member_name == name else member)
        return clone

    def grid_shape(self) -> tuple[int, int]:
        """(rows, cols) of the layout grid."""
        count = len(self.members)
        if self.layout == "horizontal":
            return (1, max(1, count))
        if self.layout == "vertical":
            return (max(1, count), 1)
        assert self.table_shape is not None
        return self.table_shape

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self) -> Iterator[tuple[str, Composite]]:
        return iter(self.members)

    def __repr__(self) -> str:
        return f"Group({self.member_names()}, layout={self.layout!r})"


Displayable = DisplayableRelation | Composite | Group
"""The union of the three displayable types."""


def ensure_composite(displayable: "Composite | DisplayableRelation") -> Composite:
    """The type equivalence R = Composite(R) (§2)."""
    if isinstance(displayable, Composite):
        return displayable
    if isinstance(displayable, DisplayableRelation):
        return Composite([displayable])
    raise DisplayError(
        f"cannot treat {type(displayable).__name__} as a composite"
    )


def ensure_group(
    displayable: "Group | Composite | DisplayableRelation", name: str = "view"
) -> Group:
    """The type equivalence C = Group(C) (§2)."""
    if isinstance(displayable, Group):
        return displayable
    composite = ensure_composite(displayable)
    return Group([(name, composite)])
